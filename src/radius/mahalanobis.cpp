#include "radius/mahalanobis.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "feature/transform.hpp"
#include "la/cholesky.hpp"

namespace fepia::radius {

RadiusResult mahalanobisRadius(const feature::PerformanceFeature& phi,
                               const feature::FeatureBounds& bounds,
                               const la::Vector& orig,
                               const la::Matrix& covariance,
                               const NumericOptions& opts) {
  const std::size_t n = phi.dimension();
  if (orig.size() != n || covariance.rows() != n || covariance.cols() != n) {
    throw std::invalid_argument("radius::mahalanobisRadius: shape mismatch");
  }
  const la::Cholesky chol(covariance);
  if (chol.failed()) {
    throw std::domain_error(
        "radius::mahalanobisRadius: covariance is not positive definite");
  }

  // Whitened space: pi = L y + orig, so y0 = 0 and Euclidean distance in
  // y equals Mahalanobis distance in pi.
  const std::shared_ptr<const feature::PerformanceFeature> alias(
      std::shared_ptr<const feature::PerformanceFeature>{}, &phi);
  const auto phiY = feature::precomposeAffine(alias, chol.l(), orig);

  RadiusResult res = featureRadius(*phiY, bounds, la::Vector(n, 0.0), opts);
  if (res.finite()) {
    // Map the boundary element back to pi-space.
    res.boundaryPoint = la::matvec(chol.l(), res.boundaryPoint) + orig;
  }
  return res;
}

double mahalanobisLinearRadius(const la::Vector& k, double offset,
                               const feature::FeatureBounds& bounds,
                               const la::Vector& orig,
                               const la::Matrix& covariance) {
  if (k.size() != orig.size() || covariance.rows() != k.size() ||
      covariance.cols() != k.size()) {
    throw std::invalid_argument(
        "radius::mahalanobisLinearRadius: shape mismatch");
  }
  const double denomSq = la::dot(k, la::matvec(covariance, k));
  if (denomSq <= 0.0) {
    throw std::domain_error(
        "radius::mahalanobisLinearRadius: k^T Sigma k must be positive");
  }
  const double value = la::dot(k, orig) + offset;
  double best = std::numeric_limits<double>::infinity();
  if (bounds.hasMax()) {
    best = std::min(best, std::abs(value - bounds.betaMax()));
  }
  if (bounds.hasMin()) {
    best = std::min(best, std::abs(value - bounds.betaMin()));
  }
  return best / std::sqrt(denomSq);
}

}  // namespace fepia::radius
