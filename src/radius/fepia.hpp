// The four-step FePIA pipeline as a single entry point.
//
//   1. Describe the robustness requirement: add features with bounds.
//   2. Identify the perturbation parameters: add kinds.
//   3. The impact f_ij is carried by the feature objects themselves.
//   4. Solve: single-kind radii, same-unit rho, or the merged (P-space)
//      rho under either scheme — plus the operating-point tolerance test.
//
// This facade is what the examples and most downstream users touch; the
// lower-level engines remain available for custom flows.
#pragma once

#include <memory>
#include <span>

#include "perturb/space.hpp"
#include "radius/merge.hpp"
#include "radius/rho.hpp"

namespace fepia::radius {

/// Builder/runner for a FePIA robustness analysis.
class FepiaProblem {
 public:
  FepiaProblem() = default;

  /// Step 2: registers a perturbation kind; returns its index j.
  std::size_t addPerturbation(perturb::PerturbationParameter param);

  /// Steps 1+3: registers phi_i (defined over the concatenated space of
  /// all kinds, in registration order) with its tolerable bounds.
  /// Returns the feature index i. Features must be added after all
  /// perturbation kinds; throws std::logic_error otherwise so the
  /// concatenated dimension is unambiguous.
  std::size_t addFeature(std::shared_ptr<const feature::PerformanceFeature> phi,
                         feature::FeatureBounds bounds);

  /// Sets the numeric-solver options used by all subsequent solves.
  void setNumericOptions(NumericOptions opts) { opts_ = opts; }

  [[nodiscard]] const perturb::PerturbationSpace& space() const noexcept {
    return space_;
  }
  [[nodiscard]] const feature::FeatureSet& features() const noexcept {
    return phi_;
  }

  /// Step 4 in raw pi-space — only legal when every kind shares one unit
  /// (throws units::MismatchError otherwise, reproducing the paper's
  /// objection to naive concatenation of mixed kinds).
  [[nodiscard]] RobustnessReport robustnessSameUnits() const;

  /// r_mu(phi_i, pi_j): radius of one feature against one kind, all other
  /// kinds pinned at their assumed values (always legal — one kind has
  /// one unit).
  [[nodiscard]] RadiusResult singleKindRadius(std::size_t featureIndex,
                                              std::size_t kindIndex) const;

  /// Step 4 in P-space under the chosen merge scheme.
  [[nodiscard]] MergedAnalysis merged(MergeScheme scheme) const;

  /// Convenience: the merged rho only.
  [[nodiscard]] double rho(MergeScheme scheme) const;

  /// The paper's operating-point test: can the system run at these
  /// per-kind values (one vector per kind, registration order) without a
  /// QoS violation, according to the merged metric?
  [[nodiscard]] ToleranceCheck wouldTolerate(std::span<const la::Vector> perKind,
                                             MergeScheme scheme) const;

 private:
  perturb::PerturbationSpace space_;
  feature::FeatureSet phi_;
  NumericOptions opts_{};
};

}  // namespace fepia::radius
