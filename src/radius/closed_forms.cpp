#include "radius/closed_forms.hpp"

#include <cmath>
#include <stdexcept>

namespace fepia::radius {

namespace {

void requireLinearCase(const la::Vector& k, const la::Vector& piOrig,
                       double beta, const char* fn) {
  if (k.size() != piOrig.size() || k.empty()) {
    throw std::invalid_argument(std::string("radius::") + fn +
                                ": k and piOrig must be same nonzero size");
  }
  if (beta <= 1.0) {
    throw std::invalid_argument(std::string("radius::") + fn +
                                ": beta must exceed 1");
  }
}

}  // namespace

double perKindLinearRadius(const la::Vector& k, const la::Vector& piOrig,
                           double beta, std::size_t j) {
  requireLinearCase(k, piOrig, beta, "perKindLinearRadius");
  if (j >= k.size()) {
    throw std::invalid_argument("radius::perKindLinearRadius: j out of range");
  }
  if (k[j] == 0.0) {
    throw std::invalid_argument("radius::perKindLinearRadius: k_j == 0");
  }
  return (beta - 1.0) / k[j] * la::dot(k, piOrig);
}

double sensitivityLinearRadius(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("radius::sensitivityLinearRadius: n == 0");
  }
  return 1.0 / std::sqrt(static_cast<double>(n));
}

double normalizedLinearRadius(const la::Vector& k, const la::Vector& piOrig,
                              double beta) {
  requireLinearCase(k, piOrig, beta, "normalizedLinearRadius");
  double num = 0.0;
  double denomSq = 0.0;
  for (std::size_t m = 0; m < k.size(); ++m) {
    const double km = k[m] * piOrig[m];
    num += km;
    denomSq += km * km;
  }
  if (denomSq == 0.0) {
    throw std::invalid_argument(
        "radius::normalizedLinearRadius: k ⊙ piOrig is identically zero");
  }
  return (beta - 1.0) * std::abs(num) / std::sqrt(denomSq);
}

}  // namespace fepia::radius
