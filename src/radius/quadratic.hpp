// Closed-form(ish) nearest point on a quadric level set.
//
// The boundary of a QuadraticFeature, { x : 0.5 x^T Q x + k·x + c = beta },
// is a quadric — the curved boundary sketched in Figure 1 of the paper.
// The KKT conditions of  min ‖x − x0‖  s.t.  g(x) = beta  reduce, in Q's
// eigenbasis, to the scalar secular equation
//
//   h(lambda) = g( (I + lambda Q)^{-1} (x0 − lambda k) ) − beta = 0,
//
// whose roots lie between the poles lambda = −1/d_i. This engine finds
// every root by bracketing + Brent per pole interval and returns the
// root realising the smallest distance — machine-precision accurate and
// orders of magnitude cheaper than the generic numeric solver.
#pragma once

#include "feature/quadratic.hpp"
#include "la/vector.hpp"

namespace fepia::radius {

/// Result of the quadric nearest-point computation.
struct QuadricNearestResult {
  la::Vector point;        ///< nearest boundary element (valid when found)
  double distance = 0.0;   ///< ‖point − x0‖₂
  bool found = false;      ///< false when the level is unreachable
  std::size_t rootsExamined = 0;  ///< secular-equation roots considered
};

/// Finds the point on { x : phi(x) = level } nearest to `x0`.
/// Throws std::invalid_argument on dimension mismatch.
[[nodiscard]] QuadricNearestResult nearestPointOnQuadric(
    const feature::QuadraticFeature& phi, const la::Vector& x0, double level);

}  // namespace fepia::radius
