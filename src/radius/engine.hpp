// Single-feature robustness radius — Eq. (1)/(2) of the paper.
//
//   r_mu(phi_i, pi) = min over { pi : f(pi) = beta_min or beta_max } of
//                     ‖pi − pi_orig‖₂
//
// Dispatch: LinearFeature boundaries are hyperplanes, so the radius is
// the Eq. (4) point-to-plane distance (exact); every other feature goes
// through the numeric nearest-boundary solver of src/opt.
#pragma once

#include <limits>
#include <string>

#include "feature/feature.hpp"
#include "la/vector.hpp"
#include "opt/boundary.hpp"

namespace fepia::radius {

/// Which bound of <beta_min, beta_max> produced the nearest boundary point.
enum class BoundSide { Min, Max, None };

/// How the radius was obtained.
enum class Method { ClosedFormLinear, ClosedFormQuadratic, Numeric };

/// Result of a single-feature radius computation.
struct RadiusResult {
  /// The robustness radius; +inf when no finite bound is reachable.
  double radius = std::numeric_limits<double>::infinity();
  /// The nearest boundary element pi*(phi_i) (empty when radius is +inf).
  la::Vector boundaryPoint;
  /// Which bound the nearest boundary point lies on.
  BoundSide side = BoundSide::None;
  Method method = Method::ClosedFormLinear;
  /// True for closed forms and converged numeric solves.
  bool exact = false;
  /// Whether phi(pi_orig) was within bounds (the paper assumes it is; a
  /// false here means the allocation is *already* violating QoS).
  bool originWithinBounds = true;
  /// Total feature evaluations spent (0 for closed forms).
  std::size_t evaluations = 0;

  [[nodiscard]] bool finite() const noexcept {
    return radius < std::numeric_limits<double>::infinity();
  }
};

/// Options forwarded to the numeric boundary solver.
struct NumericOptions {
  opt::BoundarySolverOptions solver{};
};

/// Computes r_mu(phi, pi) for one bounded feature from the operating
/// point `orig`. Throws std::invalid_argument on dimension mismatch.
[[nodiscard]] RadiusResult featureRadius(const feature::PerformanceFeature& phi,
                                         const feature::FeatureBounds& bounds,
                                         const la::Vector& orig,
                                         const NumericOptions& opts = {});

/// Forces the numeric engine even for closed-form features — used by the
/// SOLV ablation to measure solver accuracy against the exact answer.
[[nodiscard]] RadiusResult featureRadiusNumeric(
    const feature::PerformanceFeature& phi,
    const feature::FeatureBounds& bounds, const la::Vector& orig,
    const NumericOptions& opts = {});

}  // namespace fepia::radius
