#include "radius/diagnostics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fepia::radius {

FragilityAttribution attributeFragility(const RadiusResult& r,
                                        const la::Vector& orig) {
  if (!r.finite() || r.boundaryPoint.empty()) {
    throw std::invalid_argument(
        "radius::attributeFragility: result has no boundary point");
  }
  if (r.boundaryPoint.size() != orig.size()) {
    throw std::invalid_argument("radius::attributeFragility: dimensions");
  }
  FragilityAttribution out;
  out.displacement = r.boundaryPoint - orig;
  const double total = la::normSq(out.displacement);
  out.share.resize(orig.size(), 0.0);
  if (total > 0.0) {
    double bestShare = -1.0;
    for (std::size_t i = 0; i < orig.size(); ++i) {
      out.share[i] = out.displacement[i] * out.displacement[i] / total;
      if (out.share[i] > bestShare) {
        bestShare = out.share[i];
        out.dominantElement = i;
      }
    }
  }
  return out;
}

std::vector<SlackEntry> slackReport(const feature::FeatureSet& phi,
                                    const la::Vector& orig) {
  if (phi.empty()) {
    throw std::invalid_argument("radius::slackReport: empty feature set");
  }
  if (orig.size() != phi.dimension()) {
    throw std::invalid_argument("radius::slackReport: dimension mismatch");
  }
  std::vector<SlackEntry> out;
  out.reserve(phi.size());
  for (const feature::BoundedFeature& bf : phi) {
    SlackEntry e;
    e.featureName = bf.feature->name();
    e.value = bf.feature->evaluate(orig);
    e.slackToMax = bf.bounds.hasMax()
                       ? bf.bounds.betaMax() - e.value
                       : std::numeric_limits<double>::infinity();
    e.slackToMin = bf.bounds.hasMin()
                       ? e.value - bf.bounds.betaMin()
                       : std::numeric_limits<double>::infinity();
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace fepia::radius
