// The paper's analytical results in closed form, used to validate the
// engines and to regenerate the Section 3.1 / 3.2 derivations as
// executable experiments.
//
// Setting (both sections): phi(pi_1..pi_n) = k_1 pi_1 + ... + k_n pi_n
// with n one-element perturbation kinds, constraint phi = beta^max with
// beta^max = beta * phi^orig, beta > 1.
#pragma once

#include <cstddef>

#include "la/vector.hpp"

namespace fepia::radius {

/// Section 3.1, Step 1: the per-kind robustness radius
///   r_mu(phi, pi_j) = (beta − 1)/k_j · sum_m k_m pi_m^orig.
/// Throws std::invalid_argument on size mismatch, k_j == 0, beta <= 1.
[[nodiscard]] double perKindLinearRadius(const la::Vector& k,
                                         const la::Vector& piOrig, double beta,
                                         std::size_t j);

/// Section 3.1 final result: with sensitivity weighting the P-space
/// radius collapses to 1/sqrt(n) — independent of k, beta and pi^orig.
/// (Provided as a function of n to make the degeneracy explicit.)
[[nodiscard]] double sensitivityLinearRadius(std::size_t n);

/// Section 3.2 final result: with normalization by originals,
///   r_mu(phi, P) = (beta − 1) · |sum_j k_j pi_j^orig|
///                  / sqrt(sum_m (k_m pi_m^orig)^2).
/// Throws std::invalid_argument on size mismatch, beta <= 1, or an
/// all-zero k ⊙ pi^orig.
[[nodiscard]] double normalizedLinearRadius(const la::Vector& k,
                                            const la::Vector& piOrig,
                                            double beta);

}  // namespace fepia::radius
