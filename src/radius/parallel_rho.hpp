// Parallel evaluation of the robustness metric.
//
// The per-feature radii that make up rho are independent computations,
// so a feature set with many constraints (large HiPer-D deployments,
// many-machine makespan problems) parallelises trivially across a
// thread pool. Results are bit-identical to the serial
// radius::robustness — each feature's computation is untouched, only the
// scheduling changes.
#pragma once

#include "parallel/thread_pool.hpp"
#include "radius/rho.hpp"

namespace fepia::radius {

/// Computes rho_mu(Phi, pi) with per-feature radii evaluated on `pool`.
/// Semantics (including exceptions from feature evaluation) match
/// radius::robustness exactly.
[[nodiscard]] RobustnessReport robustnessParallel(
    const feature::FeatureSet& phi, const la::Vector& orig,
    parallel::ThreadPool& pool, const NumericOptions& opts = {});

}  // namespace fepia::radius
