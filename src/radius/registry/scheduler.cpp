#include "radius/registry/scheduler.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/span.hpp"

namespace fepia::radius::backend {

namespace {

std::string availableNames(const BackendRegistry& registry) {
  std::string names;
  for (const Backend* b : registry.all()) {
    if (!names.empty()) {
      names += ", ";
    }
    names += b->name();
  }
  return names.empty() ? std::string("none registered") : names;
}

std::string describeChain(const std::vector<FallbackStep>& chain) {
  std::string text;
  for (const FallbackStep& step : chain) {
    if (!text.empty()) {
      text += "; ";
    }
    text += step.backend + ": " + step.reason;
  }
  return text;
}

bool isFailedAttempt(const FallbackStep& step) {
  return step.reason.rfind("failed: ", 0) == 0;
}

RadiusOutcome finish(const Backend& backend, RadiusOutcome out,
                     std::vector<FallbackStep> chain,
                     const RadiusProblem& problem,
                     const RadiusRequest& request, bool overridden) {
  out.backendName = backend.name();
  out.declaredAccuracy = backend.accuracy(problem, request);
  out.costEstimate = backend.cost(problem, request);
  out.fallbacks = std::move(chain);
  if (request.metrics != nullptr) {
    obs::CounterSet& counters = request.metrics->counters();
    counters.bump("registry.solves");
    counters.bump("registry.backend." + out.backendName);
    if (overridden) {
      counters.bump("registry.overrides");
    }
    for (const FallbackStep& step : out.fallbacks) {
      if (isFailedAttempt(step)) {
        counters.bump("registry.fallbacks");
      }
    }
  }
  return out;
}

}  // namespace

RadiusOutcome solveRadius(const BackendRegistry& registry,
                          const RadiusProblem& problem,
                          const RadiusRequest& request,
                          parallel::ThreadPool* pool) {
  problem.validate();
  FEPIA_SPAN("registry.solve");

  if (!request.backendOverride.empty()) {
    const Backend* forced = registry.find(request.backendOverride);
    if (forced == nullptr) {
      throw BackendError("unknown radius backend '" + request.backendOverride +
                         "' (available: " + availableNames(registry) + ")");
    }
    const std::string why = forced->incapabilityReason(problem);
    if (!why.empty()) {
      throw BackendError("radius backend '" + request.backendOverride +
                         "' cannot solve this problem: " + why);
    }
    FEPIA_SPAN("registry.attempt");
    return finish(*forced, forced->solve(problem, request, pool), {}, problem,
                  request, /*overridden=*/true);
  }

  // Capability filter: every skip lands in the chain with its reason.
  std::vector<FallbackStep> chain;
  std::vector<const Backend*> capable;
  for (const Backend* b : registry.all()) {
    const std::string why = b->incapabilityReason(problem);
    if (why.empty()) {
      capable.push_back(b);
    } else {
      chain.push_back({b->name(), "skipped: " + why});
    }
  }
  if (capable.empty()) {
    throw BackendError("no registered radius backend can solve this problem (" +
                       describeChain(chain) + ")");
  }

  // Accuracy bound. When nothing meets it, degrade gracefully: keep all
  // capable backends and record the relaxation instead of failing.
  std::vector<const Backend*> candidates;
  for (const Backend* b : capable) {
    if (b->accuracy(problem, request) <= request.accuracy) {
      candidates.push_back(b);
    }
  }
  if (candidates.empty()) {
    std::ostringstream note;
    note << "no capable backend declares accuracy <= " << request.accuracy
         << "; relaxing the accuracy bound";
    chain.push_back({"(scheduler)", note.str()});
    candidates = capable;
  } else if (candidates.size() < capable.size()) {
    for (const Backend* b : capable) {
      if (std::find(candidates.begin(), candidates.end(), b) ==
          candidates.end()) {
        std::ostringstream why;
        why << "skipped: declared accuracy " << b->accuracy(problem, request)
            << " exceeds requested " << request.accuracy;
        chain.push_back({b->name(), why.str()});
      }
    }
  }

  // Deadline bound, same graceful-relaxation shape: an impossible
  // deadline falls back to the cheapest candidates rather than failing.
  std::vector<const Backend*> withinDeadline;
  for (const Backend* b : candidates) {
    if (b->estimatedSeconds(problem, request) <= request.deadlineSeconds) {
      withinDeadline.push_back(b);
    }
  }
  if (withinDeadline.empty()) {
    std::ostringstream note;
    note << "no candidate backend fits the deadline of "
         << request.deadlineSeconds << "s; taking the cheapest regardless";
    chain.push_back({"(scheduler)", note.str()});
  } else {
    if (withinDeadline.size() < candidates.size()) {
      for (const Backend* b : candidates) {
        if (std::find(withinDeadline.begin(), withinDeadline.end(), b) ==
            withinDeadline.end()) {
          std::ostringstream why;
          why << "skipped: estimated "
              << b->estimatedSeconds(problem, request)
              << "s exceeds the deadline of " << request.deadlineSeconds << "s";
          chain.push_back({b->name(), why.str()});
        }
      }
    }
    candidates = std::move(withinDeadline);
  }

  // Cheapest first; ties broken by name so scheduling is deterministic
  // regardless of registration order.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const Backend* a, const Backend* b) {
                     const double ca = a->cost(problem, request);
                     const double cb = b->cost(problem, request);
                     if (ca != cb) {
                       return ca < cb;
                     }
                     return a->name() < b->name();
                   });

  for (const Backend* b : candidates) {
    try {
      FEPIA_SPAN("registry.attempt");
      return finish(*b, b->solve(problem, request, pool), chain, problem,
                    request, /*overridden=*/false);
    } catch (const std::invalid_argument&) {
      throw;  // a malformed call, not a backend limitation — surface it
    } catch (const std::exception& e) {
      chain.push_back({b->name(), std::string("failed: ") + e.what()});
    }
  }
  throw BackendError("every capable radius backend failed (" +
                     describeChain(chain) + ")");
}

RadiusOutcome solveRadius(const RadiusProblem& problem,
                          const RadiusRequest& request,
                          parallel::ThreadPool* pool) {
  return solveRadius(BackendRegistry::instance(), problem, request, pool);
}

}  // namespace fepia::radius::backend
