// Radius backend kernels: one interface over the four radius engines.
//
// The paper's robustness radius has four implementations in this repo —
// the closed-form analytic stack (src/radius/closed_forms + merge), the
// AD-driven numeric boundary solver (src/radius/engine + src/opt), the
// Monte-Carlo empirical estimator (src/validate), and the fault-degraded
// DES sampler (src/fault/degraded). Historically every caller hard-coded
// its choice. A Backend wraps one implementation as a registered kernel
// with three declared properties the scheduler needs:
//
//   capability — a predicate over the problem (feature linearity /
//     closed-form structure, dimensionality, DES requirement, fault
//     scenarios) saying whether this kernel can answer at all;
//   cost — calibrated constants x problem size, an estimate of the work
//     in abstract classification units plus a units-per-second constant
//     that turns it into wall seconds for deadline scheduling;
//   accuracy — the declared maximum relative error of the answer, which
//     doubles as the agreement envelope: every outcome carries the
//     interval [rho·(1-e), rho·(1+e)] (or the bootstrap CI for sampling
//     kernels), and any two capable backends must produce overlapping
//     intervals on the same problem (tests/backend_agreement_test.cpp).
//
// Backends self-register into the global BackendRegistry via static
// registrars (see registry.hpp); solveRadius (scheduler.hpp) picks the
// cheapest capable one meeting the requested accuracy.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/degraded.hpp"
#include "fault/plan.hpp"
#include "hiperd/factory.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "radius/engine.hpp"
#include "radius/fepia.hpp"
#include "radius/merge.hpp"
#include "validate/empirical.hpp"
#include "validate/scheme.hpp"

namespace fepia::radius::backend {

/// Typed failure of backend selection or a backend solve: no capable
/// backend, an unknown/incapable override, or every candidate failing.
/// Callers (the CLI) turn it into a one-line diagnostic and exit 1.
class BackendError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The problem a backend is asked to solve: a FepiaProblem under a merge
/// scheme, optionally classified by discrete-event simulation of a
/// reference system with fault scenarios active. Non-owning — the caller
/// keeps `problem` / `system` alive across the solve.
struct RadiusProblem {
  /// The analytic feature-stack problem. May be null only when `system`
  /// is set and the classification is DES-based (fault-sim has no
  /// explicit FepiaProblem; the degraded kernel derives it).
  const FepiaProblem* problem = nullptr;
  MergeScheme scheme = MergeScheme::NormalizedByOriginal;
  /// DES-backed reference system; required by DES-classifying kernels.
  const hiperd::ReferenceSystem* system = nullptr;
  /// Active fault scenarios (probe direction i runs against scenario
  /// i % scenarios.size()); only fault-capable kernels accept them.
  std::vector<fault::FaultPlan> scenarios;
  /// True: classify the safe region by simulating the pipeline against
  /// QoS (the `validate --des` / fault-sim question) instead of the
  /// analytic feature stack. The two questions have different answers —
  /// queueing shrinks the region — so kernels declare which one they
  /// compute and the scheduler never substitutes one for the other.
  bool desClassification = false;

  [[nodiscard]] std::size_t dimension() const;
  [[nodiscard]] std::size_t featureCount() const;
  /// Every feature has a closed-form boundary (linear or quadratic).
  [[nodiscard]] bool allFeaturesClosedForm() const;
  /// Throws std::invalid_argument on an unsolvable description (neither
  /// problem nor system set, or DES classification without a system).
  void validate() const;
};

/// What the caller wants from solveRadius.
struct RadiusRequest {
  /// Maximum acceptable declared relative error. Backends whose declared
  /// accuracy is worse are skipped when a better one is capable; when no
  /// capable backend meets the bound the scheduler relaxes it (recording
  /// the relaxation in the fallback chain) rather than failing.
  double accuracy = 1e-2;
  /// Wall-clock budget; backends whose cost-model estimate exceeds it
  /// are skipped the same graceful way. Infinity = no deadline.
  double deadlineSeconds = std::numeric_limits<double>::infinity();
  /// Forces one backend by name. Unknown or incapable -> BackendError
  /// (the CLI --backend contract: exit 1 with a diagnostic).
  std::string backendOverride;
  /// Options forwarded verbatim to the sampling kernels — the empirical
  /// estimator's directions/seed/metrics and the degraded DES knobs.
  /// Passing them through unchanged is what keeps registry-routed
  /// callers bit-identical to the direct calls they replaced.
  validate::EstimatorOptions estimator{};
  fault::DegradedOptions degraded{};
  /// Options for the numeric boundary solver.
  NumericOptions numeric{};
  /// Optional metrics sink for registry.* counters. obs::Registry is not
  /// thread-safe: leave null when calling solveRadius concurrently (the
  /// sweep engine does) and bump from one thread only.
  obs::Registry* metrics = nullptr;
};

/// The declared accuracy envelope of an answer: the interval the true
/// radius is claimed to lie in. Two backends agree on a problem when
/// their envelopes overlap (Michael et al.'s uncertainty-interval
/// criterion, applied to radius backends).
struct AccuracyInterval {
  double lo = std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool contains(double x) const noexcept {
    return lo <= x && x <= hi;
  }
  [[nodiscard]] bool overlaps(const AccuracyInterval& other) const noexcept {
    return lo <= other.hi && other.lo <= hi;
  }
};

/// One scheduler decision that did not produce the final answer: a
/// backend skipped by a predicate or bound, or one that failed at solve
/// time. The full chain is recorded in the outcome and surfaced through
/// the registry.* metrics.
struct FallbackStep {
  std::string backend;  ///< backend name, or "(scheduler)" for decisions
  std::string reason;
};

/// The result of a routed radius solve.
struct RadiusOutcome {
  /// The robustness radius (+inf when no finite boundary is reachable).
  double rho = std::numeric_limits<double>::infinity();
  /// Declared accuracy envelope around rho (bootstrap CI based for the
  /// sampling kernels). {inf, inf} when rho is infinite.
  AccuracyInterval envelope{};
  /// Name and index of the feature realising rho (empty/0 when the
  /// kernel has no per-feature decomposition).
  std::string criticalFeature;
  std::size_t criticalFeatureIndex = 0;
  /// True when every per-feature radius came from an exact closed form.
  bool exact = false;
  /// Work actually spent, in feature evaluations / safe-region
  /// classifications (the cost model's unit).
  std::uint64_t classifications = 0;

  // ---- filled by the scheduler --------------------------------------
  std::string backendName;        ///< the kernel that produced the answer
  double declaredAccuracy = 0.0;  ///< its accuracy(problem, request)
  double costEstimate = 0.0;      ///< its cost(problem, request)
  /// Everything considered-and-rejected or attempted-and-failed before
  /// this answer, in decision order. Empty for a clean first-choice hit.
  std::vector<FallbackStep> fallbacks;

  // ---- kernel-specific payloads (at most one is set) ----------------
  /// Analytic / numeric kernels: the full per-feature merged report.
  std::shared_ptr<const MergedRobustnessReport> merged;
  /// Empirical kernel: the per-feature + joint comparison rows.
  std::shared_ptr<const validate::SchemeValidation> validation;
  /// Degraded kernel: the DES estimate with nominal-run counters.
  std::shared_ptr<const fault::DegradedEstimate> degraded;

  [[nodiscard]] bool finite() const noexcept {
    return rho < std::numeric_limits<double>::infinity();
  }
};

/// Static capability predicate of a kernel, evaluated against a
/// RadiusProblem before any work is spent.
struct Capability {
  /// Needs an explicit FepiaProblem (false only for kernels that derive
  /// the analytic side from the reference system themselves).
  bool requiresProblem = true;
  /// Every feature must have a closed-form boundary (linear/quadratic).
  bool requiresClosedFormFeatures = false;
  /// Dimensionality ceiling; 0 = unbounded.
  std::size_t maxDimension = 0;
  /// Needs a DES-backed hiperd::ReferenceSystem.
  bool requiresSystem = false;
  /// Can honor fault scenarios (discrete perturbation kinds).
  bool supportsFaultScenarios = false;
  /// Classifies the safe region by DES simulation (true) or by the
  /// analytic feature stack (false). Must match the problem's
  /// desClassification — the two answer different questions.
  bool classifiesByDes = false;
};

/// One registered radius kernel.
class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual const std::string& name() const noexcept = 0;
  [[nodiscard]] virtual const Capability& capability() const noexcept = 0;

  /// Estimated work in classification units (calibrated constants x
  /// problem size). Used for cheapest-capable selection.
  [[nodiscard]] virtual double cost(const RadiusProblem& problem,
                                    const RadiusRequest& request) const = 0;
  /// Calibrated throughput constant (classification units per second)
  /// turning cost into the wall-clock estimate for deadline checks.
  [[nodiscard]] virtual double unitsPerSecond() const noexcept = 0;
  /// Declared maximum relative error for this problem/request.
  [[nodiscard]] virtual double accuracy(const RadiusProblem& problem,
                                        const RadiusRequest& request) const = 0;
  /// Solves. The scheduler guarantees capable() held; kernels still
  /// throw (std::domain_error, BackendError, ...) on problems that pass
  /// the static predicate but fail at solve time — the scheduler treats
  /// that as a runtime fallback.
  [[nodiscard]] virtual RadiusOutcome solve(const RadiusProblem& problem,
                                            const RadiusRequest& request,
                                            parallel::ThreadPool* pool) const = 0;

  /// Empty when this kernel can solve `problem`; otherwise the first
  /// failing capability predicate, spelled out for diagnostics.
  [[nodiscard]] std::string incapabilityReason(const RadiusProblem& problem) const;
  [[nodiscard]] bool capable(const RadiusProblem& problem) const {
    return incapabilityReason(problem).empty();
  }
  /// cost / unitsPerSecond, for deadline scheduling.
  [[nodiscard]] double estimatedSeconds(const RadiusProblem& problem,
                                        const RadiusRequest& request) const {
    return cost(problem, request) / unitsPerSecond();
  }
};

/// Symmetric relative envelope rho·(1 ± err); {inf, inf} when rho is
/// infinite (two infinite answers agree).
[[nodiscard]] AccuracyInterval relativeEnvelope(double rho, double err) noexcept;

/// Outcome skeleton shared by the kernels that produce a full merged
/// report (analytic, numeric): rho, critical feature, exactness (true
/// only when every per-feature radius is a closed form), evaluation
/// count, and the report payload.
[[nodiscard]] RadiusOutcome outcomeFromMergedReport(
    std::shared_ptr<const MergedRobustnessReport> report);

}  // namespace fepia::radius::backend
