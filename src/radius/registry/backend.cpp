#include "radius/registry/backend.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "feature/linear.hpp"
#include "feature/quadratic.hpp"

namespace fepia::radius::backend {

AccuracyInterval relativeEnvelope(double rho, double err) noexcept {
  AccuracyInterval e;
  if (std::isfinite(rho)) {
    e.lo = rho * (1.0 - err);
    e.hi = rho * (1.0 + err);
  }
  return e;
}

RadiusOutcome outcomeFromMergedReport(
    std::shared_ptr<const MergedRobustnessReport> report) {
  RadiusOutcome out;
  out.rho = report->rho;
  if (!report->features.empty()) {
    out.criticalFeatureIndex = report->criticalFeature;
    out.criticalFeature = report->features[report->criticalFeature].featureName;
  }
  out.exact = !report->features.empty();
  for (const MergedFeatureReport& fr : report->features) {
    out.exact = out.exact && fr.radius.exact && fr.radius.method != Method::Numeric;
    out.classifications += fr.radius.evaluations;
  }
  out.merged = std::move(report);
  return out;
}

std::size_t RadiusProblem::dimension() const {
  return problem != nullptr ? problem->features().dimension() : 0;
}

std::size_t RadiusProblem::featureCount() const {
  return problem != nullptr ? problem->features().size() : 0;
}

bool RadiusProblem::allFeaturesClosedForm() const {
  if (problem == nullptr) {
    return false;
  }
  for (const feature::BoundedFeature& bf : problem->features()) {
    const feature::PerformanceFeature* phi = bf.feature.get();
    if (dynamic_cast<const feature::LinearFeature*>(phi) == nullptr &&
        dynamic_cast<const feature::QuadraticFeature*>(phi) == nullptr) {
      return false;
    }
  }
  return true;
}

void RadiusProblem::validate() const {
  if (problem == nullptr && system == nullptr) {
    throw std::invalid_argument(
        "RadiusProblem: neither a FepiaProblem nor a reference system is set");
  }
  if (desClassification && system == nullptr) {
    throw std::invalid_argument(
        "RadiusProblem: DES classification requires a reference system");
  }
  if (!scenarios.empty() && system == nullptr) {
    throw std::invalid_argument(
        "RadiusProblem: fault scenarios require a reference system");
  }
}

std::string Backend::incapabilityReason(const RadiusProblem& problem) const {
  const Capability& cap = capability();
  if (cap.requiresProblem && problem.problem == nullptr) {
    return "requires an explicit FepiaProblem";
  }
  if (cap.requiresSystem && problem.system == nullptr) {
    return "requires a DES-backed reference system";
  }
  if (cap.requiresClosedFormFeatures && !problem.allFeaturesClosedForm()) {
    return "requires closed-form (linear/quadratic) features";
  }
  if (cap.maxDimension != 0 && problem.dimension() > cap.maxDimension) {
    std::ostringstream os;
    os << "dimension " << problem.dimension() << " exceeds the backend cap of "
       << cap.maxDimension;
    return os.str();
  }
  if (!problem.scenarios.empty() && !cap.supportsFaultScenarios) {
    return "cannot honor fault scenarios";
  }
  if (problem.desClassification && !cap.classifiesByDes) {
    return "classifies analytically, but the problem requires DES classification";
  }
  if (!problem.desClassification && cap.classifiesByDes) {
    return "classifies by DES simulation, but the problem is analytic";
  }
  return {};
}

}  // namespace fepia::radius::backend
