// The numeric kernel: the multistart nearest-boundary solver of src/opt
// forced on every feature, through the same P-space construction as
// MergedAnalysis (radius/merge.cpp). Capable for any differentiable
// feature — the fallback when a feature has no closed form — at a cost
// dominated by multistart ray probes and refinement iterations.
#include <memory>
#include <optional>

#include "feature/transform.hpp"
#include "radius/registry/registry.hpp"

namespace fepia::radius::backend {
namespace {

class NumericBackend final : public Backend {
 public:
  const std::string& name() const noexcept override {
    static const std::string kName = "numeric";
    return kName;
  }

  const Capability& capability() const noexcept override {
    static const Capability kCap{/*requiresProblem=*/true,
                                 /*requiresClosedFormFeatures=*/false,
                                 /*maxDimension=*/0,
                                 /*requiresSystem=*/false,
                                 /*supportsFaultScenarios=*/false,
                                 /*classifiesByDes=*/false};
    return kCap;
  }

  double cost(const RadiusProblem& problem,
              const RadiusRequest& request) const override {
    const auto& solver = request.numeric.solver;
    const double dim = static_cast<double>(problem.dimension());
    const double probes =
        static_cast<double>(solver.multistarts) +
        (solver.probeAxes ? 2.0 * dim : 0.0);
    const double perFeature =
        probes * (dim + 1.0) +
        static_cast<double>(solver.maxRefineIterations) * (dim + 1.0);
    return static_cast<double>(problem.featureCount()) * perFeature;
  }

  double unitsPerSecond() const noexcept override { return 5.0e6; }

  double accuracy(const RadiusProblem& /*problem*/,
                  const RadiusRequest& /*request*/) const override {
    // Empirically the converged multistart solver lands within ~1e-5 of
    // the closed form up to dimension 32 (property_radius_test); declare
    // two orders of margin so small-radius problems (where the solver's
    // absolute floor dominates the relative error) stay inside.
    return 1.0e-3;
  }

  RadiusOutcome solve(const RadiusProblem& problem, const RadiusRequest& request,
                      parallel::ThreadPool* /*pool*/) const override {
    // Mirrors MergedAnalysis (radius/merge.cpp) except the per-feature
    // P-space radius is solved by featureRadiusNumeric — the closed-form
    // dispatch is bypassed, not re-derived.
    const FepiaProblem& fp = *problem.problem;
    const feature::FeatureSet& phi = fp.features();
    const perturb::PerturbationSpace& space = fp.space();
    if (phi.empty()) {
      throw std::invalid_argument("numeric backend: empty feature set");
    }
    if (phi.dimension() != space.totalDimension()) {
      throw std::invalid_argument(
          "numeric backend: feature set dimension does not match space");
    }

    auto report = std::make_shared<MergedRobustnessReport>();
    report->scheme = problem.scheme;
    report->features.reserve(phi.size());
    const la::Vector piOrig = space.concatenatedOriginal();

    for (std::size_t i = 0; i < phi.size(); ++i) {
      const feature::BoundedFeature& bf = phi[i];
      MergedFeatureReport fr;
      fr.featureName = bf.feature->name();

      std::optional<DiagonalMap> map;
      if (problem.scheme == MergeScheme::NormalizedByOriginal) {
        map.emplace(normalizedMap(space));
      } else {
        // The per-kind alphas stay closed-form where available: they
        // *define* this feature's P-space, shared with the analytic
        // kernel so both solve the same geometry.
        const SensitivityWeights sw =
            sensitivityWeights(*bf.feature, bf.bounds, space, request.numeric);
        bool anySensitive = false;
        for (double a : sw.alphas) anySensitive = anySensitive || a != 0.0;
        if (!anySensitive) {
          throw std::domain_error("numeric backend: feature '" +
                                  bf.feature->name() +
                                  "' has infinite radius against every kind");
        }
        fr.alphasPerKind = sw.alphas;
        map.emplace(sensitivityMap(space, sw));
      }
      fr.mapWeights = map->weights();

      la::Vector scale(map->dimension());
      la::Vector shift(map->dimension());
      for (std::size_t d = 0; d < map->dimension(); ++d) {
        if (map->weights()[d] != 0.0) {
          scale[d] = 1.0 / map->weights()[d];
          shift[d] = 0.0;
        } else {
          scale[d] = 0.0;
          shift[d] = piOrig[d];
        }
      }
      const auto fP = feature::precomposeAffineDiagonal(bf.feature, scale, shift);
      fr.radius =
          featureRadiusNumeric(*fP, bf.bounds, map->toP(piOrig), request.numeric);

      if (fr.radius.radius < report->rho) {
        report->rho = fr.radius.radius;
        report->criticalFeature = i;
      }
      report->features.push_back(std::move(fr));
    }

    RadiusOutcome out = outcomeFromMergedReport(std::move(report));
    out.envelope = relativeEnvelope(out.rho, accuracy(problem, request));
    return out;
  }
};

FEPIA_REGISTER_RADIUS_BACKEND(NumericBackend)

}  // namespace

int detail::anchorNumericBackend() { return 0; }

}  // namespace fepia::radius::backend
