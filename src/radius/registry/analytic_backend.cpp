// The analytic kernel: closed-form per-feature radii via MergedAnalysis.
//
// Capable only when every feature has a closed-form boundary (linear
// hyperplane distance, Eq. (4), or the quadric closed form), which is
// what makes its declared accuracy essentially machine epsilon — and its
// cost the cheapest by orders of magnitude, so the scheduler prefers it
// whenever the capability predicate holds.
#include <memory>

#include "radius/registry/registry.hpp"

namespace fepia::radius::backend {
namespace {

class AnalyticBackend final : public Backend {
 public:
  const std::string& name() const noexcept override {
    static const std::string kName = "analytic";
    return kName;
  }

  const Capability& capability() const noexcept override {
    static const Capability kCap{/*requiresProblem=*/true,
                                 /*requiresClosedFormFeatures=*/true,
                                 /*maxDimension=*/0,
                                 /*requiresSystem=*/false,
                                 /*supportsFaultScenarios=*/false,
                                 /*classifiesByDes=*/false};
    return kCap;
  }

  double cost(const RadiusProblem& problem,
              const RadiusRequest& /*request*/) const override {
    // One closed-form solve per feature (the sensitivity scheme adds a
    // per-kind solve each, still O(dim) arithmetic per solve).
    return static_cast<double>(problem.featureCount()) *
           static_cast<double>(problem.dimension() + 1);
  }

  double unitsPerSecond() const noexcept override { return 2.0e8; }

  double accuracy(const RadiusProblem& /*problem*/,
                  const RadiusRequest& /*request*/) const override {
    return 1.0e-12;
  }

  RadiusOutcome solve(const RadiusProblem& problem, const RadiusRequest& request,
                      parallel::ThreadPool* /*pool*/) const override {
    const MergedAnalysis analysis = problem.problem->merged(problem.scheme);
    RadiusOutcome out = outcomeFromMergedReport(
        std::make_shared<MergedRobustnessReport>(analysis.report()));
    out.envelope = relativeEnvelope(out.rho, accuracy(problem, request));
    return out;
  }
};

FEPIA_REGISTER_RADIUS_BACKEND(AnalyticBackend)

}  // namespace

int detail::anchorAnalyticBackend() { return 0; }

}  // namespace fepia::radius::backend
