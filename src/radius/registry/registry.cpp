#include "radius/registry/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace fepia::radius::backend {

BackendRegistry& BackendRegistry::instance() {
  // Referencing the per-TU anchors forces a static-library link to pull
  // in the backend TUs whose registrars populate the registry. Volatile
  // so the sum cannot be folded away together with the calls.
  [[maybe_unused]] static volatile int anchors =
      detail::anchorAnalyticBackend() + detail::anchorNumericBackend() +
      detail::anchorEmpiricalBackend() +
      detail::anchorEmpiricalBatchedBackend() + detail::anchorDegradedBackend();
  static BackendRegistry registry;
  return registry;
}

const Backend& BackendRegistry::add(std::unique_ptr<Backend> backend) {
  if (backend == nullptr) {
    throw std::invalid_argument("BackendRegistry: null backend");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& existing : backends_) {
    if (existing->name() == backend->name()) {
      throw std::invalid_argument("BackendRegistry: duplicate backend '" +
                                  backend->name() + "'");
    }
  }
  backends_.push_back(std::move(backend));
  return *backends_.back();
}

const Backend* BackendRegistry::find(std::string_view name) const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& backend : backends_) {
    if (backend->name() == name) {
      return backend.get();
    }
  }
  return nullptr;
}

std::vector<const Backend*> BackendRegistry::all() const {
  std::vector<const Backend*> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(backends_.size());
    for (const auto& backend : backends_) {
      out.push_back(backend.get());
    }
  }
  std::sort(out.begin(), out.end(), [](const Backend* a, const Backend* b) {
    return a->name() < b->name();
  });
  return out;
}

std::size_t BackendRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return backends_.size();
}

}  // namespace fepia::radius::backend
