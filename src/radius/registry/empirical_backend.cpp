// The empirical kernel: Monte-Carlo validation of the merge scheme via
// validate::validateMergedScheme — directional boundary probes around
// P^orig with a bootstrap confidence interval. Its answer is an upper
// bound (the minimum over sampled directions), so the declared envelope
// is one-sided: [ci.lo, rho] — the CI's lower end is engineered to
// contain the true radius even in high dimension, the answer itself
// cannot undershoot it.
#include <algorithm>
#include <cmath>
#include <memory>

#include "radius/registry/registry.hpp"

namespace fepia::radius::backend {
namespace {

class EmpiricalBackend final : public Backend {
 public:
  const std::string& name() const noexcept override {
    static const std::string kName = "empirical";
    return kName;
  }

  const Capability& capability() const noexcept override {
    static const Capability kCap{/*requiresProblem=*/true,
                                 /*requiresClosedFormFeatures=*/false,
                                 /*maxDimension=*/0,
                                 /*requiresSystem=*/false,
                                 /*supportsFaultScenarios=*/false,
                                 /*classifiesByDes=*/false};
    return kCap;
  }

  double cost(const RadiusProblem& problem,
              const RadiusRequest& request) const override {
    // Per feature: directions rays, each a march + ~60-step bisection of
    // feature evaluations (~80 classifications per ray in practice).
    return static_cast<double>(problem.featureCount()) *
           static_cast<double>(request.estimator.directions) * 80.0;
  }

  double unitsPerSecond() const noexcept override { return 1.0e6; }

  double accuracy(const RadiusProblem& problem,
                  const RadiusRequest& request) const override {
    // The directional minimum's upward bias grows with dimension and
    // shrinks with sample size; the polish removes most but not all.
    const double dim = static_cast<double>(std::max<std::size_t>(
        problem.dimension(), 1));
    const double dirs = static_cast<double>(
        std::max<std::size_t>(request.estimator.directions, 1));
    return std::min(1.0, 0.02 + 2.0 * std::sqrt(dim / dirs));
  }

  RadiusOutcome solve(const RadiusProblem& problem, const RadiusRequest& request,
                      parallel::ThreadPool* pool) const override {
    auto v = std::make_shared<validate::SchemeValidation>(
        validate::validateMergedScheme(*problem.problem, problem.scheme,
                                       request.estimator, pool));
    RadiusOutcome out;
    out.rho = v->rho.empirical.radius;
    if (out.finite()) {
      // One-sided: the sampled minimum is a hard upper bound on the true
      // radius, the bootstrap CI extends below it.
      out.envelope.lo = std::min(v->rho.empirical.ci.lo, out.rho);
      out.envelope.hi = out.rho * (1.0 + 1e-12);
    }
    if (!v->perFeature.empty()) {
      out.criticalFeatureIndex = v->criticalFeature;
      out.criticalFeature = v->perFeature[v->criticalFeature].label;
    }
    for (const validate::Comparison& row : v->allRows()) {
      out.classifications += row.empirical.classifications;
    }
    out.validation = std::move(v);
    return out;
  }
};

FEPIA_REGISTER_RADIUS_BACKEND(EmpiricalBackend)

}  // namespace

int detail::anchorEmpiricalBackend() { return 0; }

}  // namespace fepia::radius::backend
