// The backend registry: self-registering radius kernels.
//
// Each backend translation unit registers its kernel with a static
// registrar (FEPIA_REGISTER_RADIUS_BACKEND), the pattern of mindspore
// lite's kernel_registry: the registrar's initializer runs before main,
// inserting the kernel into the construct-on-first-use singleton, so
// adding a backend is adding one TU — no central list to edit. Static
// libraries strip unreferenced TUs, which would silently drop the
// registrars; each backend TU therefore also defines an anchor function
// that registry.cpp references, forcing the linker to keep it.
#pragma once

#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "radius/registry/backend.hpp"

namespace fepia::radius::backend {

/// A set of radius backends addressable by name. The process-wide
/// instance() holds the statically registered kernels; tests build their
/// own registries with fakes through the public constructor.
class BackendRegistry {
 public:
  BackendRegistry() = default;
  BackendRegistry(const BackendRegistry&) = delete;
  BackendRegistry& operator=(const BackendRegistry&) = delete;

  /// The global registry. A C++ magic static: initialization is
  /// thread-safe and happens on first use, which for the statically
  /// registered kernels is during their registrars' dynamic
  /// initialization (single-threaded, before main).
  static BackendRegistry& instance();

  /// Registers a kernel. Throws std::invalid_argument on a null backend
  /// or a duplicate name. Returns the registered backend (the macro's
  /// registrar binds a reference to it). Thread-safe.
  const Backend& add(std::unique_ptr<Backend> backend);

  /// Looks up a backend by name; null when absent.
  [[nodiscard]] const Backend* find(std::string_view name) const noexcept;

  /// Every registered backend, sorted by name (deterministic iteration
  /// regardless of registration order).
  [[nodiscard]] std::vector<const Backend*> all() const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Backend>> backends_;
};

namespace detail {
// Anchors defined one-per-backend-TU and referenced by registry.cpp so a
// static-library link cannot discard the registrar objects.
int anchorAnalyticBackend();
int anchorNumericBackend();
int anchorEmpiricalBackend();
int anchorEmpiricalBatchedBackend();
int anchorDegradedBackend();
}  // namespace detail

/// Registers `BackendClass` (default-constructible Backend subclass)
/// into the global registry at static-initialization time. Use at
/// namespace scope inside the backend's own translation unit.
#define FEPIA_REGISTER_RADIUS_BACKEND(BackendClass)                       \
  namespace {                                                             \
  [[maybe_unused]] const ::fepia::radius::backend::Backend&               \
      kRegistered##BackendClass =                                         \
          ::fepia::radius::backend::BackendRegistry::instance().add(      \
              std::make_unique<BackendClass>());                          \
  }

}  // namespace fepia::radius::backend
