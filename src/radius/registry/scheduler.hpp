// Cost-model scheduling over the backend registry.
//
// solveRadius answers "compute the robustness radius of this problem to
// this accuracy" without the caller naming an implementation, after the
// cheapest-method-meeting-accuracy idea of Chen et al.'s fast
// robustness-degradation construction: filter the registered kernels by
// capability, then by declared accuracy and the deadline, sort the
// survivors by modelled cost (name-tiebroken, so scheduling is
// deterministic), and run them in order until one answers. Every skip,
// bound relaxation, and runtime failure is recorded in the outcome's
// fallback chain and in the registry.* metrics.
#pragma once

#include "radius/registry/registry.hpp"

namespace fepia::radius::backend {

/// Solves `problem` with the cheapest capable backend of `registry`
/// meeting `request` (or with request.backendOverride, which must name a
/// capable backend). Throws std::invalid_argument on a malformed
/// problem; BackendError on an unknown/incapable override, when no
/// registered backend is capable, or when every candidate fails at solve
/// time. Safe to call concurrently as long as request.metrics is null
/// (obs::Registry is not thread-safe).
[[nodiscard]] RadiusOutcome solveRadius(const BackendRegistry& registry,
                                        const RadiusProblem& problem,
                                        const RadiusRequest& request,
                                        parallel::ThreadPool* pool = nullptr);

/// Same, against the global BackendRegistry::instance().
[[nodiscard]] RadiusOutcome solveRadius(const RadiusProblem& problem,
                                        const RadiusRequest& request,
                                        parallel::ThreadPool* pool = nullptr);

}  // namespace fepia::radius::backend
