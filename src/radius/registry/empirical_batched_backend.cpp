// The batched empirical kernel: the same Monte-Carlo estimator as the
// "empirical" backend, classified through the SoA block kernels of
// src/classify instead of point-at-a-time feature evaluation. Per-ray
// probe sequences, evaluation counts and every bit of every radius are
// identical to "empirical" — the kernels replicate the scalar
// accumulation order — so the two backends share one accuracy envelope
// and differ only in throughput, which the cost model reflects: the
// scheduler prefers this kernel whenever both are capable.
#include <algorithm>
#include <cmath>
#include <memory>

#include "radius/registry/registry.hpp"

namespace fepia::radius::backend {
namespace {

class EmpiricalBatchedBackend final : public Backend {
 public:
  const std::string& name() const noexcept override {
    static const std::string kName = "empirical-batched";
    return kName;
  }

  const Capability& capability() const noexcept override {
    static const Capability kCap{/*requiresProblem=*/true,
                                 /*requiresClosedFormFeatures=*/false,
                                 /*maxDimension=*/0,
                                 /*requiresSystem=*/false,
                                 /*supportsFaultScenarios=*/false,
                                 /*classifiesByDes=*/false};
    return kCap;
  }

  double cost(const RadiusProblem& problem,
              const RadiusRequest& request) const override {
    // Same ray count as "empirical", but one SoA block call classifies
    // a whole chunk front per round: the per-classification constant
    // drops by an order of magnitude (see BENCH_validation.json).
    return static_cast<double>(problem.featureCount()) *
           static_cast<double>(request.estimator.directions) * 8.0;
  }

  double unitsPerSecond() const noexcept override { return 1.0e6; }

  double accuracy(const RadiusProblem& problem,
                  const RadiusRequest& request) const override {
    // Identical results, identical declared accuracy: the directional
    // minimum's upward bias grows with dimension and shrinks with
    // sample size; the polish removes most but not all.
    const double dim = static_cast<double>(std::max<std::size_t>(
        problem.dimension(), 1));
    const double dirs = static_cast<double>(
        std::max<std::size_t>(request.estimator.directions, 1));
    return std::min(1.0, 0.02 + 2.0 * std::sqrt(dim / dirs));
  }

  RadiusOutcome solve(const RadiusProblem& problem, const RadiusRequest& request,
                      parallel::ThreadPool* pool) const override {
    // Honor the requested kernel mode unless it asks for the scalar
    // reference — that is the "empirical" backend's job; this one always
    // batches (callers opt into the f32 pre-pass via
    // estimator.classifyMode = BatchedF32).
    validate::EstimatorOptions estimator = request.estimator;
    if (estimator.classifyMode == classify::Mode::Scalar) {
      estimator.classifyMode = classify::Mode::Batched;
    }
    auto v = std::make_shared<validate::SchemeValidation>(
        validate::validateMergedScheme(*problem.problem, problem.scheme,
                                       estimator, pool));
    RadiusOutcome out;
    out.rho = v->rho.empirical.radius;
    if (out.finite()) {
      // One-sided: the sampled minimum is a hard upper bound on the true
      // radius, the bootstrap CI extends below it.
      out.envelope.lo = std::min(v->rho.empirical.ci.lo, out.rho);
      out.envelope.hi = out.rho * (1.0 + 1e-12);
    }
    if (!v->perFeature.empty()) {
      out.criticalFeatureIndex = v->criticalFeature;
      out.criticalFeature = v->perFeature[v->criticalFeature].label;
    }
    for (const validate::Comparison& row : v->allRows()) {
      out.classifications += row.empirical.classifications;
    }
    out.validation = std::move(v);
    return out;
  }
};

FEPIA_REGISTER_RADIUS_BACKEND(EmpiricalBatchedBackend)

}  // namespace

int detail::anchorEmpiricalBatchedBackend() { return 0; }

}  // namespace fepia::radius::backend
