// The degraded kernel: fault::estimateDegradedRadius — the DES-classified
// empirical radius with discrete fault scenarios riding along on the
// probe-direction index. The only kernel that classifies the safe region
// by simulation, and the only one that honors fault scenarios; it never
// substitutes for the analytic kernels (queueing shrinks the region, so
// the two questions have different answers — the capability predicate
// keeps them apart).
#include <algorithm>
#include <cmath>
#include <memory>

#include "radius/registry/registry.hpp"

namespace fepia::radius::backend {
namespace {

class DegradedBackend final : public Backend {
 public:
  const std::string& name() const noexcept override {
    static const std::string kName = "degraded";
    return kName;
  }

  const Capability& capability() const noexcept override {
    static const Capability kCap{/*requiresProblem=*/false,
                                 /*requiresClosedFormFeatures=*/false,
                                 /*maxDimension=*/0,
                                 /*requiresSystem=*/true,
                                 /*supportsFaultScenarios=*/true,
                                 /*classifiesByDes=*/true};
    return kCap;
  }

  double cost(const RadiusProblem& problem,
              const RadiusRequest& request) const override {
    // Every classification is a full DES run of `generations` data sets;
    // estimateDegradedRadius applies the --des default of 64 directions
    // unless the caller chose them explicitly.
    const double dirs = static_cast<double>(
        request.degraded.explicitDirections ? request.estimator.directions
                                            : 64);
    double events = 0.0;
    for (const fault::FaultPlan& plan : problem.scenarios) {
      events += static_cast<double>(plan.eventCount());
    }
    return dirs * 80.0 * static_cast<double>(request.degraded.generations) *
           (1.0 + events / 16.0);
  }

  double unitsPerSecond() const noexcept override { return 5.0e4; }

  double accuracy(const RadiusProblem& /*problem*/,
                  const RadiusRequest& request) const override {
    // Looser than the plain empirical kernel: the DES answer carries the
    // sampling bias plus data-set variability across generations.
    const double dirs = static_cast<double>(
        request.degraded.explicitDirections
            ? std::max<std::size_t>(request.estimator.directions, 1)
            : 64);
    const double gens = static_cast<double>(
        std::max<std::size_t>(request.degraded.generations, 1));
    return std::min(1.0, 0.05 + 2.0 / std::sqrt(dirs) + 1.0 / std::sqrt(gens));
  }

  RadiusOutcome solve(const RadiusProblem& problem, const RadiusRequest& request,
                      parallel::ThreadPool* pool) const override {
    auto est = std::make_shared<fault::DegradedEstimate>(
        fault::estimateDegradedRadius(*problem.system, problem.scenarios,
                                      request.estimator, request.degraded,
                                      pool));
    RadiusOutcome out;
    out.rho = est->degraded.radius;
    if (out.finite()) {
      out.envelope.lo = std::min(est->degraded.ci.lo, out.rho);
      out.envelope.hi = out.rho * (1.0 + 1e-12);
    }
    out.criticalFeature = est->criticalFeature;
    out.classifications = est->degraded.classifications;
    out.degraded = std::move(est);
    return out;
  }
};

FEPIA_REGISTER_RADIUS_BACKEND(DegradedBackend)

}  // namespace

int detail::anchorDegradedBackend() { return 0; }

}  // namespace fepia::radius::backend
