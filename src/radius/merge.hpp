// Merging multiple perturbation kinds into the dimensionless P-space —
// Section 3 of the paper, in both variants:
//
//  * Sensitivity-based weighting ([2]'s preliminary proposal, analysed in
//    Section 3.1): P = (alpha_1 x pi_1) ⋆ ... with alpha_j =
//    1 / r_mu(phi_i, pi_j), the reciprocal of the per-kind robustness
//    radius computed with all other kinds pinned at their assumed values.
//    The paper proves this degenerates for linear features of one-element
//    kinds (radius identically 1/sqrt(n)).
//
//  * Normalization by original values (the paper's Section 3.2 proposal):
//    P = [pi_11/pi_11^orig, ...], so P^orig = [1, ..., 1] and both P and
//    the radius are dimensionless.
//
// Both are diagonal changes of variable P = w ⊙ pi, captured by
// DiagonalMap; features are pushed into P-space by pre-composition with
// the inverse scaling (structure-preserving, see feature/transform.hpp).
#pragma once

#include <span>
#include <vector>

#include "feature/feature.hpp"
#include "perturb/space.hpp"
#include "radius/engine.hpp"
#include "radius/rho.hpp"

namespace fepia::radius {

/// Which merge scheme builds P-space.
enum class MergeScheme { Sensitivity, NormalizedByOriginal };

/// Human-readable scheme name ("sensitivity" / "normalized").
[[nodiscard]] const char* mergeSchemeName(MergeScheme s) noexcept;

/// Diagonal change of variable P = weights ⊙ pi between the concatenated
/// pi-space and P-space.
///
/// Weights must be finite and not all zero. Individual zero weights are
/// allowed — they arise in the sensitivity scheme when a feature is
/// insensitive to a kind (alpha_j = lim 1/r_j = 0 as r_j → ∞): such
/// coordinates carry no information in P-space, so `fromP` refuses and
/// `fromPOnto` fills them from a base point instead.
class DiagonalMap {
 public:
  /// Throws std::invalid_argument when empty, non-finite, or all zero.
  explicit DiagonalMap(la::Vector weights);

  [[nodiscard]] std::size_t dimension() const noexcept { return weights_.size(); }
  [[nodiscard]] const la::Vector& weights() const noexcept { return weights_; }

  /// True when every weight is nonzero (the map is invertible).
  [[nodiscard]] bool invertible() const noexcept;

  /// pi-space -> P-space: P = w ⊙ pi.
  [[nodiscard]] la::Vector toP(const la::Vector& pi) const;

  /// P-space -> pi-space: pi = P / w (elementwise).
  /// Throws std::domain_error when the map has zero weights.
  [[nodiscard]] la::Vector fromP(const la::Vector& p) const;

  /// P-space -> pi-space with zero-weight coordinates taken from `base`
  /// (the assumed operating point) — the pseudo-inverse consistent with
  /// alpha_j = 0 semantics.
  [[nodiscard]] la::Vector fromPOnto(const la::Vector& p,
                                     const la::Vector& base) const;

  /// The inverse weights 1/w; throws std::domain_error on zero weights.
  [[nodiscard]] la::Vector inverseWeights() const;

 private:
  la::Vector weights_;
};

/// The paper's Section 3.2 map: w = 1 / pi^orig elementwise.
/// Throws std::domain_error when any original element is zero.
[[nodiscard]] DiagonalMap normalizedMap(const perturb::PerturbationSpace& space);

/// Per-kind sensitivity weights for one feature: alpha_j and the per-kind
/// radii they came from.
struct SensitivityWeights {
  std::vector<double> alphas;               ///< one per kind, 1/r_j
  std::vector<RadiusResult> perKindRadius;  ///< r_mu(phi_i, pi_j)
};

/// Computes alpha_j = 1 / r_mu(phi_i, pi_j) per Step 1 of Section 3.1:
/// the radius of `phi` restricted to kind j with every other kind at its
/// assumed value. A kind the feature is insensitive to has infinite
/// per-kind radius and receives alpha_j = 0 (the limit of 1/r); its
/// perturbations then do not count against this feature. Throws
/// std::domain_error when a per-kind radius is zero (the assumed point
/// already sits on that boundary).
[[nodiscard]] SensitivityWeights sensitivityWeights(
    const feature::PerformanceFeature& phi,
    const feature::FeatureBounds& bounds,
    const perturb::PerturbationSpace& space, const NumericOptions& opts = {});

/// Expands per-kind alphas into the per-element DiagonalMap
/// (every element of kind j gets weight alpha_j).
[[nodiscard]] DiagonalMap sensitivityMap(const perturb::PerturbationSpace& space,
                                         const SensitivityWeights& weights);

/// Per-feature result of a merged (P-space) robustness analysis.
struct MergedFeatureReport {
  std::string featureName;
  /// Radius in P-space — r_mu(phi_i, P), Eq. (2); dimensionless.
  RadiusResult radius;
  /// The map that built this feature's P-space. Under the sensitivity
  /// scheme each feature has its own alphas; the normalized map is shared.
  la::Vector mapWeights;
  /// Per-kind alphas (sensitivity scheme only; empty otherwise).
  std::vector<double> alphasPerKind;
};

/// rho_mu(Phi, P) with per-feature detail.
struct MergedRobustnessReport {
  MergeScheme scheme{};
  double rho = std::numeric_limits<double>::infinity();
  std::size_t criticalFeature = 0;
  std::vector<MergedFeatureReport> features;

  [[nodiscard]] bool finite() const noexcept {
    return rho < std::numeric_limits<double>::infinity();
  }
};

/// Result of the paper's operating-point check (Section 3 steps (a)-(c)).
struct ToleranceCheck {
  bool tolerated = false;   ///< every feature: ‖P − P^orig‖ < r_mu(phi_i, P)
  double worstMargin = 0.0; ///< min over features of (radius − distance)
  std::vector<double> distances;  ///< per-feature ‖P − P^orig‖₂
  std::vector<double> radii;      ///< per-feature radii
};

/// Full multi-kind robustness analysis: builds P-space per scheme, pushes
/// every feature through the map, and computes per-feature radii and rho.
class MergedAnalysis {
 public:
  /// Throws std::invalid_argument when `phi` is empty, dimensions do not
  /// match the space, or (normalized scheme) an original element is zero;
  /// std::domain_error when sensitivity weighting is undefined.
  MergedAnalysis(feature::FeatureSet phi, perturb::PerturbationSpace space,
                 MergeScheme scheme, NumericOptions opts = {});

  [[nodiscard]] const MergedRobustnessReport& report() const noexcept {
    return report_;
  }

  [[nodiscard]] const perturb::PerturbationSpace& space() const noexcept {
    return space_;
  }

  /// The paper's procedure for deciding whether the system can operate at
  /// the given per-kind parameter values without violating a constraint:
  /// (a) convert to P, (b) measure ‖P − P^orig‖₂, (c) compare with the
  /// radius — per feature, under that feature's own map.
  [[nodiscard]] ToleranceCheck check(std::span<const la::Vector> perKind) const;

 private:
  feature::FeatureSet phi_;
  perturb::PerturbationSpace space_;
  NumericOptions opts_;
  MergedRobustnessReport report_;
  std::vector<DiagonalMap> perFeatureMap_;
};

}  // namespace fepia::radius
