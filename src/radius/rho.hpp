// Aggregation over the feature set — the robustness metric
// rho_mu(Phi, ·) = min over phi_i in Phi of r_mu(phi_i, ·).
#pragma once

#include <vector>

#include "feature/feature.hpp"
#include "radius/engine.hpp"

namespace fepia::radius {

/// rho with per-feature detail.
struct RobustnessReport {
  /// rho_mu(Phi, pi): the smallest per-feature radius.
  double rho = std::numeric_limits<double>::infinity();
  /// Index into `perFeature` of the radius-determining (critical) feature.
  std::size_t criticalFeature = 0;
  /// Per-feature radii, one per element of Phi in order.
  std::vector<RadiusResult> perFeature;
  /// Names matching `perFeature` (for reports).
  std::vector<std::string> featureNames;

  [[nodiscard]] bool finite() const noexcept {
    return rho < std::numeric_limits<double>::infinity();
  }
};

/// Computes rho_mu(Phi, pi) from the operating point `orig` in the
/// feature set's native perturbation space.
/// Throws std::invalid_argument when `phi` is empty or dimensions differ.
[[nodiscard]] RobustnessReport robustness(const feature::FeatureSet& phi,
                                          const la::Vector& orig,
                                          const NumericOptions& opts = {});

}  // namespace fepia::radius
