#include "feature/generic.hpp"

#include <stdexcept>

namespace fepia::feature {

GenericFeature::GenericFeature(std::string name, std::size_t dimension,
                               ad::DualField field, units::Unit valueUnit)
    : name_(std::move(name)), dim_(dimension), field_(std::move(field)),
      unit_(valueUnit) {
  if (!field_) {
    throw std::invalid_argument("feature::GenericFeature '" + name_ +
                                "': null field");
  }
  if (dim_ == 0) {
    throw std::invalid_argument("feature::GenericFeature '" + name_ +
                                "': zero dimension");
  }
}

void GenericFeature::checkDim(const la::Vector& pi) const {
  if (pi.size() != dim_) {
    throw std::invalid_argument("feature::GenericFeature '" + name_ +
                                "': dimension mismatch");
  }
}

double GenericFeature::evaluate(const la::Vector& pi) const {
  checkDim(pi);
  return ad::evaluate(field_, pi);
}

la::Vector GenericFeature::gradient(const la::Vector& pi) const {
  checkDim(pi);
  return ad::gradient(field_, pi);
}

CallableFeature::CallableFeature(std::string name, std::size_t dimension, Fn fn,
                                 units::Unit valueUnit)
    : name_(std::move(name)), dim_(dimension), fn_(std::move(fn)),
      unit_(valueUnit) {
  if (!fn_) {
    throw std::invalid_argument("feature::CallableFeature '" + name_ +
                                "': null callable");
  }
  if (dim_ == 0) {
    throw std::invalid_argument("feature::CallableFeature '" + name_ +
                                "': zero dimension");
  }
}

void CallableFeature::checkDim(const la::Vector& pi) const {
  if (pi.size() != dim_) {
    throw std::invalid_argument("feature::CallableFeature '" + name_ +
                                "': dimension mismatch");
  }
}

double CallableFeature::evaluate(const la::Vector& pi) const {
  checkDim(pi);
  return fn_(pi);
}

la::Vector CallableFeature::gradient(const la::Vector& pi) const {
  checkDim(pi);
  return ad::finiteDifferenceGradient(fn_, pi);
}

}  // namespace fepia::feature
