#include "feature/feature.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fepia::feature {

FeatureBounds::FeatureBounds(double betaMin, double betaMax)
    : min_(betaMin), max_(betaMax) {
  if (std::isnan(betaMin) || std::isnan(betaMax) || betaMin > betaMax) {
    throw std::invalid_argument("feature::FeatureBounds: need betaMin <= betaMax");
  }
}

FeatureBounds FeatureBounds::upper(double betaMax) {
  return FeatureBounds(-std::numeric_limits<double>::infinity(), betaMax);
}

FeatureBounds FeatureBounds::lower(double betaMin) {
  return FeatureBounds(betaMin, std::numeric_limits<double>::infinity());
}

FeatureBounds FeatureBounds::relativeUpper(double originalValue, double beta) {
  if (beta <= 1.0) {
    throw std::invalid_argument(
        "feature::FeatureBounds::relativeUpper: beta must exceed 1");
  }
  return upper(beta * originalValue);
}

bool FeatureBounds::hasMin() const noexcept { return std::isfinite(min_); }
bool FeatureBounds::hasMax() const noexcept { return std::isfinite(max_); }

bool FeatureBounds::contains(double value) const noexcept {
  return value >= min_ && value <= max_;
}

FeatureBounds::Containment FeatureBounds::classify(double value) const noexcept {
  if (std::isnan(value)) return Containment::NonFinite;
  return (value >= min_ && value <= max_) ? Containment::Inside
                                          : Containment::Outside;
}

void PerformanceFeature::evaluateBlock(const la::PointBlock& block,
                                       std::span<double> out) const {
  if (block.dimension() != dimension()) {
    throw std::invalid_argument("feature::evaluateBlock '" + name() +
                                "': block dimension mismatch");
  }
  if (out.size() < block.lanes()) {
    throw std::invalid_argument("feature::evaluateBlock '" + name() +
                                "': output span too small");
  }
  la::Vector scratch(block.dimension());
  for (std::size_t lane = 0; lane < block.lanes(); ++lane) {
    block.gatherPoint(lane, scratch.span());
    out[lane] = evaluate(scratch);
  }
}

std::size_t FeatureSet::add(std::shared_ptr<const PerformanceFeature> feature,
                            FeatureBounds bounds) {
  if (!feature) throw std::invalid_argument("feature::FeatureSet::add: null");
  if (items_.empty()) {
    dimension_ = feature->dimension();
  } else if (feature->dimension() != dimension_) {
    throw std::invalid_argument(
        "feature::FeatureSet::add: feature '" + feature->name() +
        "' has dimension " + std::to_string(feature->dimension()) +
        ", set expects " + std::to_string(dimension_));
  }
  items_.push_back(BoundedFeature{std::move(feature), bounds});
  return items_.size() - 1;
}

bool FeatureSet::allWithinBounds(const la::Vector& pi) const {
  for (const BoundedFeature& bf : items_) {
    switch (bf.bounds.classify(bf.feature->evaluate(pi))) {
      case FeatureBounds::Containment::Inside:
        break;
      case FeatureBounds::Containment::Outside:
        return false;
      case FeatureBounds::Containment::NonFinite:
        throw NonFiniteFeatureError("feature '" + bf.feature->name() +
                                    "' evaluated to NaN; containment is "
                                    "undefined for an unordered value");
    }
  }
  return true;
}

}  // namespace fepia::feature
