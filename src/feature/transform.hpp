// Feature transformations used by the merge schemes.
//
// Both P-space constructions of the paper are diagonal changes of
// variable P = D·pi (sensitivity weights alpha_j per block, or
// 1/pi^orig per element). A feature phi over pi-space therefore induces
// f_i over P-space by pre-composition with the inverse scaling:
// f_i(P) = phi(D^{-1} P). Sensitivity weighting additionally needs the
// per-kind "slice" of a feature — all other blocks pinned at pi^orig —
// to compute the per-kind radii r_mu(phi_i, pi_j) that define alpha_j.
//
// Transformations preserve closed-form structure: scaling a
// LinearFeature yields a LinearFeature (so the hyperplane radius engine
// still applies), likewise for QuadraticFeature; only genuinely generic
// features fall back to a delegating adaptor.
#pragma once

#include <memory>

#include "feature/feature.hpp"
#include "la/matrix.hpp"

namespace fepia::feature {

/// Returns the feature y ↦ phi(scale ⊙ y) (elementwise product).
/// Throws std::invalid_argument on dimension mismatch, a zero scale
/// element, or a null feature.
[[nodiscard]] std::shared_ptr<const PerformanceFeature> precomposeDiagonal(
    std::shared_ptr<const PerformanceFeature> phi, const la::Vector& scale);

/// Returns the feature y ↦ phi(scale ⊙ y + shift). Zero scale elements
/// are allowed: those input coordinates are pinned at their shift value
/// and the composed feature is constant in them — exactly the semantics
/// of a sensitivity weight alpha_j = 0 (a kind the feature ignores).
/// Throws std::invalid_argument on dimension mismatch or a null feature.
[[nodiscard]] std::shared_ptr<const PerformanceFeature> precomposeAffineDiagonal(
    std::shared_ptr<const PerformanceFeature> phi, const la::Vector& scale,
    const la::Vector& shift);

/// Returns the feature y ↦ phi(A y + b) for a general matrix A (rows =
/// phi's dimension, cols = the new input dimension). The workhorse of
/// non-diagonal changes of variable such as Mahalanobis whitening.
/// Linear and quadratic features transform exactly (k' = A^T k;
/// Q' = A^T Q A); others get a delegating adaptor with chain-rule
/// gradients. Throws std::invalid_argument on shape mismatch or a null
/// feature.
[[nodiscard]] std::shared_ptr<const PerformanceFeature> precomposeAffine(
    std::shared_ptr<const PerformanceFeature> phi, const la::Matrix& a,
    const la::Vector& b);

/// Returns the |block|-dimensional feature z ↦ phi(base with the
/// elements [offset, offset+blockSize) replaced by z) — phi restricted
/// to one perturbation kind with all others held at their assumed
/// values, as in Step 1 of the paper's Section 3.1 analysis.
/// Throws std::invalid_argument when the block does not fit in `base`
/// or `base` mismatches phi's dimension.
[[nodiscard]] std::shared_ptr<const PerformanceFeature> restrictToBlock(
    std::shared_ptr<const PerformanceFeature> phi, const la::Vector& base,
    std::size_t offset, std::size_t blockSize);

/// Returns the feature y ↦ phi(y) + delta (shifts values, not inputs);
/// useful for expressing boundary equations f(pi) − beta = 0 as fields.
[[nodiscard]] std::shared_ptr<const PerformanceFeature> shiftValue(
    std::shared_ptr<const PerformanceFeature> phi, double delta);

}  // namespace fepia::feature
