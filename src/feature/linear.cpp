#include "feature/linear.hpp"

#include <stdexcept>

namespace fepia::feature {

LinearFeature::LinearFeature(std::string name, la::Vector coefficients,
                             double offset, units::Unit valueUnit)
    : name_(std::move(name)),
      coefficients_(std::move(coefficients)),
      offset_(offset),
      unit_(valueUnit) {
  if (coefficients_.empty()) {
    throw std::invalid_argument("feature::LinearFeature '" + name_ +
                                "': empty coefficient vector");
  }
  if (la::norm2(coefficients_) == 0.0) {
    throw std::invalid_argument("feature::LinearFeature '" + name_ +
                                "': all-zero coefficients (no boundary)");
  }
}

double LinearFeature::evaluate(const la::Vector& pi) const {
  if (pi.size() != coefficients_.size()) {
    throw std::invalid_argument("feature::LinearFeature '" + name_ +
                                "': dimension mismatch");
  }
  return la::dot(coefficients_, pi) + offset_;
}

void LinearFeature::evaluateBlock(const la::PointBlock& block,
                                  std::span<double> out) const {
  const std::size_t n = coefficients_.size();
  if (block.dimension() != n) {
    throw std::invalid_argument("feature::LinearFeature '" + name_ +
                                "': block dimension mismatch");
  }
  const std::size_t lanes = block.lanes();
  if (out.size() < lanes) {
    throw std::invalid_argument("feature::LinearFeature '" + name_ +
                                "': output span too small");
  }
  // Lane-parallel replica of la::dot's ascending-j accumulation with the
  // offset added last, matching evaluate() bit for bit per lane. Lanes
  // are processed in small tiles whose accumulators stay in registers
  // across the whole j loop — each per-lane sum is still formed in
  // ascending-j order (tiling never reassociates within a lane), but the
  // output array is written once instead of being re-streamed through
  // memory for every coordinate.
  constexpr std::size_t kTile = 8;
  constexpr std::size_t kMaxStackDim = 64;
  if (n <= kMaxStackDim) {
    const double* rows[kMaxStackDim];
    for (std::size_t j = 0; j < n; ++j) rows[j] = block.coordinate(j).data();
    std::size_t l = 0;
    for (; l + kTile <= lanes; l += kTile) {
      double acc[kTile] = {};
      for (std::size_t j = 0; j < n; ++j) {
        const double kj = coefficients_[j];
        const double* xj = rows[j] + l;
        for (std::size_t t = 0; t < kTile; ++t) acc[t] += kj * xj[t];
      }
      for (std::size_t t = 0; t < kTile; ++t) out[l + t] = acc[t] + offset_;
    }
    for (; l < lanes; ++l) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += coefficients_[j] * rows[j][l];
      out[l] = acc + offset_;
    }
    return;
  }
  // Very high-dimensional fallback: stream the accumulator array.
  for (std::size_t l = 0; l < lanes; ++l) out[l] = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double kj = coefficients_[j];
    const std::span<const double> xj = block.coordinate(j);
    for (std::size_t l = 0; l < lanes; ++l) out[l] += kj * xj[l];
  }
  for (std::size_t l = 0; l < lanes; ++l) out[l] += offset_;
}

la::Vector LinearFeature::gradient(const la::Vector& pi) const {
  if (pi.size() != coefficients_.size()) {
    throw std::invalid_argument("feature::LinearFeature '" + name_ +
                                "': dimension mismatch");
  }
  return coefficients_;
}

}  // namespace fepia::feature
