#include "feature/linear.hpp"

#include <stdexcept>

namespace fepia::feature {

LinearFeature::LinearFeature(std::string name, la::Vector coefficients,
                             double offset, units::Unit valueUnit)
    : name_(std::move(name)),
      coefficients_(std::move(coefficients)),
      offset_(offset),
      unit_(valueUnit) {
  if (coefficients_.empty()) {
    throw std::invalid_argument("feature::LinearFeature '" + name_ +
                                "': empty coefficient vector");
  }
  if (la::norm2(coefficients_) == 0.0) {
    throw std::invalid_argument("feature::LinearFeature '" + name_ +
                                "': all-zero coefficients (no boundary)");
  }
}

double LinearFeature::evaluate(const la::Vector& pi) const {
  if (pi.size() != coefficients_.size()) {
    throw std::invalid_argument("feature::LinearFeature '" + name_ +
                                "': dimension mismatch");
  }
  return la::dot(coefficients_, pi) + offset_;
}

la::Vector LinearFeature::gradient(const la::Vector& pi) const {
  if (pi.size() != coefficients_.size()) {
    throw std::invalid_argument("feature::LinearFeature '" + name_ +
                                "': dimension mismatch");
  }
  return coefficients_;
}

}  // namespace fepia::feature
