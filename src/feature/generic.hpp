// Generic performance feature defined by an arbitrary differentiable
// expression in dual form (forward-mode AD) or, when only a plain scalar
// callable is available, with finite-difference gradients.
#pragma once

#include <functional>
#include <string>

#include "ad/gradient.hpp"
#include "feature/feature.hpp"

namespace fepia::feature {

/// phi(pi) given as an ad::DualField; gradients are exact (one forward
/// sweep per call).
class GenericFeature final : public PerformanceFeature {
 public:
  /// Throws std::invalid_argument on a null field or zero dimension.
  GenericFeature(std::string name, std::size_t dimension, ad::DualField field,
                 units::Unit valueUnit = units::Unit{});

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t dimension() const noexcept override { return dim_; }
  [[nodiscard]] double evaluate(const la::Vector& pi) const override;
  [[nodiscard]] la::Vector gradient(const la::Vector& pi) const override;
  [[nodiscard]] units::Unit unit() const override { return unit_; }

 private:
  void checkDim(const la::Vector& pi) const;

  std::string name_;
  std::size_t dim_;
  ad::DualField field_;
  units::Unit unit_;
};

/// phi(pi) given as a plain scalar callable; gradients use central
/// finite differences (relative step 1e-6). Prefer GenericFeature when
/// the expression can be written over duals.
class CallableFeature final : public PerformanceFeature {
 public:
  using Fn = std::function<double(const la::Vector&)>;

  /// Throws std::invalid_argument on a null callable or zero dimension.
  CallableFeature(std::string name, std::size_t dimension, Fn fn,
                  units::Unit valueUnit = units::Unit{});

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t dimension() const noexcept override { return dim_; }
  [[nodiscard]] double evaluate(const la::Vector& pi) const override;
  [[nodiscard]] la::Vector gradient(const la::Vector& pi) const override;
  [[nodiscard]] units::Unit unit() const override { return unit_; }

 private:
  void checkDim(const la::Vector& pi) const;

  std::string name_;
  std::size_t dim_;
  Fn fn_;
  units::Unit unit_;
};

}  // namespace fepia::feature
