// Performance features phi_i and their tolerable-variation bounds — steps
// 1 and 3 of the FePIA procedure.
//
// A PerformanceFeature is a scalar field over the (concatenated)
// perturbation space: phi_i = f_i(pi). FeatureBounds is the tuple
// <beta_i^min, beta_i^max> of step 1. A FeatureSet is the set Phi whose
// per-feature robustness radii are min-aggregated into rho (step 4).
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "la/point_block.hpp"
#include "la/vector.hpp"
#include "units/unit.hpp"

namespace fepia::feature {

/// A feature evaluated to NaN inside a containment check. NaN has no
/// order, so "within bounds" is undefined for it; silently treating it
/// as a violation (the historical behaviour) hid model bugs inside
/// Monte-Carlo estimates. Matches the finite-or-typed-error contract of
/// the radius backends (tests/backend_fuzz_test.cpp): derives from
/// std::domain_error, so existing typed-error handling catches it.
class NonFiniteFeatureError : public std::domain_error {
 public:
  using std::domain_error::domain_error;
};

/// Abstract scalar performance feature phi = f(pi) over R^n.
class PerformanceFeature {
 public:
  virtual ~PerformanceFeature() = default;

  /// Human-readable name, e.g. "makespan" or "latency(path 2)".
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// Dimension n of the perturbation space this feature is defined on.
  [[nodiscard]] virtual std::size_t dimension() const noexcept = 0;

  /// Feature value at `pi`; throws std::invalid_argument on a dimension
  /// mismatch.
  [[nodiscard]] virtual double evaluate(const la::Vector& pi) const = 0;

  /// Evaluates the feature at every live lane of `block`, writing lane
  /// l's value to `out[l]`. The default gathers each lane and calls
  /// evaluate(); closed-form subclasses override it with contiguous
  /// structure-of-arrays kernels whose per-lane accumulation order
  /// replicates evaluate() exactly, so block results are bit-identical
  /// to point-at-a-time results in every implementation. Throws
  /// std::invalid_argument on a dimension mismatch or when `out` has
  /// fewer than block.lanes() elements.
  virtual void evaluateBlock(const la::PointBlock& block,
                             std::span<double> out) const;

  /// Gradient at `pi`. Exact for the closed-form subclasses; subclasses
  /// without analytic derivatives use forward-mode AD or central
  /// differences (documented per class).
  [[nodiscard]] virtual la::Vector gradient(const la::Vector& pi) const = 0;

  /// Unit of the feature's value (seconds for latency, 1/s for
  /// throughput, ...). Dimensionless by default.
  [[nodiscard]] virtual units::Unit unit() const { return units::Unit{}; }
};

/// The tolerable-variation tuple <beta^min, beta^max> of FePIA step 1.
/// Either side may be infinite (unbounded).
class FeatureBounds {
 public:
  /// Two-sided bounds; throws std::invalid_argument when min > max.
  FeatureBounds(double betaMin, double betaMax);

  /// Only an upper limit (beta^min = -inf) — e.g. "latency <= L_max".
  static FeatureBounds upper(double betaMax);

  /// Only a lower limit (beta^max = +inf) — e.g. "throughput >= R_min".
  static FeatureBounds lower(double betaMin);

  /// The paper's relative form: beta^max = beta * phi^orig for beta > 1
  /// (upper bound only; see Section 3.1, "in many cases we limit the
  /// changes in phi_i to some percentage of its original value").
  static FeatureBounds relativeUpper(double originalValue, double beta);

  [[nodiscard]] double betaMin() const noexcept { return min_; }
  [[nodiscard]] double betaMax() const noexcept { return max_; }
  [[nodiscard]] bool hasMin() const noexcept;
  [[nodiscard]] bool hasMax() const noexcept;

  /// Typed containment verdict of one feature value. ±inf still
  /// compares (an infinite value is decisively outside a finite bound);
  /// only NaN — which has no order — maps to NonFinite.
  enum class Containment { Inside, Outside, NonFinite };

  /// True when `value` lies within the tolerable interval (inclusive).
  /// NaN returns false; callers that must distinguish "violating" from
  /// "not a number" use classify() instead.
  [[nodiscard]] bool contains(double value) const noexcept;

  /// Containment with NaN reported as a typed NonFinite outcome instead
  /// of silently counting as a violation.
  [[nodiscard]] Containment classify(double value) const noexcept;

 private:
  double min_;
  double max_;
};

/// A feature paired with its bounds — one element of Phi.
struct BoundedFeature {
  std::shared_ptr<const PerformanceFeature> feature;
  FeatureBounds bounds;
};

/// The set Phi of FePIA step 1.
class FeatureSet {
 public:
  FeatureSet() = default;

  /// Adds phi_i with its bounds; returns its index. All features must
  /// share one perturbation-space dimension; throws std::invalid_argument
  /// otherwise (or on a null feature).
  std::size_t add(std::shared_ptr<const PerformanceFeature> feature,
                  FeatureBounds bounds);

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] const BoundedFeature& operator[](std::size_t i) const {
    return items_.at(i);
  }

  /// Dimension of the shared perturbation space (0 when empty).
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }

  /// True when every feature value at `pi` lies within its bounds —
  /// i.e. `pi` is inside the robust region. Features are evaluated in
  /// insertion order and the check returns false at the first finite
  /// violation without evaluating later features. Throws
  /// NonFiniteFeatureError when an evaluated feature value is NaN.
  [[nodiscard]] bool allWithinBounds(const la::Vector& pi) const;

  [[nodiscard]] auto begin() const noexcept { return items_.begin(); }
  [[nodiscard]] auto end() const noexcept { return items_.end(); }

 private:
  std::vector<BoundedFeature> items_;
  std::size_t dimension_ = 0;
};

}  // namespace fepia::feature
