#include "feature/quadratic.hpp"

#include <cmath>
#include <stdexcept>

namespace fepia::feature {

QuadraticFeature::QuadraticFeature(std::string name, la::Matrix q, la::Vector k,
                                   double c, units::Unit valueUnit)
    : name_(std::move(name)),
      q_(std::move(q)),
      k_(std::move(k)),
      c_(c),
      unit_(valueUnit) {
  if (k_.empty()) {
    throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                "': empty linear term");
  }
  if (q_.rows() != k_.size() || q_.cols() != k_.size()) {
    throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                "': Q shape does not match k");
  }
  const double scale = la::normFrobenius(q_) + 1.0;
  for (std::size_t i = 0; i < q_.rows(); ++i) {
    for (std::size_t j = i + 1; j < q_.cols(); ++j) {
      if (std::abs(q_(i, j) - q_(j, i)) > 1e-12 * scale) {
        throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                    "': Q must be symmetric");
      }
    }
  }
}

double QuadraticFeature::evaluate(const la::Vector& pi) const {
  if (pi.size() != k_.size()) {
    throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                "': dimension mismatch");
  }
  return 0.5 * la::dot(pi, la::matvec(q_, pi)) + la::dot(k_, pi) + c_;
}

void QuadraticFeature::evaluateBlock(const la::PointBlock& block,
                                     std::span<double> out) const {
  const std::size_t n = k_.size();
  if (block.dimension() != n) {
    throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                "': block dimension mismatch");
  }
  const std::size_t lanes = block.lanes();
  if (out.size() < lanes) {
    throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                "': output span too small");
  }
  // Per lane this replays evaluate() exactly: mv[i] accumulates over j
  // ascending (la::matvec), dot(pi, mv) accumulates over i ascending,
  // dot(k, pi) over j ascending, combined as (0.5*q + lin) + c.
  std::vector<double> quadAcc(lanes, 0.0);
  std::vector<double> rowAcc(lanes);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < lanes; ++l) rowAcc[l] = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double qij = q_(i, j);
      const std::span<const double> xj = block.coordinate(j);
      for (std::size_t l = 0; l < lanes; ++l) rowAcc[l] += qij * xj[l];
    }
    const std::span<const double> xi = block.coordinate(i);
    for (std::size_t l = 0; l < lanes; ++l) quadAcc[l] += xi[l] * rowAcc[l];
  }
  for (std::size_t l = 0; l < lanes; ++l) out[l] = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double kj = k_[j];
    const std::span<const double> xj = block.coordinate(j);
    for (std::size_t l = 0; l < lanes; ++l) out[l] += kj * xj[l];
  }
  for (std::size_t l = 0; l < lanes; ++l) {
    out[l] = 0.5 * quadAcc[l] + out[l] + c_;
  }
}

la::Vector QuadraticFeature::gradient(const la::Vector& pi) const {
  if (pi.size() != k_.size()) {
    throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                "': dimension mismatch");
  }
  return la::matvec(q_, pi) + k_;
}

}  // namespace fepia::feature
