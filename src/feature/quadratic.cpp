#include "feature/quadratic.hpp"

#include <cmath>
#include <stdexcept>

namespace fepia::feature {

QuadraticFeature::QuadraticFeature(std::string name, la::Matrix q, la::Vector k,
                                   double c, units::Unit valueUnit)
    : name_(std::move(name)),
      q_(std::move(q)),
      k_(std::move(k)),
      c_(c),
      unit_(valueUnit) {
  if (k_.empty()) {
    throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                "': empty linear term");
  }
  if (q_.rows() != k_.size() || q_.cols() != k_.size()) {
    throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                "': Q shape does not match k");
  }
  const double scale = la::normFrobenius(q_) + 1.0;
  for (std::size_t i = 0; i < q_.rows(); ++i) {
    for (std::size_t j = i + 1; j < q_.cols(); ++j) {
      if (std::abs(q_(i, j) - q_(j, i)) > 1e-12 * scale) {
        throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                    "': Q must be symmetric");
      }
    }
  }
}

double QuadraticFeature::evaluate(const la::Vector& pi) const {
  if (pi.size() != k_.size()) {
    throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                "': dimension mismatch");
  }
  return 0.5 * la::dot(pi, la::matvec(q_, pi)) + la::dot(k_, pi) + c_;
}

la::Vector QuadraticFeature::gradient(const la::Vector& pi) const {
  if (pi.size() != k_.size()) {
    throw std::invalid_argument("feature::QuadraticFeature '" + name_ +
                                "': dimension mismatch");
  }
  return la::matvec(q_, pi) + k_;
}

}  // namespace fepia::feature
