// Quadratic performance feature phi(pi) = pi^T Q pi / 2 + k · pi + c.
//
// Models curved boundary sets like the one sketched in Figure 1 of the
// paper, and second-order corrections to computation-time models (e.g.
// cache effects making execution time superlinear in load). The radius
// against a quadratic boundary has no general closed form; the library
// solves it numerically, with an exact special case for spherical Q used
// to validate the solver.
#pragma once

#include <string>

#include "feature/feature.hpp"
#include "la/matrix.hpp"

namespace fepia::feature {

/// phi(pi) = 0.5 · pi^T Q pi + k · pi + c with symmetric Q.
class QuadraticFeature final : public PerformanceFeature {
 public:
  /// Throws std::invalid_argument when shapes disagree or Q is not
  /// symmetric (tolerance 1e-12 relative to its Frobenius norm).
  QuadraticFeature(std::string name, la::Matrix q, la::Vector k, double c = 0.0,
                   units::Unit valueUnit = units::Unit{});

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return k_.size();
  }
  [[nodiscard]] double evaluate(const la::Vector& pi) const override;
  /// Contiguous SoA kernel replicating evaluate()'s exact accumulation
  /// order per lane (matvec rows ascending, then the two dots, then
  /// 0.5·q + k·pi + c in that association) — bit-identical to scalar.
  void evaluateBlock(const la::PointBlock& block,
                     std::span<double> out) const override;
  /// Exact gradient Q·pi + k.
  [[nodiscard]] la::Vector gradient(const la::Vector& pi) const override;
  [[nodiscard]] units::Unit unit() const override { return unit_; }

  [[nodiscard]] const la::Matrix& q() const noexcept { return q_; }
  [[nodiscard]] const la::Vector& k() const noexcept { return k_; }
  [[nodiscard]] double c() const noexcept { return c_; }

 private:
  std::string name_;
  la::Matrix q_;
  la::Vector k_;
  double c_;
  units::Unit unit_;
};

}  // namespace fepia::feature
