// Linear performance feature phi(pi) = k · pi + c.
//
// This is the paper's workhorse: both analytical case studies (Sections
// 3.1 and 3.2) assume phi_i is a linear function of the perturbation
// parameters, and the makespan/HiPer-D features of baseline [2] are
// linear in execution times and sensor loads. Its boundary set is a
// hyperplane, so the robustness radius has the closed form of Eq. (4).
#pragma once

#include <string>

#include "feature/feature.hpp"
#include "la/vector.hpp"

namespace fepia::feature {

/// phi(pi) = coefficients · pi + offset.
class LinearFeature final : public PerformanceFeature {
 public:
  /// Throws std::invalid_argument when `coefficients` is empty or all zero
  /// (a constant feature has no boundary and no meaningful radius).
  LinearFeature(std::string name, la::Vector coefficients, double offset = 0.0,
                units::Unit valueUnit = units::Unit{});

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return coefficients_.size();
  }
  [[nodiscard]] double evaluate(const la::Vector& pi) const override;
  /// Contiguous SoA kernel: per lane the accumulation runs over j in
  /// ascending order with the offset added last — the exact order of
  /// evaluate() — so block values are bit-identical to scalar ones.
  void evaluateBlock(const la::PointBlock& block,
                     std::span<double> out) const override;
  /// Exact gradient: the coefficient vector, independent of `pi`.
  [[nodiscard]] la::Vector gradient(const la::Vector& pi) const override;
  [[nodiscard]] units::Unit unit() const override { return unit_; }

  [[nodiscard]] const la::Vector& coefficients() const noexcept {
    return coefficients_;
  }
  [[nodiscard]] double offset() const noexcept { return offset_; }

 private:
  std::string name_;
  la::Vector coefficients_;
  double offset_;
  units::Unit unit_;
};

}  // namespace fepia::feature
