#include "feature/transform.hpp"

#include <stdexcept>
#include <utility>

#include "feature/linear.hpp"
#include "feature/quadratic.hpp"
#include "la/matrix.hpp"

namespace fepia::feature {

namespace {

/// Delegating adaptor for y ↦ phi(A y + b).
class GeneralAffineFeature final : public PerformanceFeature {
 public:
  GeneralAffineFeature(std::shared_ptr<const PerformanceFeature> inner,
                       la::Matrix a, la::Vector b)
      : name_(inner->name() + " (affine map)"),
        inner_(std::move(inner)),
        a_(std::move(a)),
        b_(std::move(b)) {}

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return a_.cols();
  }
  [[nodiscard]] double evaluate(const la::Vector& y) const override {
    return inner_->evaluate(la::matvec(a_, y) + b_);
  }
  [[nodiscard]] la::Vector gradient(const la::Vector& y) const override {
    // ∇(phi ∘ (Ay + b))(y) = A^T ∇phi(Ay + b).
    return la::matTvec(a_, inner_->gradient(la::matvec(a_, y) + b_));
  }
  [[nodiscard]] units::Unit unit() const override { return inner_->unit(); }

 private:
  std::string name_;
  std::shared_ptr<const PerformanceFeature> inner_;
  la::Matrix a_;
  la::Vector b_;
};

/// Delegating adaptor for y ↦ phi(scale ⊙ y) when phi has no special form.
class ScaledInputFeature final : public PerformanceFeature {
 public:
  ScaledInputFeature(std::shared_ptr<const PerformanceFeature> inner,
                     la::Vector scale)
      : name_(inner->name() + " (scaled inputs)"),
        inner_(std::move(inner)),
        scale_(std::move(scale)) {}

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return scale_.size();
  }
  [[nodiscard]] double evaluate(const la::Vector& y) const override {
    return inner_->evaluate(la::cwiseMul(y, scale_));
  }
  [[nodiscard]] la::Vector gradient(const la::Vector& y) const override {
    // d/dy phi(s ⊙ y) = s ⊙ ∇phi(s ⊙ y)
    return la::cwiseMul(inner_->gradient(la::cwiseMul(y, scale_)), scale_);
  }
  [[nodiscard]] units::Unit unit() const override { return inner_->unit(); }

 private:
  std::string name_;
  std::shared_ptr<const PerformanceFeature> inner_;
  la::Vector scale_;
};

/// Delegating adaptor for y ↦ phi(scale ⊙ y + shift).
class AffineInputFeature final : public PerformanceFeature {
 public:
  AffineInputFeature(std::shared_ptr<const PerformanceFeature> inner,
                     la::Vector scale, la::Vector shift)
      : name_(inner->name() + " (affine inputs)"),
        inner_(std::move(inner)),
        scale_(std::move(scale)),
        shift_(std::move(shift)) {}

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return scale_.size();
  }
  [[nodiscard]] double evaluate(const la::Vector& y) const override {
    return inner_->evaluate(la::cwiseMul(y, scale_) + shift_);
  }
  [[nodiscard]] la::Vector gradient(const la::Vector& y) const override {
    return la::cwiseMul(inner_->gradient(la::cwiseMul(y, scale_) + shift_),
                        scale_);
  }
  [[nodiscard]] units::Unit unit() const override { return inner_->unit(); }

 private:
  std::string name_;
  std::shared_ptr<const PerformanceFeature> inner_;
  la::Vector scale_;
  la::Vector shift_;
};

/// Delegating adaptor for the per-block restriction of a generic phi.
class BlockRestrictedFeature final : public PerformanceFeature {
 public:
  BlockRestrictedFeature(std::shared_ptr<const PerformanceFeature> inner,
                         la::Vector base, std::size_t offset,
                         std::size_t blockSize)
      : name_(inner->name() + " (block restriction)"),
        inner_(std::move(inner)),
        base_(std::move(base)),
        offset_(offset),
        size_(blockSize) {}

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t dimension() const noexcept override { return size_; }
  [[nodiscard]] double evaluate(const la::Vector& z) const override {
    return inner_->evaluate(embed(z));
  }
  [[nodiscard]] la::Vector gradient(const la::Vector& z) const override {
    const la::Vector full = inner_->gradient(embed(z));
    la::Vector out(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] = full[offset_ + i];
    return out;
  }
  [[nodiscard]] units::Unit unit() const override { return inner_->unit(); }

 private:
  [[nodiscard]] la::Vector embed(const la::Vector& z) const {
    if (z.size() != size_) {
      throw std::invalid_argument("feature::restrictToBlock: dimension mismatch");
    }
    la::Vector full = base_;
    for (std::size_t i = 0; i < size_; ++i) full[offset_ + i] = z[i];
    return full;
  }

  std::string name_;
  std::shared_ptr<const PerformanceFeature> inner_;
  la::Vector base_;
  std::size_t offset_;
  std::size_t size_;
};

/// Delegating adaptor for y ↦ phi(y) + delta.
class ValueShiftedFeature final : public PerformanceFeature {
 public:
  ValueShiftedFeature(std::shared_ptr<const PerformanceFeature> inner,
                      double delta)
      : name_(inner->name() + " (shifted)"),
        inner_(std::move(inner)),
        delta_(delta) {}

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return inner_->dimension();
  }
  [[nodiscard]] double evaluate(const la::Vector& y) const override {
    return inner_->evaluate(y) + delta_;
  }
  [[nodiscard]] la::Vector gradient(const la::Vector& y) const override {
    return inner_->gradient(y);
  }
  [[nodiscard]] units::Unit unit() const override { return inner_->unit(); }

 private:
  std::string name_;
  std::shared_ptr<const PerformanceFeature> inner_;
  double delta_;
};

void requireNonNull(const std::shared_ptr<const PerformanceFeature>& phi,
                    const char* fn) {
  if (!phi) throw std::invalid_argument(std::string("feature::") + fn + ": null");
}

}  // namespace

std::shared_ptr<const PerformanceFeature> precomposeDiagonal(
    std::shared_ptr<const PerformanceFeature> phi, const la::Vector& scale) {
  requireNonNull(phi, "precomposeDiagonal");
  if (scale.size() != phi->dimension()) {
    throw std::invalid_argument("feature::precomposeDiagonal: dimension mismatch");
  }
  for (double s : scale) {
    if (s == 0.0) {
      throw std::invalid_argument("feature::precomposeDiagonal: zero scale element");
    }
  }

  if (const auto* lin = dynamic_cast<const LinearFeature*>(phi.get())) {
    // (k · (s ⊙ y)) + c = (k ⊙ s) · y + c — stays linear.
    return std::make_shared<LinearFeature>(
        lin->name() + " (scaled inputs)", la::cwiseMul(lin->coefficients(), scale),
        lin->offset(), lin->unit());
  }
  if (const auto* quad = dynamic_cast<const QuadraticFeature*>(phi.get())) {
    // Q'_ij = s_i Q_ij s_j, k' = k ⊙ s — stays quadratic.
    la::Matrix q = quad->q();
    for (std::size_t i = 0; i < q.rows(); ++i) {
      for (std::size_t j = 0; j < q.cols(); ++j) q(i, j) *= scale[i] * scale[j];
    }
    return std::make_shared<QuadraticFeature>(
        quad->name() + " (scaled inputs)", std::move(q),
        la::cwiseMul(quad->k(), scale), quad->c(), quad->unit());
  }
  return std::make_shared<ScaledInputFeature>(std::move(phi), scale);
}

std::shared_ptr<const PerformanceFeature> precomposeAffineDiagonal(
    std::shared_ptr<const PerformanceFeature> phi, const la::Vector& scale,
    const la::Vector& shift) {
  requireNonNull(phi, "precomposeAffineDiagonal");
  if (scale.size() != phi->dimension() || shift.size() != phi->dimension()) {
    throw std::invalid_argument(
        "feature::precomposeAffineDiagonal: dimension mismatch");
  }

  if (const auto* lin = dynamic_cast<const LinearFeature*>(phi.get())) {
    // k · (s ⊙ y + b) + c = (k ⊙ s) · y + (c + k · b).
    la::Vector k = la::cwiseMul(lin->coefficients(), scale);
    const double c = lin->offset() + la::dot(lin->coefficients(), shift);
    if (la::norm2(k) != 0.0) {
      return std::make_shared<LinearFeature>(lin->name() + " (affine inputs)",
                                             std::move(k), c, lin->unit());
    }
    // Fully pinned: constant feature — keep the delegating form so the
    // caller can detect the missing boundary via the numeric engine.
  } else if (const auto* quad =
                 dynamic_cast<const QuadraticFeature*>(phi.get())) {
    // With x = s ⊙ y + b:  0.5 x^T Q x + k·x + c becomes
    // 0.5 y^T (S Q S) y + (S (Q b + k)) · y + (0.5 b^T Q b + k·b + c),
    // which keeps the closed-form quadric radius engine applicable.
    la::Matrix q = quad->q();
    for (std::size_t i = 0; i < q.rows(); ++i) {
      for (std::size_t j = 0; j < q.cols(); ++j) q(i, j) *= scale[i] * scale[j];
    }
    la::Vector k =
        la::cwiseMul(la::matvec(quad->q(), shift) + quad->k(), scale);
    const double c = 0.5 * la::dot(shift, la::matvec(quad->q(), shift)) +
                     la::dot(quad->k(), shift) + quad->c();
    return std::make_shared<QuadraticFeature>(quad->name() + " (affine inputs)",
                                              std::move(q), std::move(k), c,
                                              quad->unit());
  }
  return std::make_shared<AffineInputFeature>(std::move(phi), scale, shift);
}

std::shared_ptr<const PerformanceFeature> precomposeAffine(
    std::shared_ptr<const PerformanceFeature> phi, const la::Matrix& a,
    const la::Vector& b) {
  requireNonNull(phi, "precomposeAffine");
  if (a.rows() != phi->dimension() || b.size() != phi->dimension()) {
    throw std::invalid_argument("feature::precomposeAffine: shape mismatch");
  }
  if (a.cols() == 0) {
    throw std::invalid_argument("feature::precomposeAffine: zero-column map");
  }

  if (const auto* lin = dynamic_cast<const LinearFeature*>(phi.get())) {
    // k · (A y + b) + c = (A^T k) · y + (c + k · b).
    la::Vector k = la::matTvec(a, lin->coefficients());
    const double c = lin->offset() + la::dot(lin->coefficients(), b);
    if (la::norm2(k) != 0.0) {
      return std::make_shared<LinearFeature>(lin->name() + " (affine map)",
                                             std::move(k), c, lin->unit());
    }
    // Degenerate (A's columns orthogonal to k): keep the adaptor so the
    // numeric engine can detect the missing boundary.
  } else if (const auto* quad =
                 dynamic_cast<const QuadraticFeature*>(phi.get())) {
    // 0.5 (Ay+b)^T Q (Ay+b) + k·(Ay+b) + c
    //   = 0.5 y^T (A^T Q A) y + (A^T (Q b + k)) · y + (0.5 b^T Q b + k·b + c).
    const la::Matrix qa = la::matmul(quad->q(), a);
    la::Matrix qPrime = la::matmul(la::transpose(a), qa);
    // Symmetrise against round-off.
    for (std::size_t i = 0; i < qPrime.rows(); ++i) {
      for (std::size_t j = i + 1; j < qPrime.cols(); ++j) {
        const double avg = 0.5 * (qPrime(i, j) + qPrime(j, i));
        qPrime(i, j) = qPrime(j, i) = avg;
      }
    }
    la::Vector kPrime =
        la::matTvec(a, la::matvec(quad->q(), b) + quad->k());
    const double cPrime = 0.5 * la::dot(b, la::matvec(quad->q(), b)) +
                          la::dot(quad->k(), b) + quad->c();
    return std::make_shared<QuadraticFeature>(quad->name() + " (affine map)",
                                              std::move(qPrime),
                                              std::move(kPrime), cPrime,
                                              quad->unit());
  }
  return std::make_shared<GeneralAffineFeature>(std::move(phi), a, b);
}

std::shared_ptr<const PerformanceFeature> restrictToBlock(
    std::shared_ptr<const PerformanceFeature> phi, const la::Vector& base,
    std::size_t offset, std::size_t blockSize) {
  requireNonNull(phi, "restrictToBlock");
  if (base.size() != phi->dimension()) {
    throw std::invalid_argument("feature::restrictToBlock: base dimension");
  }
  if (blockSize == 0 || offset + blockSize > base.size()) {
    throw std::invalid_argument("feature::restrictToBlock: block out of range");
  }

  if (const auto* lin = dynamic_cast<const LinearFeature*>(phi.get())) {
    // phi(base + block z) = k_block · z + (c + sum over others of k_m base_m).
    la::Vector kBlock(blockSize);
    double rest = lin->offset();
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (i >= offset && i < offset + blockSize) {
        kBlock[i - offset] = lin->coefficients()[i];
      } else {
        rest += lin->coefficients()[i] * base[i];
      }
    }
    if (la::norm2(kBlock) == 0.0) {
      // This kind cannot move the feature at all; fall back to the
      // delegating adaptor so callers can detect the unbounded radius.
      return std::make_shared<BlockRestrictedFeature>(std::move(phi), base,
                                                      offset, blockSize);
    }
    return std::make_shared<LinearFeature>(lin->name() + " (block restriction)",
                                           std::move(kBlock), rest, lin->unit());
  }
  return std::make_shared<BlockRestrictedFeature>(std::move(phi), base, offset,
                                                  blockSize);
}

std::shared_ptr<const PerformanceFeature> shiftValue(
    std::shared_ptr<const PerformanceFeature> phi, double delta) {
  requireNonNull(phi, "shiftValue");
  if (const auto* lin = dynamic_cast<const LinearFeature*>(phi.get())) {
    return std::make_shared<LinearFeature>(lin->name() + " (shifted)",
                                           lin->coefficients(),
                                           lin->offset() + delta, lin->unit());
  }
  return std::make_shared<ValueShiftedFeature>(std::move(phi), delta);
}

}  // namespace fepia::feature
