// Surface rendering: tables, CSV, JSON, and summary statistics.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/manifest.hpp"
#include "report/table.hpp"
#include "sweep/engine.hpp"
#include "sweep/spec.hpp"

namespace fepia::sweep {

/// One table row per computed point: id, one column per axis, then
/// analytic rho / closed form / empirical / degraded / makespan /
/// classifications. NaN ("not computed") renders as an empty cell;
/// infinities as "inf"/"-inf".
[[nodiscard]] report::Table surfaceTable(const SweepSpec& spec,
                                         const SweepSurface& surface);

/// Response of the analytic rho along one axis: for each value of the
/// axis, mean/min/max over the finite rho of computed points with that
/// value. This is how the S3.2 spec shows a monotone beta response and
/// the S3.1 spec shows a flat one.
[[nodiscard]] report::Table axisResponseTable(const SweepSpec& spec,
                                              const SweepSurface& surface,
                                              const std::string& axis);

/// Writes the schema-checked JSON document
/// (tools/schemas/sweep_output.schema.json). When `manifest` is non-null
/// it is emitted as the "manifest" member on a single line of its own,
/// so byte-level comparisons of two runs can drop exactly that line (the
/// only legitimately run-dependent content).
void writeSurfaceJson(std::ostream& os, const SweepSpec& spec,
                      const SweepSurface& surface,
                      const obs::RunManifest* manifest = nullptr);

/// CSV form of surfaceTable (one header row, RFC-4180 quoting).
void writeSurfaceCsv(std::ostream& os, const SweepSpec& spec,
                     const SweepSurface& surface);

/// min/max of the finite analytic rho over computed points, and (linear
/// workload) the largest |analytic - closed form| — the acceptance
/// numbers the CLI prints after a sweep.
struct SurfaceSummary {
  double rhoMin = 0.0;
  double rhoMax = 0.0;
  double worstClosedFormDeviation = 0.0;
  std::size_t finitePoints = 0;
};
[[nodiscard]] SurfaceSummary summarize(const SweepSurface& surface);

}  // namespace fepia::sweep
