// Sharded, cached, resumable sweep execution.
//
// runSweep evaluates a SweepSpec's grid through the existing stack —
// radius::FepiaProblem / radius closed forms for the linear family,
// alloc::EvalEngine for the makespan case study, validate + fault/des
// for the empirical and degraded radii — with the repo's determinism
// recipe applied one level up: points are sharded into fixed chunks
// (shard s covers ids [s*chunk, (s+1)*chunk)), shards fan out across
// parallel::ThreadPool with every result written to a preallocated slot,
// and all reductions run in index order after the parallel phase. The
// thread count changes the wall clock, never a bit of the surface.
//
// The inner estimators are always called serially (pool = nullptr):
// parallel::parallelFor is not reentrant from a worker thread, and
// shard-level parallelism already saturates the pool.
//
// Sub-computations shared between points (generated instances, heuristic
// allocations, eval engines, empirical estimates at coinciding
// coordinates) are deduplicated through a content-keyed ResultCache;
// seeds derive from the same content keys, so cached and recomputed
// values are bit-identical and the cache is invisible in the results.
//
// With a journal path set, every completed shard is appended and flushed
// (sweep::JournalWriter); `resume` replays done shards and only computes
// the rest. `stopAfterShards` bounds how many shards one call computes —
// the CLI's --stop-after, which the tests and CI use to interrupt a
// sweep at a well-defined point and prove resume byte-identity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "sweep/cache.hpp"
#include "sweep/result.hpp"
#include "sweep/spec.hpp"

namespace fepia::sweep {

class PersistentCache;

/// Execution knobs orthogonal to the spec.
struct SweepOptions {
  /// Deduplicate shared sub-computations (off only to prove the cache
  /// does not change results).
  bool cacheEnabled = true;
  /// Checkpoint journal path; empty disables checkpointing.
  std::string journalPath;
  /// Replay `journalPath` and skip its committed shards. Requires a
  /// journal path (std::invalid_argument otherwise); throws
  /// std::runtime_error when the journal is missing or mismatched.
  bool resume = false;
  /// Stop after computing this many shards (0 = no limit); the surface
  /// comes back with complete == false. Requires a journal, otherwise
  /// the partial work would be unrecoverable (std::invalid_argument).
  std::size_t stopAfterShards = 0;
  /// Overrides the spec's shard size when nonzero.
  std::size_t chunkOverride = 0;
  /// Forces one radius backend (by registry name) for the per-point
  /// analytic-rho computations — the CLI's --backend flag. Empty lets
  /// the cost-model scheduler choose (the analytic kernel, for every
  /// built-in workload). The empirical/degraded columns always route to
  /// their namesake kernels: they *are* the requested estimate, not an
  /// implementation choice. Unknown or incapable names surface as
  /// radius::backend::BackendError from runSweep.
  std::string backendOverride;
  /// Optional metrics sink (sweep.* counters, written after the joins).
  obs::Registry* metrics = nullptr;
  /// Optional telemetry hub. When set, the run registers a live-gauge
  /// source (sweep.live_* progress gauges sampled by the hub's thread),
  /// emits one heartbeat event per completed shard (points/sec, ETA),
  /// warns on straggler shards, and feeds a stall watchdog from every
  /// committed point. All of it is observational: gauges are relaxed
  /// atomic reads and events are emitted under the journal lock the
  /// engine already takes per shard, so the surface stays byte-identical
  /// with the hub attached or not (tests/telemetry_test.cpp).
  obs::TelemetryHub* telemetry = nullptr;
  /// Live status line on stderr (the CLI's --progress): rewritten after
  /// every completed shard, erased by a newline when the sweep ends.
  bool progress = false;
  /// A completed shard slower than this multiple of the median completed
  /// shard wall time triggers a straggler warning event (needs telemetry
  /// and at least 4 completed shards; <= 0 disables).
  double stragglerFactor = 4.0;
  /// Stall-watchdog deadline: no point committed for this long raises a
  /// {"type":"alert","kind":"stall"} event (needs telemetry; <= 0
  /// disables the watchdog).
  double stallDeadlineSeconds = 30.0;
  /// External result cache shared *across* runSweep calls — the warm
  /// cache a resident fepiad server keeps between requests. Because
  /// every entry is content-keyed and sub-computation seeds derive from
  /// the same keys, a shared cache changes throughput only, never a
  /// byte of any surface. The surface's hit/miss counters report this
  /// call's delta. Ignored when cacheEnabled is false (a --no-cache run
  /// must actually compute). nullptr = a fresh per-run cache.
  ResultCache* sharedCache = nullptr;
  /// Directory of the persistent on-disk estimate cache (sweep::
  /// PersistentCache) — the CLI's --cache-dir. Empty disables it.
  /// Entries are content-keyed and stored in exact hexfloat form, so a
  /// warm cache changes throughput only, never a surface byte. Ignored
  /// when cacheEnabled is false. Throws std::runtime_error from
  /// runSweep when the directory cannot be created or read.
  std::string cacheDir;
};

/// A computed (possibly partial) sweep surface.
struct SweepSurface {
  std::vector<PointResult> results;  ///< one slot per grid point
  /// Per point: nonzero when the slot holds a result. One byte per flag,
  /// not std::vector<bool>: shard workers set flags concurrently, and the
  /// packed representation would make neighbouring points share words.
  std::vector<std::uint8_t> computed;
  bool complete = false;
  std::size_t points = 0;
  std::size_t chunk = 0;             ///< shard size actually used
  std::size_t shards = 0;
  std::size_t resumedShards = 0;     ///< replayed from the journal
  std::size_t computedShards = 0;    ///< evaluated by this call
  bool cacheEnabled = true;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t persistentHits = 0;    ///< on-disk cache hits (--cache-dir)
  std::uint64_t persistentMisses = 0;  ///< on-disk cache misses
  std::uint64_t classifications = 0; ///< summed over computed points
  double wallSeconds = 0.0;
  double pointsPerSec = 0.0;         ///< computed points / wall
};

/// Evaluates `spec` under `opts`. Deterministic: for a fixed spec the
/// surface is bit-identical at any thread count, with or without the
/// cache, and whether computed cold or across checkpoint/resume cycles.
/// Throws std::invalid_argument on inconsistent options and propagates
/// spec/system/journal errors.
[[nodiscard]] SweepSurface runSweep(const SweepSpec& spec,
                                    const SweepOptions& opts = {},
                                    parallel::ThreadPool* pool = nullptr);

/// Evaluates points [first, first + count) of `spec` into out[0..count)
/// with the exact per-point computation runSweep uses (same evaluator,
/// same content-keyed sub-computation seeds), so a result computed here
/// is bit-identical to the same point computed by runSweep at any
/// thread count. This is the distributed worker's compute entry point:
/// a leased shard is one such range. `persistent` (optional) is the
/// shared on-disk estimate cache.
void evaluatePointRange(const SweepSpec& spec, ResultCache& cache,
                        PersistentCache* persistent,
                        const std::string& backendOverride, std::size_t first,
                        std::size_t count, PointResult* out);

}  // namespace fepia::sweep
