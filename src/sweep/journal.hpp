// Checkpoint journal: crash-safe shard-granular sweep persistence.
//
// A sweep appends each completed shard to a line-oriented journal and
// flushes; `--resume` replays the journal and recomputes only the shards
// without a commit marker. Format:
//
//   fepia-sweep-journal v1
//   spec <hex16-hash> points <P> chunk <C>
//   point <id> <analytic> <closed> <empirical> <degraded> <makespan> <cls>
//   ...
//   shard <s> done
//
// Doubles are written with std::hexfloat (plus nan/inf/-inf tokens) so a
// resumed value is bit-identical to the computed one — the resume
// byte-identity guarantee rests on this exact round-trip. A shard's
// point lines count only once its `shard <s> done` marker is present;
// a torn tail (crash mid-write) is therefore ignored: readJournal skips
// malformed lines (safe because appends are ordered — a durable commit
// marker implies its point lines are durable too, so debris always
// belongs to an uncommitted shard that gets re-staged on resume), and
// JournalWriter quarantines a newline-less tail behind a fresh newline
// before appending. The spec hash in the header refuses resuming a
// journal against a different sweep, and the recorded chunk refuses a
// mismatched shard layout.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sweep/result.hpp"

namespace fepia::sweep {

/// Exact-round-trip textual form of a double (hexfloat / nan / inf / -inf).
[[nodiscard]] std::string formatJournalDouble(double v);

/// Inverse of formatJournalDouble; false on a malformed token.
[[nodiscard]] bool parseJournalDouble(const std::string& token, double& out);

/// What a journal replay recovered.
struct JournalContents {
  std::vector<bool> shardDone;        ///< per shard: commit marker seen
  std::vector<PointResult> results;   ///< slots of undone shards are default
  std::size_t doneShards = 0;
};

/// Replays `path`. Throws std::runtime_error when the file cannot be
/// opened, the header does not parse, or the header disagrees with
/// (specHash, points, chunk). Torn or malformed record lines are
/// skipped, not errors; shards committed after them still count.
[[nodiscard]] JournalContents readJournal(const std::string& path,
                                          std::uint64_t specHash,
                                          std::size_t points,
                                          std::size_t chunk,
                                          std::size_t shards);

/// Appends committed shards to a journal file, writing the header on
/// creation. Not thread-safe; the sweep engine serializes appendShard
/// calls under its own mutex.
class JournalWriter {
 public:
  /// Opens `path` (truncating, or appending when `append`); writes the
  /// header unless appending to an existing journal, and when appending
  /// starts with a newline if the existing file lacks a trailing one
  /// (quarantining a crash-torn tail). Throws std::runtime_error when
  /// the file cannot be opened.
  void open(const std::string& path, bool append, std::uint64_t specHash,
            std::size_t points, std::size_t chunk);

  /// Writes one completed shard (point lines + commit marker) and
  /// flushes, so a kill after return never loses the shard.
  void appendShard(std::size_t shard, std::size_t firstId,
                   const PointResult* results, std::size_t count);

  [[nodiscard]] bool active() const noexcept { return out_.is_open(); }

 private:
  std::ofstream out_;
};

}  // namespace fepia::sweep
