#include "sweep/lease.hpp"

#include <algorithm>
#include <utility>

namespace fepia::sweep {

LeaseTable::LeaseTable(std::vector<std::size_t> shards, double leaseSeconds,
                       double stealAfterSeconds)
    : shardIds_(std::move(shards)),
      shards_(shardIds_.size()),
      leaseSeconds_(leaseSeconds > 0.0 ? leaseSeconds : 10.0),
      stealAfterSeconds_(stealAfterSeconds > 0.0 ? stealAfterSeconds
                                                 : leaseSeconds_ / 2.0) {
  for (std::size_t slot = 0; slot < shards_.size(); ++slot) {
    pending_.push_back(slot);
  }
}

void LeaseTable::expire(double now) {
  for (std::size_t slot = 0; slot < shards_.size(); ++slot) {
    Shard& sh = shards_[slot];
    if (sh.state != State::Active) continue;
    sh.leases.erase(std::remove_if(sh.leases.begin(), sh.leases.end(),
                                   [now](const Lease& l) {
                                     return l.deadline < now;
                                   }),
                    sh.leases.end());
    if (sh.leases.empty()) {
      sh.state = State::Pending;
      pending_.push_back(slot);
      ++reissues_;
    }
  }
}

LeaseTable::Grant LeaseTable::grantOn(std::size_t slot,
                                      const std::string& worker, double now,
                                      bool stolen) {
  Shard& sh = shards_[slot];
  sh.state = State::Active;
  sh.leases.push_back(Lease{worker, now, now + leaseSeconds_});
  Grant g;
  g.shard = shardIds_[slot];
  g.generation = sh.generation++;
  g.stolen = stolen;
  return g;
}

std::optional<LeaseTable::Grant> LeaseTable::acquire(const std::string& worker,
                                                     double now) {
  expire(now);
  if (!pending_.empty()) {
    const std::size_t slot = pending_.front();
    pending_.pop_front();
    return grantOn(slot, worker, now, /*stolen=*/false);
  }
  // Work stealing: the in-flight shard whose oldest lease is oldest (the
  // likeliest straggler), provided it is old enough, has a free lease
  // slot, and is not already held by this worker.
  std::size_t best = shards_.size();
  double bestIssued = 0.0;
  for (std::size_t slot = 0; slot < shards_.size(); ++slot) {
    const Shard& sh = shards_[slot];
    if (sh.state != State::Active || sh.leases.size() >= 2) continue;
    const Lease& l = sh.leases.front();
    if (now - l.issuedAt < stealAfterSeconds_) continue;
    if (l.worker == worker) continue;
    if (best == shards_.size() || l.issuedAt < bestIssued) {
      best = slot;
      bestIssued = l.issuedAt;
    }
  }
  if (best == shards_.size()) return std::nullopt;
  ++steals_;
  return grantOn(best, worker, now, /*stolen=*/true);
}

bool LeaseTable::commit(std::size_t shard) {
  for (std::size_t slot = 0; slot < shards_.size(); ++slot) {
    if (shardIds_[slot] != shard) continue;
    Shard& sh = shards_[slot];
    if (sh.state == State::Committed) {
      ++duplicates_;
      return false;
    }
    if (sh.state == State::Pending) {
      // An expired lease's commit arrived before the shard was
      // reissued: accept it and pull the shard off the queue.
      pending_.erase(std::remove(pending_.begin(), pending_.end(), slot),
                     pending_.end());
    }
    sh.state = State::Committed;
    sh.leases.clear();
    ++committed_;
    return true;
  }
  ++duplicates_;  // unknown shard (e.g. replayed from an old journal)
  return false;
}

void LeaseTable::heartbeat(std::size_t shard, const std::string& worker,
                           double now) {
  for (std::size_t slot = 0; slot < shards_.size(); ++slot) {
    if (shardIds_[slot] != shard) continue;
    for (Lease& l : shards_[slot].leases) {
      if (l.worker == worker) l.deadline = now + leaseSeconds_;
    }
    return;
  }
}

std::vector<std::size_t> LeaseTable::releaseWorker(const std::string& worker) {
  std::vector<std::size_t> reissued;
  for (std::size_t slot = 0; slot < shards_.size(); ++slot) {
    Shard& sh = shards_[slot];
    if (sh.state != State::Active) continue;
    sh.leases.erase(std::remove_if(sh.leases.begin(), sh.leases.end(),
                                   [&worker](const Lease& l) {
                                     return l.worker == worker;
                                   }),
                    sh.leases.end());
    if (sh.leases.empty()) {
      sh.state = State::Pending;
      pending_.push_back(slot);
      ++reissues_;
      reissued.push_back(shardIds_[slot]);
    }
  }
  return reissued;
}

bool LeaseTable::allCommitted() const noexcept {
  return committed_ == shards_.size();
}

std::size_t LeaseTable::activeLeases() const noexcept {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.leases.size();
  return n;
}

}  // namespace fepia::sweep
