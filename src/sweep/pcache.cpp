#include "sweep/pcache.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <random>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sweep/journal.hpp"

namespace fepia::sweep {

namespace fs = std::filesystem;

namespace {
constexpr const char* kHeader = "fepia-sweep-pcache v1";
}  // namespace

PersistentCache::PersistentCache(const std::string& dir) : dir_(dir) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("pcache: cannot create directory '" + dir_ +
                             "': " + ec.message());
  }
  // Load segments in sorted-name order so loadedEntries() is stable for
  // a fixed directory; first-inserted wins on duplicate keys (values are
  // content-keyed, so any winner is bit-identical).
  std::vector<std::string> segments;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".seg") continue;
    segments.push_back(entry.path().string());
  }
  if (ec) {
    throw std::runtime_error("pcache: cannot read directory '" + dir_ +
                             "': " + ec.message());
  }
  std::sort(segments.begin(), segments.end());
  for (const std::string& path : segments) loadSegment(path);
}

void PersistentCache::loadSegment(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ++quarantined_;
    return;
  }
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    // Not one of ours (or torn before the header): skip the whole file.
    ++quarantined_;
    return;
  }
  while (std::getline(in, line)) {
    // `entry <radius> <cls> <key...>` — the key is the line's tail and
    // may contain spaces (e.g. a system path inside a hiperd key).
    std::istringstream ls(line);
    std::string tag, radiusTok, clsTok;
    if (!(ls >> tag >> radiusTok >> clsTok) || tag != "entry") {
      ++quarantined_;
      continue;
    }
    double radius = 0.0;
    if (!parseJournalDouble(radiusTok, radius)) {
      ++quarantined_;
      continue;
    }
    std::uint64_t cls = 0;
    try {
      std::size_t pos = 0;
      cls = std::stoull(clsTok, &pos);
      if (pos != clsTok.size()) throw std::invalid_argument(clsTok);
    } catch (const std::exception&) {
      ++quarantined_;
      continue;
    }
    std::string key;
    std::getline(ls >> std::ws, key);
    if (key.empty()) {
      ++quarantined_;
      continue;
    }
    if (map_.emplace(key, Value{radius, cls}).second) ++loaded_;
  }
}

std::optional<PersistentCache::Value> PersistentCache::lookup(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

bool PersistentCache::openOwnSegment() {
  if (out_.is_open()) return true;
  if (writerFailed_) return false;
  // One segment per writing process: pid plus random suffix, so
  // concurrent workers sharing the directory never interleave appends
  // in one file and a crashed writer's torn tail stays quarantined in
  // its own segment.
  std::random_device rd;
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::ostringstream name;
    name << dir_ << "/seg-" << ::getpid() << '-' << std::hex << rd() << rd()
         << ".seg";
    if (fs::exists(name.str())) continue;
    out_.open(name.str(), std::ios::out | std::ios::app);
    if (out_) {
      out_ << kHeader << '\n';
      out_.flush();
      return true;
    }
    out_.clear();
  }
  writerFailed_ = true;
  return false;
}

void PersistentCache::store(const std::string& key, const Value& value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!map_.emplace(key, value).second) return;  // first value wins
  if (!openOwnSegment()) return;
  out_ << "entry " << formatJournalDouble(value.radius) << ' '
       << value.classifications << ' ' << key << '\n';
  out_.flush();
  if (!out_) writerFailed_ = true;
}

std::uint64_t PersistentCache::hits() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t PersistentCache::misses() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace fepia::sweep
