// Keyed result cache for shared sweep sub-computations.
//
// Many grid points share expensive sub-results: every beta value of an
// S3.1/S3.2 sweep reuses the same generated (k, pi^orig) instance, every
// taufactor reuses the same ETC matrix and heuristic allocations, and
// every jitter level of a hiperd sweep reuses the analytic reference
// problem. Because sub-computation seeds are derived from *content* keys
// (sweep::deriveSeed), a cached value is bit-identical to a recomputed
// one — so caching changes throughput, never results, and cache-on vs
// cache-off surfaces compare equal (sweep_determinism_test).
//
// Concurrency: one entry per key with its own mutex. The map mutex is
// held only to find-or-create the entry, so distinct keys compute in
// parallel while racing shards block on the same key until the first
// computes it once. Nested get() calls (an engine entry computing inside
// an instance entry) are fine because the dependency graph between key
// kinds is acyclic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace fepia::sweep {

/// Type-erased keyed cache of shared_ptr<const T> values.
class ResultCache {
 public:
  explicit ResultCache(bool enabled = true) : enabled_(enabled) {}

  /// Returns the cached value for `key`, computing it via `compute` (a
  /// callable returning std::shared_ptr<const T>) on first use. With the
  /// cache disabled, always computes.
  template <typename T, typename Fn>
  std::shared_ptr<const T> get(const std::string& key, Fn&& compute) {
    if (!enabled_) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::forward<Fn>(compute)();
    }
    std::shared_ptr<Entry> entry;
    bool creator = false;
    {
      const std::lock_guard<std::mutex> lock(mapMutex_);
      std::shared_ptr<Entry>& slot = entries_[key];
      if (!slot) {
        slot = std::make_shared<Entry>();
        creator = true;
      }
      entry = slot;
    }
    const std::lock_guard<std::mutex> lock(entry->mutex);
    if (!entry->ready) {
      // Not necessarily the creator: if the creator's compute threw, a
      // later caller retries here.
      misses_.fetch_add(1, std::memory_order_relaxed);
      entry->value = std::forward<Fn>(compute)();
      entry->ready = true;
      (void)creator;
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return std::static_pointer_cast<const T>(entry->value);
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::mutex mutex;
    std::shared_ptr<const void> value;
    bool ready = false;
  };

  bool enabled_;
  std::mutex mapMutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace fepia::sweep
