// Shard lease table for the distributed sweep coordinator.
//
// The coordinator hands out *leases* on shards: a worker that leases
// shard s promises to compute points [s*chunk, (s+1)*chunk) and commit
// them back. Leases expire (a worker that died mid-shard loses its
// claim and the shard is reissued), are released en masse when a
// worker's connection drops, and — once no pending shard is left — are
// *stolen*: a second lease on the slowest in-flight shard, so a
// straggling worker can never hold the whole sweep hostage. The first
// commit of a shard wins; later commits of the same shard are counted
// and discarded. Because every computation is content-seeded and the
// reduction is index-ordered, duplicated work changes wall clock only,
// never a byte of the surface.
//
// The table is deliberately pure: time enters exclusively through the
// `now` parameters (monotonic seconds, any origin), so the expiry and
// stealing policies are unit-testable without sleeping. It performs no
// locking of its own — the coordinator serializes access under its
// state mutex, which it already holds to write result slots and the
// journal.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace fepia::sweep {

class LeaseTable {
 public:
  /// `shards`: the shard indices to hand out, granted in the given
  /// order. `leaseSeconds`: a lease not renewed for this long is
  /// expired and the shard reissued. `stealAfterSeconds`: once no
  /// pending shard remains, an in-flight shard whose oldest lease is at
  /// least this old gets a second, concurrent lease (<= 0 picks
  /// leaseSeconds / 2). At most two live leases per shard.
  explicit LeaseTable(std::vector<std::size_t> shards,
                      double leaseSeconds = 10.0,
                      double stealAfterSeconds = 0.0);

  /// One granted lease.
  struct Grant {
    std::size_t shard = 0;
    /// How many leases this shard had been granted before this one —
    /// 0 on first issue; > 0 marks a reissue or a steal.
    std::uint64_t generation = 0;
    /// True when this grant is a second, concurrent lease on a shard
    /// another worker is still computing (work stealing).
    bool stolen = false;
  };

  /// Expires overdue leases, then grants: the first pending shard if
  /// any, else a steal of the longest-in-flight shard (subject to
  /// stealAfterSeconds, the two-lease cap, and never a shard `worker`
  /// already holds). nullopt when there is nothing to hand out — all
  /// remaining shards are committed or already saturated with leases.
  [[nodiscard]] std::optional<Grant> acquire(const std::string& worker,
                                             double now);

  /// Records shard `shard` as committed and drops its live leases.
  /// Returns true on the first commit; false (and counts a duplicate)
  /// when the shard was already committed. A commit is accepted no
  /// matter which lease — even an expired one — produced it: the work
  /// is deterministic, so any completed copy is the right answer.
  bool commit(std::size_t shard);

  /// Renews `worker`'s lease on `shard` (no-op if it holds none).
  void heartbeat(std::size_t shard, const std::string& worker, double now);

  /// Drops every lease `worker` holds (its connection died); shards
  /// left without any live lease return to the pending queue. Returns
  /// the shard indices that went back to pending (for the
  /// coordinator's reissue warnings).
  std::vector<std::size_t> releaseWorker(const std::string& worker);

  [[nodiscard]] bool allCommitted() const noexcept;
  [[nodiscard]] std::size_t committedCount() const noexcept {
    return committed_;
  }
  [[nodiscard]] std::size_t pendingCount() const noexcept {
    return pending_.size();
  }
  /// Live leases across all shards (a stolen shard counts twice).
  [[nodiscard]] std::size_t activeLeases() const noexcept;

  /// Shards that returned to the pending queue after losing every lease
  /// (expiry or worker loss).
  [[nodiscard]] std::uint64_t reissues() const noexcept { return reissues_; }
  /// Second leases granted on in-flight shards.
  [[nodiscard]] std::uint64_t steals() const noexcept { return steals_; }
  /// Commits of already-committed shards (discarded).
  [[nodiscard]] std::uint64_t duplicateCommits() const noexcept {
    return duplicates_;
  }

 private:
  struct Lease {
    std::string worker;
    double issuedAt = 0.0;
    double deadline = 0.0;
  };
  enum class State { Pending, Active, Committed };
  struct Shard {
    State state = State::Pending;
    std::vector<Lease> leases;      ///< live leases (<= 2)
    std::uint64_t generation = 0;   ///< leases ever granted
  };

  void expire(double now);
  [[nodiscard]] Grant grantOn(std::size_t shard, const std::string& worker,
                              double now, bool stolen);

  std::vector<std::size_t> shardIds_;  ///< dense slot -> shard index
  std::vector<Shard> shards_;          ///< parallel to shardIds_
  std::deque<std::size_t> pending_;    ///< dense slots awaiting a lease
  double leaseSeconds_;
  double stealAfterSeconds_;
  std::size_t committed_ = 0;
  std::uint64_t reissues_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace fepia::sweep
