#include "sweep/output.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace fepia::sweep {
namespace {

/// Table/CSV cell for a result double: empty for "not computed",
/// explicit tokens for infinities (CSV consumers cannot parse "1/0").
std::string cell(double v) {
  if (std::isnan(v)) return "";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  return report::num(v, 9);
}

report::Table buildTable(const SweepSpec& spec, const SweepSurface& surface) {
  std::vector<std::string> headers{"id"};
  for (const Axis& a : spec.axes) headers.push_back(a.name);
  for (const char* h : {"analytic rho", "closed form", "empirical",
                        "degraded", "makespan", "cls"}) {
    headers.emplace_back(h);
  }
  report::Table table(std::move(headers));
  for (std::size_t id = 0; id < surface.points; ++id) {
    if (!surface.computed[id]) continue;
    const std::vector<std::size_t> idx = spec.decode(id);
    const PointResult& r = surface.results[id];
    std::vector<std::string> row{std::to_string(id)};
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      row.push_back(spec.axes[a].values[idx[a]].token);
    }
    row.push_back(cell(r.analyticRho));
    row.push_back(cell(r.closedForm));
    row.push_back(cell(r.empirical));
    row.push_back(cell(r.degraded));
    row.push_back(cell(r.makespan));
    row.push_back(std::to_string(r.classifications));
    table.addRow(std::move(row));
  }
  return table;
}

}  // namespace

report::Table surfaceTable(const SweepSpec& spec,
                           const SweepSurface& surface) {
  return buildTable(spec, surface);
}

report::Table axisResponseTable(const SweepSpec& spec,
                                const SweepSurface& surface,
                                const std::string& axis) {
  std::size_t axisIndex = spec.axes.size();
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    if (spec.axes[a].name == axis) axisIndex = a;
  }
  if (axisIndex == spec.axes.size()) {
    throw std::out_of_range("sweep: unknown axis '" + axis + "'");
  }
  const Axis& ax = spec.axes[axisIndex];
  report::Table table({"axis", "value", "points", "rho mean", "rho min",
                       "rho max"});
  for (std::size_t v = 0; v < ax.values.size(); ++v) {
    double sum = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    std::size_t count = 0;
    for (std::size_t id = 0; id < surface.points; ++id) {
      if (!surface.computed[id]) continue;
      if (spec.decode(id)[axisIndex] != v) continue;
      const double rho = surface.results[id].analyticRho;
      if (!std::isfinite(rho)) continue;
      sum += rho;
      lo = std::min(lo, rho);
      hi = std::max(hi, rho);
      ++count;
    }
    table.addRow({axis, ax.values[v].token, std::to_string(count),
                  count > 0 ? report::num(sum / static_cast<double>(count), 9)
                            : "",
                  count > 0 ? report::num(lo, 9) : "",
                  count > 0 ? report::num(hi, 9) : ""});
  }
  return table;
}

void writeSurfaceJson(std::ostream& os, const SweepSpec& spec,
                      const SweepSurface& surface,
                      const obs::RunManifest* manifest) {
  os << "{\n  \"sweep\": ";
  obs::writeJsonString(os, spec.name);
  if (manifest != nullptr) {
    // One line, so run-to-run byte comparisons can filter exactly it.
    os << ",\n  \"manifest\": ";
    manifest->writeJson(os);
  }
  os << ",\n  \"workload\": ";
  obs::writeJsonString(os, workloadName(spec.workload));
  os << ",\n  \"seed\": " << spec.seed << ",\n  \"points\": " << surface.points
     << ",\n  \"chunk\": " << surface.chunk
     << ",\n  \"shards\": " << surface.shards << ",\n  \"complete\": "
     << (surface.complete ? "true" : "false")
     << ",\n  \"resumed_shards\": " << surface.resumedShards
     << ",\n  \"cache\": {\"enabled\": "
     << (surface.cacheEnabled ? "true" : "false")
     << ", \"hits\": " << surface.cacheHits
     << ", \"misses\": " << surface.cacheMisses << "}"
     << ",\n  \"classifications\": " << surface.classifications
     << ",\n  \"axes\": [";
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    os << (a > 0 ? ",\n    " : "\n    ") << "{\"name\": ";
    obs::writeJsonString(os, spec.axes[a].name);
    os << ", \"values\": [";
    for (std::size_t v = 0; v < spec.axes[a].values.size(); ++v) {
      if (v > 0) os << ", ";
      obs::writeJsonString(os, spec.axes[a].values[v].token);
    }
    os << "]}";
  }
  os << "\n  ],\n  \"results\": [";
  bool firstRow = true;
  for (std::size_t id = 0; id < surface.points; ++id) {
    if (!surface.computed[id]) continue;
    const std::vector<std::size_t> idx = spec.decode(id);
    const PointResult& r = surface.results[id];
    os << (firstRow ? "\n    " : ",\n    ") << "{\"id\": " << id
       << ", \"point\": {";
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      if (a > 0) os << ", ";
      obs::writeJsonString(os, spec.axes[a].name);
      os << ": ";
      obs::writeJsonString(os, spec.axes[a].values[idx[a]].token);
    }
    os << "}, \"analytic_rho\": ";
    obs::writeJsonNumber(os, r.analyticRho);
    os << ", \"closed_form_radius\": ";
    obs::writeJsonNumber(os, r.closedForm);
    os << ", \"empirical_radius\": ";
    obs::writeJsonNumber(os, r.empirical);
    os << ", \"degraded_radius\": ";
    obs::writeJsonNumber(os, r.degraded);
    os << ", \"makespan\": ";
    obs::writeJsonNumber(os, r.makespan);
    os << ", \"classifications\": " << r.classifications << "}";
    firstRow = false;
  }
  os << "\n  ]\n}\n";
}

void writeSurfaceCsv(std::ostream& os, const SweepSpec& spec,
                     const SweepSurface& surface) {
  buildTable(spec, surface).printCsv(os);
}

SurfaceSummary summarize(const SweepSurface& surface) {
  SurfaceSummary s;
  s.rhoMin = std::numeric_limits<double>::infinity();
  s.rhoMax = -std::numeric_limits<double>::infinity();
  for (std::size_t id = 0; id < surface.points; ++id) {
    if (!surface.computed[id]) continue;
    const PointResult& r = surface.results[id];
    if (std::isfinite(r.analyticRho)) {
      s.rhoMin = std::min(s.rhoMin, r.analyticRho);
      s.rhoMax = std::max(s.rhoMax, r.analyticRho);
      ++s.finitePoints;
    }
    if (std::isfinite(r.analyticRho) && std::isfinite(r.closedForm)) {
      s.worstClosedFormDeviation = std::max(
          s.worstClosedFormDeviation, std::abs(r.analyticRho - r.closedForm));
    }
  }
  if (s.finitePoints == 0) {
    s.rhoMin = 0.0;
    s.rhoMax = 0.0;
  }
  return s;
}

}  // namespace fepia::sweep
