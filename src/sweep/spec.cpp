#include "sweep/spec.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/parse.hpp"
#include "io/problem_io.hpp"
#include "rng/xoshiro.hpp"

namespace fepia::sweep {
namespace {

/// Hard ceilings that turn fat-fingered specs into parse errors instead
/// of hour-long runs: per-axis counts, grid size, and shard size.
constexpr std::uint64_t kMaxCount = 1u << 20;
constexpr std::size_t kMaxPoints = 1u << 20;
constexpr std::uint64_t kMaxChunk = 1u << 16;

/// Validation rule of one axis' values.
enum class ValueKind {
  Count,           ///< unsigned integer >= 1
  Positive,        ///< finite double > 0
  GreaterThanOne,  ///< finite double > 1
  NonNegative,     ///< finite double >= 0
  Choice,          ///< one of a fixed token set
};

struct AxisDescriptor {
  const char* name;
  ValueKind kind;
  std::vector<const char*> choices;  ///< Choice only
  const char* fallback;              ///< default token when the axis is absent
};

const std::vector<AxisDescriptor>& axesFor(Workload w) {
  static const std::vector<AxisDescriptor> linear = {
      {"scheme", ValueKind::Choice, {"sensitivity", "normalized"}, "normalized"},
      {"n", ValueKind::Count, {}, "4"},
      {"beta", ValueKind::GreaterThanOne, {}, "1.2"},
      {"kscale", ValueKind::Positive, {}, "1"},
      {"origscale", ValueKind::Positive, {}, "1"},
  };
  static const std::vector<AxisDescriptor> alloc = {
      {"heuristic",
       ValueKind::Choice,
       {"olb", "met", "mct", "min-min", "max-min", "sufferage"},
       "mct"},
      {"tasks", ValueKind::Count, {}, "64"},
      {"machines", ValueKind::Count, {}, "8"},
      {"het", ValueKind::Choice, {"hi-hi", "hi-lo", "lo-hi", "lo-lo"}, "hi-hi"},
      {"taufactor", ValueKind::GreaterThanOne, {}, "1.4"},
  };
  static const std::vector<AxisDescriptor> hiperd = {
      {"jitter", ValueKind::NonNegative, {}, "0"},
      {"faults", ValueKind::Choice, {"off", "on"}, "off"},
      {"des", ValueKind::Choice, {"off", "on"}, "off"},
  };
  switch (w) {
    case Workload::Linear: return linear;
    case Workload::Alloc: return alloc;
    case Workload::Hiperd: return hiperd;
  }
  return linear;  // unreachable
}

const AxisDescriptor* findDescriptor(Workload w, const std::string& name) {
  for (const AxisDescriptor& d : axesFor(w)) {
    if (name == d.name) return &d;
  }
  return nullptr;
}

/// Validates one axis token against its descriptor; fills the numeric
/// value for numeric kinds. Returns an error message or empty on
/// success.
std::string checkValue(const AxisDescriptor& d, const std::string& token,
                       double& number) {
  const auto numeric = [&]() -> std::string {
    const std::optional<double> v = io::parseFiniteDouble(token);
    if (!v.has_value()) {
      return "axis '" + std::string(d.name) + "': bad value '" + token +
             "' (expected a finite number)";
    }
    number = *v;
    return {};
  };
  switch (d.kind) {
    case ValueKind::Count: {
      const std::optional<std::uint64_t> v =
          io::parseUint64AtMost(token, kMaxCount);
      if (!v.has_value() || *v == 0) {
        return "axis '" + std::string(d.name) + "': bad value '" + token +
               "' (expected an integer in [1, " + std::to_string(kMaxCount) +
               "])";
      }
      number = static_cast<double>(*v);
      return {};
    }
    case ValueKind::Positive: {
      std::string err = numeric();
      if (!err.empty()) return err;
      if (number <= 0.0) {
        return "axis '" + std::string(d.name) + "': value '" + token +
               "' must be > 0";
      }
      return {};
    }
    case ValueKind::GreaterThanOne: {
      std::string err = numeric();
      if (!err.empty()) return err;
      if (number <= 1.0) {
        return "axis '" + std::string(d.name) + "': value '" + token +
               "' must be > 1";
      }
      return {};
    }
    case ValueKind::NonNegative: {
      std::string err = numeric();
      if (!err.empty()) return err;
      if (number < 0.0) {
        return "axis '" + std::string(d.name) + "': value '" + token +
               "' must be >= 0";
      }
      return {};
    }
    case ValueKind::Choice: {
      for (const char* c : d.choices) {
        if (token == c) {
          number = 0.0;
          return {};
        }
      }
      std::string expected;
      for (const char* c : d.choices) {
        if (!expected.empty()) expected += "|";
        expected += c;
      }
      return "axis '" + std::string(d.name) + "': bad value '" + token +
             "' (expected " + expected + ")";
    }
  }
  return "internal: unknown axis kind";
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

std::uint64_t parseCountDirective(std::size_t lineNo, const std::string& key,
                                  const std::string& token,
                                  std::uint64_t maxValue) {
  const std::optional<std::uint64_t> v = io::parseUint64AtMost(token, maxValue);
  if (!v.has_value() || *v == 0) {
    throw io::ParseError(lineNo, "'" + key + "': bad value '" + token +
                                     "' (expected an integer in [1, " +
                                     std::to_string(maxValue) + "])");
  }
  return *v;
}

void hashAppend(std::string& canon, const std::string& part) {
  canon += part;
  canon += '\x1f';  // unit separator: token boundaries cannot collide
}

}  // namespace

const char* workloadName(Workload w) noexcept {
  switch (w) {
    case Workload::Linear: return "linear";
    case Workload::Alloc: return "alloc";
    case Workload::Hiperd: return "hiperd";
  }
  return "linear";  // unreachable
}

std::size_t SweepSpec::pointCount() const noexcept {
  std::size_t n = 1;
  for (const Axis& a : axes) n *= a.values.size();
  return n;
}

std::vector<std::size_t> SweepSpec::decode(std::size_t id) const {
  std::vector<std::size_t> idx(axes.size(), 0);
  for (std::size_t a = axes.size(); a-- > 0;) {
    const std::size_t size = axes[a].values.size();
    idx[a] = id % size;
    id /= size;
  }
  return idx;
}

const AxisValue& SweepSpec::valueAt(std::size_t id,
                                    std::string_view axis) const {
  const std::vector<std::size_t> idx = decode(id);
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (axes[a].name == axis) return axes[a].values[idx[a]];
  }
  throw std::out_of_range("sweep: unknown axis '" + std::string(axis) + "'");
}

std::string SweepSpec::pointKey(std::size_t id) const {
  const std::vector<std::size_t> idx = decode(id);
  std::string key;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (a > 0) key += ';';
    key += axes[a].name;
    key += '=';
    key += axes[a].values[idx[a]].token;
  }
  return key;
}

std::uint64_t SweepSpec::hash() const {
  std::string canon;
  hashAppend(canon, "fepia-sweep-v1");
  hashAppend(canon, workloadName(workload));
  hashAppend(canon, std::to_string(seed));
  hashAppend(canon, std::to_string(samples));
  hashAppend(canon, empirical ? "1" : "0");
  hashAppend(canon, std::to_string(generations));
  hashAppend(canon, systemPath);
  for (const Axis& a : axes) {
    hashAppend(canon, "axis");
    hashAppend(canon, a.name);
    for (const AxisValue& v : a.values) hashAppend(canon, v.token);
  }
  return fnv1a64(canon);
}

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t deriveSeed(std::uint64_t base, std::string_view key) noexcept {
  rng::SplitMix64 mixer(base ^ fnv1a64(key));
  return mixer.next();
}

SweepSpec parseSweepSpec(std::istream& in) {
  SweepSpec spec;
  bool sawWorkload = false;
  bool sawName = false;
  std::string line;
  std::size_t lineNo = 0;

  while (std::getline(in, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];

    if (key == "sweep") {
      if (tokens.size() != 2) {
        throw io::ParseError(lineNo, "'sweep' expects exactly one name");
      }
      if (sawName) throw io::ParseError(lineNo, "duplicate 'sweep' line");
      sawName = true;
      spec.name = tokens[1];
    } else if (key == "workload") {
      if (tokens.size() != 2) {
        throw io::ParseError(lineNo,
                             "'workload' expects linear|alloc|hiperd");
      }
      if (sawWorkload) throw io::ParseError(lineNo, "duplicate 'workload' line");
      if (tokens[1] == "linear") {
        spec.workload = Workload::Linear;
      } else if (tokens[1] == "alloc") {
        spec.workload = Workload::Alloc;
      } else if (tokens[1] == "hiperd") {
        spec.workload = Workload::Hiperd;
      } else {
        throw io::ParseError(lineNo, "unknown workload '" + tokens[1] +
                                         "' (expected linear|alloc|hiperd)");
      }
      sawWorkload = true;
    } else if (key == "axis") {
      if (!sawWorkload) {
        throw io::ParseError(
            lineNo, "'axis' before 'workload' (the workload defines the axes)");
      }
      if (tokens.size() < 3) {
        throw io::ParseError(lineNo,
                             "'axis' expects a name and at least one value");
      }
      const AxisDescriptor* d = findDescriptor(spec.workload, tokens[1]);
      if (d == nullptr) {
        std::string known;
        for (const AxisDescriptor& a : axesFor(spec.workload)) {
          if (!known.empty()) known += ", ";
          known += a.name;
        }
        throw io::ParseError(lineNo, "unknown axis '" + tokens[1] + "' for the " +
                                         std::string(workloadName(spec.workload)) +
                                         " workload (known: " + known + ")");
      }
      for (const Axis& existing : spec.axes) {
        if (existing.name == tokens[1]) {
          throw io::ParseError(lineNo, "duplicate axis '" + tokens[1] + "'");
        }
      }
      Axis axis;
      axis.name = tokens[1];
      for (std::size_t t = 2; t < tokens.size(); ++t) {
        AxisValue v;
        v.token = tokens[t];
        const std::string err = checkValue(*d, v.token, v.number);
        if (!err.empty()) throw io::ParseError(lineNo, err);
        axis.values.push_back(std::move(v));
      }
      spec.axes.push_back(std::move(axis));
    } else if (key == "seed") {
      if (tokens.size() != 2) {
        throw io::ParseError(lineNo, "'seed' expects one value");
      }
      const std::optional<std::uint64_t> v = io::parseUint64(tokens[1]);
      if (!v.has_value()) {
        throw io::ParseError(lineNo, "'seed': bad value '" + tokens[1] +
                                         "' (expected an unsigned integer)");
      }
      spec.seed = *v;
    } else if (key == "samples") {
      if (tokens.size() != 2) {
        throw io::ParseError(lineNo, "'samples' expects one value");
      }
      spec.samples = static_cast<std::size_t>(
          parseCountDirective(lineNo, "samples", tokens[1], kMaxCount));
    } else if (key == "gens") {
      if (tokens.size() != 2) {
        throw io::ParseError(lineNo, "'gens' expects one value");
      }
      spec.generations = static_cast<std::size_t>(
          parseCountDirective(lineNo, "gens", tokens[1], kMaxCount));
    } else if (key == "chunk") {
      if (tokens.size() != 2) {
        throw io::ParseError(lineNo, "'chunk' expects one value");
      }
      spec.chunk = static_cast<std::size_t>(
          parseCountDirective(lineNo, "chunk", tokens[1], kMaxChunk));
    } else if (key == "empirical") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
        throw io::ParseError(lineNo, "'empirical' expects on|off");
      }
      spec.empirical = tokens[1] == "on";
    } else if (key == "system") {
      if (tokens.size() != 2) {
        throw io::ParseError(lineNo, "'system' expects one path");
      }
      spec.systemPath = tokens[1];
    } else {
      throw io::ParseError(lineNo, "unknown directive '" + key + "'");
    }
  }

  if (!sawWorkload) {
    throw io::ParseError(lineNo == 0 ? 1 : lineNo,
                         "missing 'workload' line (linear|alloc|hiperd)");
  }
  if (!spec.systemPath.empty() && spec.workload != Workload::Hiperd) {
    throw io::ParseError(lineNo, "'system' is only valid for the hiperd workload");
  }

  // Complete the coordinate tuple: absent axes become single-value axes
  // with their canonical defaults, appended in canonical order.
  for (const AxisDescriptor& d : axesFor(spec.workload)) {
    const bool present =
        std::any_of(spec.axes.begin(), spec.axes.end(),
                    [&](const Axis& a) { return a.name == d.name; });
    if (present) continue;
    AxisValue v;
    v.token = d.fallback;
    const std::string err = checkValue(d, v.token, v.number);
    if (!err.empty()) {
      throw std::logic_error("sweep: bad built-in default: " + err);
    }
    spec.axes.push_back(Axis{d.name, {std::move(v)}});
  }

  // Grid-size ceiling (checked with the completed axes; overflow-safe
  // because every axis size and the cap are far below 2^32).
  std::size_t points = 1;
  for (const Axis& a : spec.axes) {
    points *= a.values.size();
    if (points > kMaxPoints) {
      throw io::ParseError(lineNo, "sweep too large (more than " +
                                       std::to_string(kMaxPoints) + " points)");
    }
  }
  return spec;
}

SweepSpec parseSweepSpecString(const std::string& text) {
  std::istringstream is(text);
  return parseSweepSpec(is);
}

SweepSpec loadSweepSpec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open sweep spec '" + path + "'");
  }
  return parseSweepSpec(in);
}

}  // namespace fepia::sweep
