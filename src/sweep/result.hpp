// Per-point sweep results.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

namespace fepia::sweep {

/// Everything a sweep records for one grid point. Quantities a point
/// does not compute (e.g. the empirical radius with `empirical off`, or
/// the makespan outside the alloc workload) stay NaN; -inf is a real
/// value (an infeasible allocation's rho).
struct PointResult {
  double analyticRho = std::numeric_limits<double>::quiet_NaN();
  double closedForm = std::numeric_limits<double>::quiet_NaN();
  double empirical = std::numeric_limits<double>::quiet_NaN();
  double degraded = std::numeric_limits<double>::quiet_NaN();
  double makespan = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t classifications = 0;
};

/// Bit-level equality (NaN == NaN, +0 != -0) — the determinism contract
/// compares surfaces with this, not with operator==.
[[nodiscard]] inline bool bitIdentical(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

[[nodiscard]] inline bool bitIdentical(const PointResult& a,
                                       const PointResult& b) noexcept {
  return bitIdentical(a.analyticRho, b.analyticRho) &&
         bitIdentical(a.closedForm, b.closedForm) &&
         bitIdentical(a.empirical, b.empirical) &&
         bitIdentical(a.degraded, b.degraded) &&
         bitIdentical(a.makespan, b.makespan) &&
         a.classifications == b.classifications;
}

}  // namespace fepia::sweep
