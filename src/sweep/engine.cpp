#include "sweep/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "alloc/allocation.hpp"
#include "alloc/eval_engine.hpp"
#include "alloc/heuristics.hpp"
#include "etc/etc.hpp"
#include "fault/degraded.hpp"
#include "fault/plan.hpp"
#include "feature/linear.hpp"
#include "hiperd/factory.hpp"
#include "io/system_io.hpp"
#include "obs/clock.hpp"
#include "obs/span.hpp"
#include "radius/closed_forms.hpp"
#include "radius/fepia.hpp"
#include "radius/registry/scheduler.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sweep/cache.hpp"
#include "sweep/journal.hpp"
#include "sweep/pcache.hpp"
#include "validate/scheme.hpp"

namespace fepia::sweep {
namespace {

namespace rbackend = radius::backend;

// ---- linear workload (the S3.1/S3.2 family) ---------------------------

/// One generated (k, pi^orig) linear instance — shared by every (scheme,
/// beta) combination over the same (n, kscale, origscale) coordinates.
struct LinearInstance {
  la::Vector k;
  la::Vector orig;
};

std::shared_ptr<const LinearInstance> makeLinearInstance(
    std::size_t n, double kScale, double origScale, std::uint64_t seed) {
  auto inst = std::make_shared<LinearInstance>();
  inst->k = la::Vector(n);
  inst->orig = la::Vector(n);
  rng::Xoshiro256StarStar g(seed);
  for (std::size_t j = 0; j < n; ++j) {
    // The generation recipe of bench_sensitivity_invariance: positive
    // coefficients and originals with controllable scales.
    inst->k[j] = kScale * rng::uniform(g, 0.1, 3.0);
    inst->orig[j] = origScale * rng::uniform(g, 0.2, 20.0);
  }
  return inst;
}

radius::FepiaProblem makeLinearProblem(const LinearInstance& inst,
                                       double beta) {
  radius::FepiaProblem problem;
  const std::size_t n = inst.k.size();
  for (std::size_t j = 0; j < n; ++j) {
    // Cycling base units makes the kinds deliberately incommensurable —
    // the mixed-kind setting the merge schemes exist for.
    problem.addPerturbation(perturb::PerturbationParameter(
        "pi" + std::to_string(j),
        units::Unit::base(static_cast<units::Dimension>(j % 4)),
        la::Vector{inst.orig[j]}));
  }
  const auto lin = std::make_shared<feature::LinearFeature>("phi", inst.k);
  problem.addFeature(lin,
                     feature::FeatureBounds::upper(beta * lin->evaluate(inst.orig)));
  return problem;
}

// ---- alloc workload (the makespan case study) -------------------------

/// One generated ETC matrix plus the MCT reference makespan that anchors
/// tau — shared by every (heuristic, taufactor) combination.
struct AllocInstance {
  la::Matrix etcMatrix{1, 1};
  double mctMakespan = 0.0;
};

/// A cached EvalEngine bound to a cached instance. EvalEngine::evaluate
/// mutates internal state (memo cache), so concurrent shards hitting the
/// same engine serialize on the box mutex; the instance shared_ptr keeps
/// the referenced matrix alive for the engine's lifetime.
struct EngineBox {
  EngineBox(std::shared_ptr<const AllocInstance> instance, double tau)
      : inst(std::move(instance)),
        engine(inst->etcMatrix,
               alloc::EngineConfig{alloc::EngineObjective::Rho, tau,
                                   /*cacheCapacity=*/1u << 12,
                                   /*chunkSize=*/64},
               nullptr) {}

  std::shared_ptr<const AllocInstance> inst;
  mutable std::mutex mutex;
  mutable alloc::EvalEngine engine;
};

alloc::Heuristic heuristicFromToken(const std::string& token) {
  for (const alloc::Heuristic h : alloc::allHeuristics()) {
    if (token == alloc::heuristicName(h)) return h;
  }
  throw std::invalid_argument("sweep: unknown heuristic '" + token + "'");
}

etc::Heterogeneity heterogeneityFromToken(const std::string& token) {
  for (const etc::Heterogeneity h :
       {etc::Heterogeneity::HiHi, etc::Heterogeneity::HiLo,
        etc::Heterogeneity::LoHi, etc::Heterogeneity::LoLo}) {
    if (token == etc::heterogeneityName(h)) return h;
  }
  throw std::invalid_argument("sweep: unknown heterogeneity '" + token + "'");
}

// ---- hiperd workload (the DES pipeline) -------------------------------

struct HiperdInstance {
  hiperd::ReferenceSystem ref;
  double analyticRho = 0.0;
};

/// Cached empirical estimates carry only what the surface records.
struct EmpiricalPoint {
  double radius = 0.0;
  std::uint64_t classifications = 0;
};

// ---- the per-point evaluator ------------------------------------------

/// Live progress counters for the telemetry sampler: relaxed atomics
/// bumped on the worker threads, read by the hub's source callback.
/// Nothing in the sweep ever reads them back.
struct LiveSweepStats {
  std::atomic<std::uint64_t> pointsDone{0};
  std::atomic<std::uint64_t> shardsDone{0};
  std::atomic<std::uint64_t> classifications{0};
  fault::LiveFaultStats faults;
};

class Evaluator {
 public:
  Evaluator(const SweepSpec& spec, ResultCache& cache,
            std::string backendOverride, LiveSweepStats* live = nullptr,
            PersistentCache* persistent = nullptr)
      : spec_(spec),
        cache_(cache),
        backendOverride_(std::move(backendOverride)),
        live_(live),
        persistent_(persistent) {}

  [[nodiscard]] PointResult evaluate(std::size_t id) const {
    switch (spec_.workload) {
      case Workload::Linear: return evaluateLinear(id);
      case Workload::Alloc: return evaluateAlloc(id);
      case Workload::Hiperd: return evaluateHiperd(id);
    }
    throw std::logic_error("sweep: unknown workload");
  }

 private:
  [[nodiscard]] std::string tok(std::size_t id, std::string_view axis) const {
    return spec_.valueAt(id, axis).token;
  }
  [[nodiscard]] double num(std::size_t id, std::string_view axis) const {
    return spec_.valueAt(id, axis).number;
  }

  // ---- routed radius solves -------------------------------------------
  // The analytic-rho column goes through the scheduler (which picks the
  // closed-form kernel for every built-in workload) unless --backend
  // forces one; the empirical/degraded columns pin their namesake
  // kernels with the exact options the old direct calls used, so the
  // surface stays byte-identical to the pre-registry engine. Inner
  // solves always run with pool = nullptr and metrics = nullptr: shards
  // already saturate the pool, and obs::Registry is not thread-safe.

  [[nodiscard]] double solveRho(const radius::FepiaProblem& problem,
                                radius::MergeScheme scheme) const {
    rbackend::RadiusProblem rp;
    rp.problem = &problem;
    rp.scheme = scheme;
    rbackend::RadiusRequest req;
    req.backendOverride = backendOverride_;
    return rbackend::solveRadius(rp, req, nullptr).rho;
  }

  [[nodiscard]] std::shared_ptr<EmpiricalPoint> solveEmpirical(
      const radius::FepiaProblem& problem, radius::MergeScheme scheme,
      const validate::EstimatorOptions& eo) const {
    rbackend::RadiusProblem rp;
    rp.problem = &problem;
    rp.scheme = scheme;
    rbackend::RadiusRequest req;
    // The batched kernel produces radii and classification counts
    // bit-identical to "empirical" (same estimator, SoA classification),
    // so routing the sweep through it changes throughput only — the S3.1
    // surface guard (tools/baselines/s31_surface.json) holds it to that.
    req.backendOverride = "empirical-batched";
    req.estimator = eo;
    if (live_ != nullptr) {
      req.estimator.liveClassifications = &live_->classifications;
    }
    const rbackend::RadiusOutcome out = rbackend::solveRadius(rp, req, nullptr);
    auto p = std::make_shared<EmpiricalPoint>();
    p->radius = out.rho;
    p->classifications = out.classifications;
    return p;
  }

  [[nodiscard]] std::shared_ptr<EmpiricalPoint> solveDegraded(
      const hiperd::ReferenceSystem& ref, std::vector<fault::FaultPlan> plans,
      const validate::EstimatorOptions& eo,
      const fault::DegradedOptions& dopts) const {
    rbackend::RadiusProblem rp;
    rp.system = &ref;
    rp.scenarios = std::move(plans);
    rp.desClassification = true;
    rbackend::RadiusRequest req;
    req.backendOverride = "degraded";
    req.estimator = eo;
    req.degraded = dopts;
    if (live_ != nullptr) {
      req.estimator.liveClassifications = &live_->classifications;
      req.degraded.live = &live_->faults;
    }
    const rbackend::RadiusOutcome out = rbackend::solveRadius(rp, req, nullptr);
    auto p = std::make_shared<EmpiricalPoint>();
    p->radius = out.rho;
    p->classifications = out.classifications;
    return p;
  }

  /// Cached empirical/degraded estimate: in-memory entry first, then
  /// the persistent on-disk cache, then `compute`. A persistent hit is
  /// bit-identical to recomputation (content-derived seeds, exact
  /// hexfloat storage), so the layering is invisible in the surface.
  template <typename Fn>
  [[nodiscard]] std::shared_ptr<const EmpiricalPoint> cachedEstimate(
      const std::string& key, Fn&& compute) const {
    return cache_.get<EmpiricalPoint>(key, [&] {
      if (persistent_ != nullptr) {
        if (const std::optional<PersistentCache::Value> v =
                persistent_->lookup(key)) {
          auto p = std::make_shared<EmpiricalPoint>();
          p->radius = v->radius;
          p->classifications = v->classifications;
          return p;
        }
      }
      std::shared_ptr<EmpiricalPoint> p = compute();
      if (persistent_ != nullptr) {
        persistent_->store(key,
                           PersistentCache::Value{p->radius,
                                                  p->classifications});
      }
      return p;
    });
  }

  [[nodiscard]] PointResult evaluateLinear(std::size_t id) const {
    const std::size_t n = static_cast<std::size_t>(num(id, "n"));
    const double beta = num(id, "beta");
    const radius::MergeScheme scheme = tok(id, "scheme") == "sensitivity"
                                           ? radius::MergeScheme::Sensitivity
                                           : radius::MergeScheme::NormalizedByOriginal;
    const std::string instKey = "lin;n=" + tok(id, "n") +
                                ";kscale=" + tok(id, "kscale") +
                                ";origscale=" + tok(id, "origscale");
    const std::shared_ptr<const LinearInstance> inst =
        cache_.get<LinearInstance>(instKey, [&] {
          return makeLinearInstance(n, num(id, "kscale"), num(id, "origscale"),
                                    deriveSeed(spec_.seed, instKey));
        });

    const radius::FepiaProblem problem = makeLinearProblem(*inst, beta);
    PointResult r;
    r.analyticRho = solveRho(problem, scheme);
    r.closedForm = scheme == radius::MergeScheme::Sensitivity
                       ? radius::sensitivityLinearRadius(n)
                       : radius::normalizedLinearRadius(inst->k, inst->orig, beta);
    r.classifications = 1;
    if (spec_.empirical) {
      const std::string empKey = instKey + ";scheme=" + tok(id, "scheme") +
                                 ";beta=" + tok(id, "beta") +
                                 ";emp;samples=" + std::to_string(spec_.samples);
      const std::shared_ptr<const EmpiricalPoint> emp =
          cachedEstimate(empKey, [&] {
            validate::EstimatorOptions eo;
            eo.directions = spec_.samples;
            eo.seed = deriveSeed(spec_.seed, empKey);
            return solveEmpirical(problem, scheme, eo);
          });
      r.empirical = emp->radius;
      r.classifications += emp->classifications;
    }
    return r;
  }

  [[nodiscard]] PointResult evaluateAlloc(std::size_t id) const {
    const std::string instKey = "alloc;tasks=" + tok(id, "tasks") +
                                ";machines=" + tok(id, "machines") +
                                ";het=" + tok(id, "het");
    const std::shared_ptr<const AllocInstance> inst =
        cache_.get<AllocInstance>(instKey, [&] {
          auto a = std::make_shared<AllocInstance>();
          rng::Xoshiro256StarStar g(deriveSeed(spec_.seed, instKey));
          a->etcMatrix = etc::generateCvb(
              static_cast<std::size_t>(num(id, "tasks")),
              static_cast<std::size_t>(num(id, "machines")),
              etc::cvbPreset(heterogeneityFromToken(tok(id, "het"))), g);
          a->mctMakespan =
              alloc::makespan(alloc::mct(a->etcMatrix), a->etcMatrix);
          return a;
        });

    const std::string muKey = instKey + ";h=" + tok(id, "heuristic");
    const std::shared_ptr<const alloc::Allocation> mu =
        cache_.get<alloc::Allocation>(muKey, [&] {
          return std::make_shared<const alloc::Allocation>(alloc::runHeuristic(
              heuristicFromToken(tok(id, "heuristic")), inst->etcMatrix));
        });

    const std::string engineKey = instKey + ";taufactor=" + tok(id, "taufactor");
    const std::shared_ptr<const EngineBox> box =
        cache_.get<EngineBox>(engineKey, [&] {
          return std::make_shared<const EngineBox>(
              inst, num(id, "taufactor") * inst->mctMakespan);
        });

    PointResult r;
    {
      const std::lock_guard<std::mutex> lock(box->mutex);
      r.analyticRho = box->engine.evaluate(*mu);
    }
    r.makespan = alloc::makespan(*mu, inst->etcMatrix);
    r.classifications = 1;
    return r;
  }

  [[nodiscard]] PointResult evaluateHiperd(std::size_t id) const {
    const std::string instKey =
        "hiperd;system=" +
        (spec_.systemPath.empty() ? std::string("builtin") : spec_.systemPath);
    const std::shared_ptr<const HiperdInstance> inst =
        cache_.get<HiperdInstance>(instKey, [&] {
          auto h = std::make_shared<HiperdInstance>();
          h->ref = spec_.systemPath.empty() ? hiperd::makeReferenceSystem()
                                            : io::loadSystem(spec_.systemPath);
          const radius::FepiaProblem problem =
              h->ref.system.executionMessageProblem(h->ref.qos);
          h->analyticRho =
              solveRho(problem, radius::MergeScheme::NormalizedByOriginal);
          return h;
        });

    PointResult r;
    r.analyticRho = inst->analyticRho;
    r.classifications = 1;
    if (spec_.empirical) {
      // Independent of jitter/faults/des — one estimate serves the whole
      // grid (the cache-hit demonstration of docs/sweep.md).
      const std::string empKey =
          instKey + ";emp;samples=" + std::to_string(spec_.samples);
      const std::shared_ptr<const EmpiricalPoint> emp =
          cachedEstimate(empKey, [&] {
            const radius::FepiaProblem problem =
                inst->ref.system.executionMessageProblem(inst->ref.qos);
            validate::EstimatorOptions eo;
            eo.directions = spec_.samples;
            eo.seed = deriveSeed(spec_.seed, empKey);
            return solveEmpirical(
                problem, radius::MergeScheme::NormalizedByOriginal, eo);
          });
      r.empirical = emp->radius;
      r.classifications += emp->classifications;
    }
    if (tok(id, "des") == "on") {
      const std::string degKey =
          instKey + ";deg;faults=" + tok(id, "faults") +
          ";jitter=" + tok(id, "jitter") +
          ";samples=" + std::to_string(spec_.samples) +
          ";gens=" + std::to_string(spec_.generations);
      const std::shared_ptr<const EmpiricalPoint> deg =
          cachedEstimate(degKey, [&] {
            std::vector<fault::FaultPlan> plans;
            if (tok(id, "faults") == "on") {
              plans.push_back(fault::samplePlan(
                  inst->ref.system, fault::SamplerOptions{},
                  deriveSeed(spec_.seed, instKey + ";plan")));
            }
            validate::EstimatorOptions eo;
            eo.directions = spec_.samples;
            eo.seed = deriveSeed(spec_.seed, degKey);
            fault::DegradedOptions dopts;
            dopts.generations = spec_.generations;
            dopts.explicitDirections = true;
            dopts.serviceJitterCov = num(id, "jitter");
            return solveDegraded(inst->ref, std::move(plans), eo, dopts);
          });
      r.degraded = deg->radius;
      r.classifications += deg->classifications;
    }
    return r;
  }

  const SweepSpec& spec_;
  ResultCache& cache_;
  std::string backendOverride_;
  LiveSweepStats* live_ = nullptr;
  PersistentCache* persistent_ = nullptr;
};

}  // namespace

SweepSurface runSweep(const SweepSpec& spec, const SweepOptions& opts,
                      parallel::ThreadPool* pool) {
  if (opts.resume && opts.journalPath.empty()) {
    throw std::invalid_argument("sweep: --resume requires a journal");
  }
  if (opts.stopAfterShards > 0 && opts.journalPath.empty()) {
    throw std::invalid_argument(
        "sweep: stopping early requires a journal (the partial work would "
        "be lost)");
  }

  SweepSurface surface;
  surface.points = spec.pointCount();
  surface.chunk = opts.chunkOverride > 0 ? opts.chunkOverride : spec.chunk;
  surface.shards = (surface.points + surface.chunk - 1) / surface.chunk;
  surface.results.assign(surface.points, PointResult{});
  surface.computed.assign(surface.points, 0);

  std::vector<bool> shardDone(surface.shards, false);
  if (opts.resume) {
    const JournalContents replay =
        readJournal(opts.journalPath, spec.hash(), surface.points,
                    surface.chunk, surface.shards);
    for (std::size_t s = 0; s < surface.shards; ++s) {
      if (!replay.shardDone[s]) continue;
      shardDone[s] = true;
      const std::size_t first = s * surface.chunk;
      const std::size_t last =
          std::min(first + surface.chunk, surface.points);
      for (std::size_t id = first; id < last; ++id) {
        surface.results[id] = replay.results[id];
        surface.computed[id] = 1;
      }
    }
    surface.resumedShards = replay.doneShards;
  }

  JournalWriter writer;
  std::mutex journalMutex;
  if (!opts.journalPath.empty()) {
    writer.open(opts.journalPath, /*append=*/opts.resume, spec.hash(),
                surface.points, surface.chunk);
  }

  std::vector<std::size_t> pending;
  for (std::size_t s = 0; s < surface.shards; ++s) {
    if (!shardDone[s]) pending.push_back(s);
  }
  const std::size_t totalPending = pending.size();
  if (opts.stopAfterShards > 0 && pending.size() > opts.stopAfterShards) {
    pending.resize(opts.stopAfterShards);
  }

  std::size_t pendingPoints = 0;
  for (const std::size_t s : pending) {
    const std::size_t first = s * surface.chunk;
    pendingPoints += std::min(first + surface.chunk, surface.points) - first;
  }

  // A caller-supplied shared cache (a resident server's warm cache)
  // substitutes for the per-run one; entries are content-keyed, so only
  // the wall clock can tell the difference. Hit/miss counters on a
  // shared cache are cumulative across runs, so the surface reports
  // this call's delta against the baseline read here.
  ResultCache localCache(opts.cacheEnabled);
  ResultCache& cache = (opts.sharedCache != nullptr && opts.cacheEnabled)
                           ? *opts.sharedCache
                           : localCache;
  const std::uint64_t cacheHits0 = cache.hits();
  const std::uint64_t cacheMisses0 = cache.misses();
  // The persistent estimate cache is opened per call: loading is one
  // directory scan, and per-call hit/miss deltas come free.
  std::unique_ptr<PersistentCache> persistent;
  if (!opts.cacheDir.empty() && opts.cacheEnabled) {
    persistent = std::make_unique<PersistentCache>(opts.cacheDir);
  }
  LiveSweepStats live;
  const Evaluator evaluator(spec, cache, opts.backendOverride,
                            opts.telemetry != nullptr ? &live : nullptr,
                            persistent.get());
  const obs::Stopwatch sw;

  // Telemetry wiring. The source callback runs on the hub's sampler
  // thread and reads only relaxed atomics; heartbeats/stragglers are
  // emitted under journalMutex, which already serialises shard commits.
  obs::TelemetryHub* const hub = opts.telemetry;
  std::size_t sourceId = 0;
  std::size_t watchdogId = 0;
  const bool watchdogOn = hub != nullptr && opts.stallDeadlineSeconds > 0.0;
  if (hub != nullptr) {
    sourceId = hub->addSource([&live, &cache, cacheHits0, cacheMisses0,
                               pendingPoints, pc = persistent.get(),
                               totalShards = pending.size()](
                                  obs::Registry& reg) {
      reg.setGauge("sweep.live_points_done",
                   static_cast<double>(
                       live.pointsDone.load(std::memory_order_relaxed)));
      reg.setGauge("sweep.live_points_total",
                   static_cast<double>(pendingPoints));
      reg.setGauge("sweep.live_shards_done",
                   static_cast<double>(
                       live.shardsDone.load(std::memory_order_relaxed)));
      reg.setGauge("sweep.live_shards_total",
                   static_cast<double>(totalShards));
      reg.setGauge("sweep.live_classifications",
                   static_cast<double>(live.classifications.load(
                       std::memory_order_relaxed)));
      reg.setGauge("sweep.live_cache_hits",
                   static_cast<double>(cache.hits() - cacheHits0));
      reg.setGauge("sweep.live_cache_misses",
                   static_cast<double>(cache.misses() - cacheMisses0));
      if (pc != nullptr) {
        reg.setGauge("sweep.live_persistent_hits",
                     static_cast<double>(pc->hits()));
        reg.setGauge("sweep.live_persistent_misses",
                     static_cast<double>(pc->misses()));
      }
      reg.setGauge("fault.live_classifications",
                   static_cast<double>(live.faults.classifications.load(
                       std::memory_order_relaxed)));
      reg.setGauge("fault.live_retries",
                   static_cast<double>(live.faults.retries.load(
                       std::memory_order_relaxed)));
      reg.setGauge("fault.live_dropped",
                   static_cast<double>(live.faults.droppedMessages.load(
                       std::memory_order_relaxed)));
    });
    if (watchdogOn) {
      watchdogId = hub->addWatchdog("sweep", opts.stallDeadlineSeconds);
    }
  }
  std::vector<double> shardSeconds;  // completed shards, under journalMutex
  shardSeconds.reserve(pending.size());

  const auto runShard = [&](std::size_t i) {
    FEPIA_SPAN("sweep.shard");
    const obs::Stopwatch shardSw;
    const std::size_t s = pending[i];
    const std::size_t first = s * surface.chunk;
    const std::size_t last = std::min(first + surface.chunk, surface.points);
    for (std::size_t id = first; id < last; ++id) {
      surface.results[id] = evaluator.evaluate(id);
      surface.computed[id] = 1;
      if (hub != nullptr) {
        live.pointsDone.fetch_add(1, std::memory_order_relaxed);
        if (watchdogOn) hub->noteProgress(watchdogId);
      }
    }
    const double shardWall = shardSw.elapsedSeconds();
    const std::lock_guard<std::mutex> lock(journalMutex);
    writer.appendShard(s, first, surface.results.data() + first, last - first);
    if (hub == nullptr && !opts.progress) return;
    live.shardsDone.fetch_add(1, std::memory_order_relaxed);

    // Progress model over committed work: rate from the run's wall clock
    // so cache-accelerated shards raise it honestly; ETA over the points
    // this call still owes.
    const std::uint64_t done =
        live.pointsDone.load(std::memory_order_relaxed);
    const double elapsed = sw.elapsedSeconds();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
    const std::uint64_t left =
        pendingPoints > done ? pendingPoints - done : 0;
    const double eta = rate > 0.0 ? static_cast<double>(left) / rate : 0.0;

    if (hub != nullptr) {
      obs::TelemetryEvent beat("heartbeat");
      beat.count("shard", s)
          .count("points_done", done)
          .count("points_total", pendingPoints)
          .num("shard_seconds", shardWall)
          .num("points_per_sec", rate)
          .num("eta_seconds", eta);
      hub->emit(beat);

      // Straggler check against the median completed shard so far. Needs
      // a few completed shards before "median" means anything.
      shardSeconds.push_back(shardWall);
      if (opts.stragglerFactor > 0.0 && shardSeconds.size() >= 4) {
        std::vector<double> sorted = shardSeconds;
        std::sort(sorted.begin(), sorted.end());
        const double median = sorted[sorted.size() / 2];
        if (median > 0.0 && shardWall > opts.stragglerFactor * median) {
          obs::TelemetryEvent warn("warning");
          warn.str("kind", "straggler")
              .count("shard", s)
              .num("shard_seconds", shardWall)
              .num("median_seconds", median)
              .num("factor", shardWall / median);
          hub->emit(warn);
        }
      }
    }

    if (opts.progress) {
      std::fprintf(stderr,
                   "\rsweep: %llu/%llu points (%.1f pts/s, ETA %.0fs)   ",
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(pendingPoints), rate, eta);
      std::fflush(stderr);
    }
  };

  if (pool != nullptr && pending.size() > 1) {
    parallel::parallelFor(*pool, pending.size(), runShard);
  } else {
    for (std::size_t i = 0; i < pending.size(); ++i) runShard(i);
  }

  if (opts.progress && !pending.empty()) {
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
  }
  if (hub != nullptr) {
    // The sampler must not call into this frame's locals past this
    // point; unhook before the surface (and `live`) go away.
    hub->removeSource(sourceId);
    if (watchdogOn) hub->removeWatchdog(watchdogId);
  }

  surface.wallSeconds = sw.elapsedSeconds();
  surface.computedShards = pending.size();
  surface.complete = pending.size() == totalPending;
  surface.cacheEnabled = cache.enabled();
  surface.cacheHits = cache.hits() - cacheHits0;
  surface.cacheMisses = cache.misses() - cacheMisses0;
  if (persistent != nullptr) {
    surface.persistentHits = persistent->hits();
    surface.persistentMisses = persistent->misses();
  }
  for (std::size_t id = 0; id < surface.points; ++id) {
    if (surface.computed[id]) {
      surface.classifications += surface.results[id].classifications;
    }
  }
  const std::size_t computedPoints = pendingPoints;
  surface.pointsPerSec = surface.wallSeconds > 0.0
                             ? static_cast<double>(computedPoints) /
                                   surface.wallSeconds
                             : 0.0;

  if (opts.metrics != nullptr) {
    obs::Registry& reg = *opts.metrics;
    reg.counters().bump("sweep.points_computed", computedPoints);
    reg.counters().bump("sweep.shards_computed", surface.computedShards);
    reg.counters().bump("sweep.shards_resumed", surface.resumedShards);
    reg.counters().bump("sweep.cache_hits", surface.cacheHits);
    reg.counters().bump("sweep.cache_misses", surface.cacheMisses);
    reg.counters().bump("sweep.persistent_hits", surface.persistentHits);
    reg.counters().bump("sweep.persistent_misses", surface.persistentMisses);
    reg.counters().bump("sweep.classifications", surface.classifications);
    reg.setGauge("sweep.points_per_sec", surface.pointsPerSec);
  }
  return surface;
}

void evaluatePointRange(const SweepSpec& spec, ResultCache& cache,
                        PersistentCache* persistent,
                        const std::string& backendOverride, std::size_t first,
                        std::size_t count, PointResult* out) {
  const Evaluator evaluator(spec, cache, backendOverride, nullptr, persistent);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = evaluator.evaluate(first + i);
  }
}

}  // namespace fepia::sweep
