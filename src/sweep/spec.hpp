// Declarative robustness-sweep specifications.
//
// The paper argues through parameter sweeps: S3.1 must show the
// sensitivity-weighted radius frozen at 1/sqrt(n) across k, beta and
// pi^orig, S3.2 that the normalized radius responds to all of them, and
// the STOCH/FAULTDEG experiments sweep jitter and fault scenarios
// through the DES. A SweepSpec is the declarative form of such an
// experiment: a workload family plus named axes whose cross-product
// (last axis fastest) enumerates the sweep points that sweep::runSweep
// evaluates.
//
// File format (line-oriented, '#' comments, blank lines ignored — the
// same conventions as the problem/system files of src/io):
//
//   sweep <name>                 # optional display name
//   workload linear|alloc|hiperd # required, before any axis line
//   axis <name> <v1> <v2> ...    # one per swept dimension
//   seed <u64>                   # base seed (default 0x5EEDD1CE)
//   samples <n>                  # Monte-Carlo directions per estimate
//   empirical on|off             # estimate empirical radii (default off)
//   gens <n>                     # DES generations per classification
//   chunk <n>                    # points per shard (default 16)
//   system <path>                # hiperd only: topology file
//
// Axes an omitted dimension falls back to a single default value, so
// every point always carries a full coordinate tuple. Per workload:
//
//   linear: scheme {sensitivity,normalized}, n, beta (>1), kscale (>0),
//           origscale (>0) — the S3.1/S3.2 linear-feature family.
//   alloc:  heuristic {olb,met,mct,min-min,max-min,sufferage}, tasks,
//           machines, het {hi-hi,hi-lo,lo-hi,lo-lo}, taufactor (>1) —
//           the makespan case study ranked by rho(tau).
//   hiperd: jitter (>=0), faults {off,on}, des {off,on} — the reference
//           pipeline under DES jitter and sampled fault scenarios.
//
// Errors are reported as io::ParseError with a 1-based line number, so
// the CLI surfaces malformed specs as one-line `error:` messages with
// exit status 1 (cli_parse_test conventions).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace fepia::sweep {

/// Workload family a sweep evaluates.
enum class Workload { Linear, Alloc, Hiperd };

/// Name like "linear".
[[nodiscard]] const char* workloadName(Workload w) noexcept;

/// One parsed axis value: the spelling from the spec file (echoed in
/// outputs and used in cache keys) plus its numeric value for numeric
/// axes (0 for choice axes).
struct AxisValue {
  std::string token;
  double number = 0.0;
};

/// One swept dimension.
struct Axis {
  std::string name;
  std::vector<AxisValue> values;
};

/// A parsed, validated, default-completed sweep specification. Axes
/// appear in declaration order followed by defaulted axes in canonical
/// order; the grid enumerates their cross-product with the last axis
/// varying fastest.
struct SweepSpec {
  std::string name = "sweep";
  Workload workload = Workload::Linear;
  std::vector<Axis> axes;
  std::uint64_t seed = 0x5EEDD1CEull;
  bool empirical = false;
  std::size_t samples = 64;
  std::size_t generations = 60;
  std::size_t chunk = 16;
  std::string systemPath;  ///< hiperd topology file; empty = built-in

  /// Product of axis sizes.
  [[nodiscard]] std::size_t pointCount() const noexcept;

  /// Per-axis value indices of point `id` (last axis fastest).
  [[nodiscard]] std::vector<std::size_t> decode(std::size_t id) const;

  /// Value of axis `axis` at point `id`; throws std::out_of_range on an
  /// unknown axis name.
  [[nodiscard]] const AxisValue& valueAt(std::size_t id,
                                         std::string_view axis) const;

  /// Canonical coordinate key of point `id`: "axis=token;..." in axis
  /// order — the basis of the sub-computation cache keys.
  [[nodiscard]] std::string pointKey(std::size_t id) const;

  /// FNV-1a hash of every computation-defining field (workload, seed,
  /// samples, empirical, gens, system, axes). The journal records it so
  /// a checkpoint can never be resumed against a different sweep. The
  /// display name and the chunk size are excluded: the former is
  /// cosmetic, the latter is validated separately (it defines the shard
  /// layout and may be overridden on the command line).
  [[nodiscard]] std::uint64_t hash() const;
};

/// Parses a spec from a stream; throws io::ParseError on malformed input.
[[nodiscard]] SweepSpec parseSweepSpec(std::istream& in);

/// Parses a spec from a string (convenience for tests and benches).
[[nodiscard]] SweepSpec parseSweepSpecString(const std::string& text);

/// Parses a spec from a file; throws std::runtime_error when the file
/// cannot be opened.
[[nodiscard]] SweepSpec loadSweepSpec(const std::string& path);

/// FNV-1a 64-bit hash (stable across platforms; used for spec hashes and
/// sub-computation seed derivation).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept;

/// Seed of the sub-computation identified by `key`, derived from the
/// spec's base seed. Keyed by *content*, not by point id, so identical
/// sub-computations at different grid points draw identical samples —
/// which is what makes them cacheable without changing any result.
[[nodiscard]] std::uint64_t deriveSeed(std::uint64_t base,
                                       std::string_view key) noexcept;

}  // namespace fepia::sweep
