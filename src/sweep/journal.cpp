#include "sweep/journal.hpp"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <locale>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "io/parse.hpp"

namespace fepia::sweep {
namespace {

constexpr const char* kMagic = "fepia-sweep-journal v1";

std::string hex16(std::uint64_t v) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

}  // namespace

std::string formatJournalDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Classic locale pinned: journal bytes must be identical no matter
  // what std::locale::global an embedding process installed (a
  // comma-decimal locale would otherwise corrupt the hexfloats).
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::hexfloat << v;
  return os.str();
}

bool parseJournalDouble(const std::string& token, double& out) {
  if (token == "nan") {
    // Bit-identical to the engine's "not computed" sentinel: results only
    // ever hold the default quiet NaN, never a payload-carrying one.
    out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (token == "inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-inf") {
    out = -std::numeric_limits<double>::infinity();
    return true;
  }
  // io::parseFiniteDouble consumes the hexfloat format the writer emits
  // (full-token, locale-independent from_chars underneath); the
  // non-finite sentinels were already handled above, so a finite-only
  // parser is exactly right here.
  const std::optional<double> v = io::parseFiniteDouble(token);
  if (!v.has_value()) return false;
  out = *v;
  return true;
}

JournalContents readJournal(const std::string& path, std::uint64_t specHash,
                            std::size_t points, std::size_t chunk,
                            std::size_t shards) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open sweep journal '" + path + "'");
  }
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("'" + path + "' is not a fepia sweep journal");
  }
  if (!std::getline(in, line)) {
    throw std::runtime_error("sweep journal '" + path + "': missing header");
  }
  {
    std::istringstream hs(line);
    std::string kwSpec, hash, kwPoints, kwChunk, pointsTok, chunkTok;
    if (!(hs >> kwSpec >> hash >> kwPoints >> pointsTok >> kwChunk >>
          chunkTok) ||
        kwSpec != "spec" || kwPoints != "points" || kwChunk != "chunk") {
      throw std::runtime_error("sweep journal '" + path + "': bad header");
    }
    if (hash != hex16(specHash)) {
      throw std::runtime_error(
          "sweep journal '" + path +
          "' was written for a different sweep spec (hash " + hash +
          ", expected " + hex16(specHash) + ")");
    }
    if (pointsTok != std::to_string(points) ||
        chunkTok != std::to_string(chunk)) {
      throw std::runtime_error("sweep journal '" + path +
                               "' has a different shard layout (points " +
                               pointsTok + " chunk " + chunkTok +
                               ", expected points " + std::to_string(points) +
                               " chunk " + std::to_string(chunk) + ")");
    }
  }

  JournalContents contents;
  contents.shardDone.assign(shards, false);
  contents.results.assign(points, PointResult{});

  // Point lines stage into the slots directly; only a shard's commit
  // marker makes them count. Malformed lines are skipped, not fatal:
  // appends land in file order, so a durable `shard done` marker implies
  // every point line of that append is durable before it — a malformed
  // line can only be crash debris from an append whose marker never made
  // it, and the resumed run re-stages that shard's points (overwriting
  // anything the debris staged) before committing it. Skipping therefore
  // never corrupts a committed shard, and shards committed after a torn
  // line keep counting instead of being recomputed on every resume.
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    if (kind == "point") {
      std::string idTok, a, c, e, d, m, clsTok;
      if (!(ls >> idTok >> a >> c >> e >> d >> m >> clsTok)) continue;
      const std::optional<std::uint64_t> id =
          io::parseUint64AtMost(idTok, points == 0 ? 0 : points - 1);
      const std::optional<std::uint64_t> cls = io::parseUint64(clsTok);
      PointResult r;
      if (!id.has_value() || !cls.has_value() ||
          !parseJournalDouble(a, r.analyticRho) ||
          !parseJournalDouble(c, r.closedForm) ||
          !parseJournalDouble(e, r.empirical) ||
          !parseJournalDouble(d, r.degraded) ||
          !parseJournalDouble(m, r.makespan)) {
        continue;
      }
      r.classifications = *cls;
      contents.results[static_cast<std::size_t>(*id)] = r;
    } else if (kind == "shard") {
      std::string sTok, done;
      if (!(ls >> sTok >> done) || done != "done") continue;
      const std::optional<std::uint64_t> s =
          io::parseUint64AtMost(sTok, shards == 0 ? 0 : shards - 1);
      if (!s.has_value()) continue;
      const std::size_t shard = static_cast<std::size_t>(*s);
      if (!contents.shardDone[shard]) {
        contents.shardDone[shard] = true;
        ++contents.doneShards;
      }
    }
  }
  return contents;
}

void JournalWriter::open(const std::string& path, bool append,
                         std::uint64_t specHash, std::size_t points,
                         std::size_t chunk) {
  bool writeHeader = true;
  bool repairTail = false;
  if (append) {
    std::ifstream existing(path, std::ios::binary);
    writeHeader = !existing.good();
    if (!writeHeader) {
      // A crash mid-append can leave a torn, newline-less final line; a
      // fresh newline quarantines it so the first record this run writes
      // does not concatenate onto the debris.
      existing.seekg(0, std::ios::end);
      const std::streamoff size = existing.tellg();
      if (size > 0) {
        existing.seekg(size - 1);
        char last = '\n';
        existing.get(last);
        repairTail = last != '\n';
      }
    }
  }
  out_.open(path, append ? std::ios::app : std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("cannot write sweep journal '" + path + "'");
  }
  if (repairTail) out_ << '\n';
  if (writeHeader) {
    out_ << kMagic << "\n"
         << "spec " << hex16(specHash) << " points " << points << " chunk "
         << chunk << "\n";
    out_.flush();
  }
}

void JournalWriter::appendShard(std::size_t shard, std::size_t firstId,
                                const PointResult* results,
                                std::size_t count) {
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < count; ++i) {
    const PointResult& r = results[i];
    out_ << "point " << (firstId + i) << ' '
         << formatJournalDouble(r.analyticRho) << ' '
         << formatJournalDouble(r.closedForm) << ' '
         << formatJournalDouble(r.empirical) << ' '
         << formatJournalDouble(r.degraded) << ' '
         << formatJournalDouble(r.makespan) << ' ' << r.classifications
         << "\n";
  }
  out_ << "shard " << shard << " done\n";
  out_.flush();
}

}  // namespace fepia::sweep
