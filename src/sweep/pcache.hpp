// Persistent on-disk promotion of the content-keyed result cache.
//
// The in-memory ResultCache dedups shared sub-computations within one
// process; the PersistentCache makes the expensive entries — the
// Monte-Carlo empirical and degraded-radius estimates — survive across
// processes and runs, so a fleet of sweep workers (and repeated runs of
// the same grid) share one warm cache directory. Because estimate seeds
// derive from the same content keys (sweep::deriveSeed) and doubles are
// stored in the journal's exact hexfloat form, a loaded value is
// bit-identical to a recomputed one: the cache changes throughput,
// never a byte of any surface.
//
// Layout: a directory of append-only segment files, one per writing
// process (`seg-<pid>-<rand>.seg`), so concurrent workers never
// interleave writes in one file. Each segment is line-oriented:
//
//   fepia-sweep-pcache v1
//   entry <hexfloat-radius> <classifications> <content key ...>
//
// and every append is flushed. Crash debris is tolerated the same way
// the sweep journal tolerates it: a torn or malformed line (including a
// newline-less tail from a killed writer) is quarantined — skipped and
// counted — on open, valid lines before and after it still load, and a
// segment without the version header is skipped whole. Writers never
// append to a foreign (or torn) segment; a fresh segment file is
// created on first store.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace fepia::sweep {

class PersistentCache {
 public:
  /// What an entry stores: exactly what a cached empirical estimate
  /// contributes to a point result.
  struct Value {
    double radius = 0.0;
    std::uint64_t classifications = 0;
  };

  /// Opens `dir` (created, parents included, when missing) and loads
  /// every `*.seg` segment. Throws std::runtime_error when the
  /// directory cannot be created or read. Thread-safe after
  /// construction.
  explicit PersistentCache(const std::string& dir);

  /// The stored value for `key`, or nullopt. Counts a hit or a miss.
  [[nodiscard]] std::optional<Value> lookup(const std::string& key);

  /// Appends (key, value) to this process's segment (created lazily)
  /// and flushes; also inserts into the in-memory index. Duplicate keys
  /// keep the first value — entries are content-keyed, so duplicates
  /// are bit-identical anyway. Write failures are swallowed: the cache
  /// is an accelerator, never a correctness dependency.
  void store(const std::string& key, const Value& value);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::uint64_t hits() const noexcept;
  [[nodiscard]] std::uint64_t misses() const noexcept;
  /// Entries loaded from segments at open.
  [[nodiscard]] std::uint64_t loadedEntries() const noexcept {
    return loaded_;
  }
  /// Malformed/torn lines (and whole headerless segments) skipped at open.
  [[nodiscard]] std::uint64_t quarantinedLines() const noexcept {
    return quarantined_;
  }

 private:
  void loadSegment(const std::string& path);
  bool openOwnSegment();  // under mutex_

  std::string dir_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Value> map_;
  std::ofstream out_;
  bool writerFailed_ = false;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t loaded_ = 0;
  std::uint64_t quarantined_ = 0;
};

}  // namespace fepia::sweep
