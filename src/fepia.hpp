// Umbrella header for the fepia library.
//
// fepia implements the FePIA robustness-metric procedure (Ali et al.,
// IEEE TPDS 2004) and its extension to perturbation parameters of
// multiple kinds (Eslamnour & Ali, IPDPS 2005): robustness radii as
// nearest-boundary distances, min-aggregation into rho, and the
// sensitivity-weighted and normalized-by-original P-space merge schemes.
//
// Typical entry points:
//   radius::FepiaProblem        — the four-step pipeline facade
//   radius::MergedAnalysis      — multi-kind (P-space) analysis
//   alloc::makespanProblem      — the makespan case study of [2]
//   hiperd::makeReferenceSystem — the HiPer-D case study topology
//   des::simulatePipeline       — empirical validation of the metric
#pragma once

#include "ad/dual.hpp"
#include "ad/gradient.hpp"
#include "alloc/allocation.hpp"
#include "alloc/heuristics.hpp"
#include "alloc/robustness.hpp"
#include "alloc/eval_engine.hpp"
#include "alloc/failure.hpp"
#include "alloc/genetic.hpp"
#include "alloc/search.hpp"
#include "classify/block_classifier.hpp"
#include "des/pipeline.hpp"
#include "des/simulator.hpp"
#include "etc/etc.hpp"
#include "fault/degraded.hpp"
#include "fault/plan.hpp"
#include "feature/feature.hpp"
#include "feature/generic.hpp"
#include "feature/linear.hpp"
#include "feature/quadratic.hpp"
#include "feature/transform.hpp"
#include "hiperd/factory.hpp"
#include "hiperd/system.hpp"
#include "io/problem_io.hpp"
#include "io/system_io.hpp"
#include "la/cholesky.hpp"
#include "la/geometry.hpp"
#include "la/point_block.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/qr.hpp"
#include "la/vector.hpp"
#include "opt/boundary.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/penalty.hpp"
#include "opt/scalar.hpp"
#include "perturb/parameter.hpp"
#include "parallel/thread_pool.hpp"
#include "perturb/space.hpp"
#include "radius/closed_forms.hpp"
#include "radius/diagnostics.hpp"
#include "radius/mahalanobis.hpp"
#include "radius/parallel_rho.hpp"
#include "radius/engine.hpp"
#include "radius/fepia.hpp"
#include "radius/merge.hpp"
#include "radius/rho.hpp"
#include "report/table.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "sweep/engine.hpp"
#include "sweep/journal.hpp"
#include "sweep/output.hpp"
#include "sweep/spec.hpp"
#include "trace/counters.hpp"
#include "trace/trace.hpp"
#include "stats/histogram.hpp"
#include "units/unit.hpp"
#include "validate/empirical.hpp"
#include "validate/report.hpp"
#include "validate/scheme.hpp"
