// fepiad wire protocol: length-prefixed JSON frames over a stream
// socket, plus the small hand-rolled JSON reader the server uses to
// decode requests (the repo's obs/json.hpp only *writes* and
// syntax-checks JSON; nothing else in the tree parses it).
//
// Framing: every message is a 4-byte big-endian payload length followed
// by exactly that many bytes of UTF-8 JSON. The prefix makes message
// boundaries explicit — a reader never has to parse JSON incrementally
// off a socket — and gives the server a cheap admission check: a frame
// whose declared length exceeds the configured cap is rejected before a
// single payload byte is read.
//
// Requests:  {"id": <any>, "kind": "radius|validate|fault-sim|sweep|
//             ping|stats|shutdown", "args": ["--samples","64",...],
//             "deadline_ms": N?, "stream": bool?, "sleep_ms": N?}
// Success:   {"id": <echo>, "ok": true, "exit": N,
//             "output": "<stdout bytes>", "json": "<--json bytes>"|null}
// Error:     {"id": <echo>, "ok": false, "error": {"code":
//             "bad_frame|bad_request|overloaded|deadline|failed|
//              shutting_down", "message": "..."}}
// Progress:  {"id": <echo>, "type": "progress", "event": {<one
//             telemetry JSONL record, embedded verbatim>}}
//
// The JSON reader is deliberately small: UTF-8 passthrough, \uXXXX
// decoded to UTF-8 (surrogate pairs included), numbers via
// std::from_chars (locale-immune, round-trip exact), objects kept as
// insertion-ordered key/value vectors, recursion capped at kMaxDepth.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace fepia::server {

// ---------------------------------------------------------------------
// JSON values.

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Insertion-ordered object (request objects are tiny; linear lookup).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  JsonArray array;
  JsonObject object;

  [[nodiscard]] bool isNull() const noexcept { return kind == Kind::Null; }
  [[nodiscard]] bool isString() const noexcept {
    return kind == Kind::String;
  }
  [[nodiscard]] bool isNumber() const noexcept {
    return kind == Kind::Number;
  }
  [[nodiscard]] bool isObject() const noexcept {
    return kind == Kind::Object;
  }
  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected). On failure returns nullopt and, when
/// `error` is non-null, a one-line diagnostic.
[[nodiscard]] std::optional<JsonValue> parseJson(const std::string& text,
                                                 std::string* error = nullptr);

/// Serializes a value back to compact JSON (numbers in the repo's
/// %.17g round-trip form, non-finite numbers as null). Used to echo
/// request ids verbatim into responses.
[[nodiscard]] std::string serializeJson(const JsonValue& value);

// ---------------------------------------------------------------------
// Framing over file descriptors.

/// Hard ceiling a server will accept unless configured lower.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;  // 4 MiB

enum class FrameStatus {
  Ok,         ///< payload holds a complete frame
  Eof,        ///< clean EOF on a frame boundary
  Truncated,  ///< EOF mid-prefix or mid-payload
  Oversized,  ///< declared length exceeds the cap (stream unusable)
  IoError,    ///< read(2) failed
};

struct Frame {
  FrameStatus status = FrameStatus::Eof;
  std::string payload;               ///< valid when status == Ok
  std::uint32_t declaredBytes = 0;   ///< prefix value (set for Oversized)
};

/// Reads one frame, blocking until it is complete or the stream ends.
[[nodiscard]] Frame readFrame(int fd, std::size_t maxBytes);

/// Writes `payload` as one frame (prefix + body, full write, SIGPIPE
/// suppressed). Returns false on any write failure.
[[nodiscard]] bool writeFrame(int fd, const std::string& payload);

/// Prepends the 4-byte big-endian prefix — exposed so tests can forge
/// deliberately broken frames next to well-formed ones.
[[nodiscard]] std::string encodeFrame(const std::string& payload);

/// Connects to 127.0.0.1:port; returns the fd or -1. The loopback-only
/// client used by the tests, the bench load generator and ci.sh.
[[nodiscard]] int connectLoopback(std::uint16_t port);

/// Connects to host:port (numeric IPv4 or a resolvable name); returns
/// the fd or -1. The distributed sweep worker's client side.
[[nodiscard]] int connectHost(const std::string& host, std::uint16_t port);

}  // namespace fepia::server
