// Distributed sweep: coordinator/worker shard leasing over the fepiad
// wire protocol.
//
// `fepia_cli sweep --serve HOST:PORT` runs a SweepCoordinator: it owns
// the surface slots, the shard lease table (sweep::LeaseTable) and the
// hexfloat journal as the durable commit log, and serves pull-based
// workers over the same 4-byte length-prefixed JSON frames fepiad
// speaks (server/wire). `fepia_cli sweep --worker HOST:PORT` runs
// runSweepWorker: connect, verify the spec hash, then lease shards,
// compute them through the registry-dispatched engine
// (sweep::evaluatePointRange) and stream the results back until the
// coordinator reports the sweep drained.
//
// Wire kinds (all requests carry {"kind": ...}; replies carry
// {"ok": true, ...} or {"ok": false, "error": {"code", "message"}}):
//
//   hello      {spec_hash, points, worker}  -> {kind:"welcome",
//              lease_ms} — refused with code "spec_mismatch" when the
//              worker's spec (or grid size) differs from the
//              coordinator's: a lease must never be computed against a
//              different sweep.
//   lease      {worker} -> {kind:"lease", shard, first, count,
//              generation, stolen} | {kind:"wait", retry_ms} |
//              {kind:"drained"}
//   commit     {worker, shard, results: [[id, analytic, closed,
//              empirical, degraded, makespan, classifications], ...]
//              (doubles as exact hexfloat strings, counts as decimal
//              strings)} -> {committed: bool} — false marks a
//              duplicate (a stolen or reissued shard that lost the
//              race); the coordinator keeps the first commit only, so
//              stealing never changes a bit.
//   heartbeat  {worker, shard} -> {} — renews the lease; sent on a
//              second connection so a long-running shard's heartbeats
//              never interleave with the compute connection's frames.
//   done       {worker} -> {} — the worker drained and is leaving.
//
// Determinism: every result double crosses the wire in the journal's
// exact hexfloat form, lands in its preallocated index slot, and the
// final reduction runs in index order — so the surface is byte-
// identical to the single-process sweep regardless of worker count,
// arrival order, steals, reissues or worker deaths (proved by
// tests/sweep_distributed_test.cpp and the tools/ci.sh smokes).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "server/wire.hpp"
#include "sweep/engine.hpp"
#include "sweep/spec.hpp"

namespace fepia::server {

/// Coordinator knobs.
struct DistSweepConfig {
  std::string bindAddress = "127.0.0.1";
  std::uint16_t port = 0;           ///< 0 = ephemeral
  std::size_t chunkOverride = 0;    ///< overrides the spec's shard size
  double leaseSeconds = 10.0;       ///< lease expiry (and heartbeat renewal)
  double stealAfterSeconds = 0.0;   ///< <= 0: leaseSeconds / 2
  std::string journalPath;          ///< durable commit log; empty disables
  bool resume = false;              ///< replay journalPath's committed shards
  /// Abort (std::runtime_error from wait()) when no shard commits for
  /// this long while work remains — the CI harness's guard against a
  /// sweep whose workers all died. <= 0 waits forever.
  double drainTimeoutSeconds = 0.0;
  obs::Registry* metrics = nullptr;
  obs::TelemetryHub* telemetry = nullptr;
  /// Coordinator event log (lease grants, reissues, steals, worker
  /// arrivals/losses) — the CLI passes its stdout; nullptr is silent.
  std::ostream* log = nullptr;
  std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
};

/// The coordinator: bind/listen on construction via start(), then
/// wait() blocks until every shard is committed and returns the reduced
/// surface. One reader thread per worker connection; all shared state
/// (lease table, result slots, journal writer) is serialized under one
/// mutex — commits are tiny compared to shard compute times.
class SweepCoordinator {
 public:
  SweepCoordinator(sweep::SweepSpec spec, DistSweepConfig cfg);
  /// Joins every thread; a coordinator destroyed before completion
  /// aborts its connections.
  ~SweepCoordinator();

  SweepCoordinator(const SweepCoordinator&) = delete;
  SweepCoordinator& operator=(const SweepCoordinator&) = delete;

  /// Binds and starts accepting workers. False (with *error set) on
  /// bind/listen failure. Throws std::runtime_error on a journal that
  /// cannot be opened or resumed.
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// The bound port (after start(); useful with port = 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks until all shards are committed, then closes up shop and
  /// returns the surface — byte-identical to runSweep on the same spec.
  /// Throws std::runtime_error when drainTimeoutSeconds elapses with no
  /// commit while work remains.
  [[nodiscard]] sweep::SweepSurface wait();

  struct Stats {
    std::size_t workersSeen = 0;       ///< distinct worker names hello'd
    std::uint64_t commits = 0;         ///< first commits accepted
    std::uint64_t duplicateCommits = 0;
    std::uint64_t reissues = 0;
    std::uint64_t steals = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
};

/// Worker knobs.
struct SweepWorkerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name;             ///< empty: "worker-<pid>"
  std::string cacheDir;         ///< shared persistent estimate cache
  std::string backendOverride;  ///< forwarded to the engine (--backend)
  bool cacheEnabled = true;
  obs::Registry* metrics = nullptr;
  obs::TelemetryHub* telemetry = nullptr;
  std::ostream* log = nullptr;  ///< per-lease progress lines; nullptr silent
  std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
  /// Connect retries (the coordinator may still be binding when a
  /// worker launches); 100 ms apart.
  int connectAttempts = 50;
};

/// What a worker did.
struct SweepWorkerReport {
  std::size_t shardsComputed = 0;
  std::size_t pointsComputed = 0;
  std::uint64_t duplicateCommits = 0;  ///< lost steal/reissue races
  std::uint64_t persistentHits = 0;
  std::uint64_t persistentMisses = 0;
  double wallSeconds = 0.0;
};

/// Pull-based worker loop: lease, compute, commit, until drained.
/// Throws std::runtime_error on connect failure or a coordinator
/// refusal (spec-hash mismatch included).
[[nodiscard]] SweepWorkerReport runSweepWorker(const sweep::SweepSpec& spec,
                                               const SweepWorkerConfig& cfg);

}  // namespace fepia::server
