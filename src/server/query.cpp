// Implementation notes: these four runners are the former mode bodies
// of tools/fepia_cli.cpp, moved here wholesale so the CLI and fepiad
// share them. Behavior-preserving transcription rules: std::cout became
// the `out` parameter, the g_obs globals became QueryContext fields,
// `return usage(argv[0])` became `throw UsageError(...)`, and the
// "error: cannot write" early-returns became std::runtime_error with
// the same message (the CLI's catch prints the identical line). Any
// intentional behavior change belongs in *both* front ends by
// construction — make it here.
#include "server/query.hpp"

#include <atomic>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "des/pipeline.hpp"
#include "fault/degraded.hpp"
#include "fault/plan.hpp"
#include "hiperd/factory.hpp"
#include "io/parse.hpp"
#include "io/problem_io.hpp"
#include "io/system_io.hpp"
#include "obs/clock.hpp"
#include "radius/registry/scheduler.hpp"
#include "server/dist_sweep.hpp"
#include "server/session_cache.hpp"
#include "sweep/engine.hpp"
#include "sweep/output.hpp"
#include "sweep/spec.hpp"
#include "validate/empirical.hpp"
#include "validate/scheme.hpp"

namespace fepia::server {
namespace {

/// Resolves the compute pool for one invocation: a shared long-lived
/// pool wins (server), else --threads creates a per-invocation pool
/// (CLI), else everything runs serially. Results are bit-identical in
/// all three cases; only the wall clock differs.
struct PoolHandle {
  parallel::ThreadPool* pool = nullptr;
  std::unique_ptr<parallel::ThreadPool> owned;
};

PoolHandle makePool(QueryContext& ctx,
                    const std::optional<std::size_t>& threads) {
  PoolHandle h;
  if (ctx.sharedPool != nullptr) {
    h.pool = ctx.sharedPool;
    return h;
  }
  if (threads.has_value()) {
    h.owned = std::make_unique<parallel::ThreadPool>(*threads);
    h.pool = h.owned.get();
  }
  return h;
}

std::shared_ptr<const radius::FepiaProblem> loadProblemHandle(
    QueryContext& ctx, const std::string& path) {
  if (ctx.cache != nullptr) return ctx.cache->problem(path);
  return std::make_shared<const radius::FepiaProblem>(io::loadProblem(path));
}

std::shared_ptr<const hiperd::ReferenceSystem> loadSystemHandle(
    QueryContext& ctx, const std::string& path) {
  if (ctx.cache != nullptr) return ctx.cache->system(path);
  return std::make_shared<const hiperd::ReferenceSystem>(
      io::loadSystem(path));
}

/// Stores the captured JSON document into the result and, when a --json
/// path was given, writes it to disk (failure keeps the CLI's exact
/// "cannot write '<path>'" diagnostic via the dispatch-level catch).
void finishJson(QueryResult& result, const std::string& jsonPath,
                const std::string& doc) {
  result.hasJson = true;
  result.json = doc;
  if (jsonPath.empty()) return;
  std::ofstream file(jsonPath);
  if (!file) {
    throw std::runtime_error("cannot write '" + jsonPath + "'");
  }
  file << doc;
}

la::Vector parseValueList(const std::string& csv) {
  la::Vector out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(argDouble("--check", item));
  }
  return out;
}

/// Splits a colon-separated flag value ("3:12.5:1" -> {"3","12.5","1"}).
std::vector<std::string> splitColons(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ':')) out.push_back(item);
  return out;
}

[[noreturn]] void badSpec(const char* flag, const std::string& value,
                          const char* expected) {
  throw std::invalid_argument(std::string("bad value for ") + flag + ": '" +
                              value + "' (expected " + expected + ")");
}

/// "HOST:PORT" for --serve/--worker. Port 0 is allowed (--serve binds
/// an ephemeral port and prints it); an empty host means loopback.
std::pair<std::string, std::uint16_t> parseHostPort(const char* flag,
                                                    const std::string& value) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon + 1 == value.size()) {
    badSpec(flag, value, "HOST:PORT");
  }
  const std::string host =
      colon == 0 ? std::string("127.0.0.1") : value.substr(0, colon);
  const std::size_t port = argSize(flag, value.substr(colon + 1));
  if (port > 65535) badSpec(flag, value, "a port in [0, 65535]");
  return {host, static_cast<std::uint16_t>(port)};
}

/// Prints one scheme/region validation block and collects its rows for
/// the JSON report. Returns the number of rows whose analytic radius
/// missed the empirical CI.
std::size_t emitValidation(std::ostream& out, const std::string& heading,
                           std::vector<validate::Comparison> rows, bool csv,
                           std::vector<validate::Comparison>& jsonRows) {
  out << heading << "\n";
  emitTable(out, validate::comparisonTable(rows), csv);
  std::size_t misses = 0;
  for (validate::Comparison& row : rows) {
    if (!row.analyticWithinCI) ++misses;
    row.label = heading + ": " + row.label;
    jsonRows.push_back(std::move(row));
  }
  return misses;
}

}  // namespace

double argDouble(const char* flag, const std::string& value) {
  const std::optional<double> v = io::parseFiniteDouble(value);
  if (!v.has_value()) {
    throw std::invalid_argument(std::string("bad value for ") + flag + ": '" +
                                value + "' (expected a finite number)");
  }
  return *v;
}

std::uint64_t argUint(const char* flag, const std::string& value) {
  const std::optional<std::uint64_t> v = io::parseUint64(value);
  if (!v.has_value()) {
    throw std::invalid_argument(std::string("bad value for ") + flag + ": '" +
                                value + "' (expected an unsigned integer)");
  }
  return *v;
}

std::size_t argSize(const char* flag, const std::string& value) {
  return static_cast<std::size_t>(argUint(flag, value));
}

void emitTable(std::ostream& out, const report::Table& table, bool csv) {
  if (csv) {
    table.printCsv(out);
  } else {
    table.print(out);
  }
  out << '\n';
}

std::string jsonNum(double x) {
  if (!std::isfinite(x)) return "null";
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(17);
  os << x;
  return os.str();
}

void printMerged(std::ostream& out, const radius::FepiaProblem& problem,
                 radius::MergeScheme scheme, bool csv, obs::Registry* metrics,
                 const std::string& backendOverride) {
  namespace rb = radius::backend;
  rb::RadiusProblem rp;
  rp.problem = &problem;
  rp.scheme = scheme;
  rb::RadiusRequest req;
  req.backendOverride = backendOverride;
  req.metrics = metrics;
  const rb::RadiusOutcome outcome = rb::solveRadius(rp, req);
  out << "scheme: " << radius::mergeSchemeName(scheme) << "\n";
  if (outcome.merged != nullptr) {
    const auto& rep = *outcome.merged;
    report::Table table({"feature", "radius (P-space)", "bound side", "exact"});
    for (const auto& f : rep.features) {
      table.addRow({f.featureName, report::num(f.radius.radius, 8),
                    f.radius.side == radius::BoundSide::Max
                        ? "upper"
                        : (f.radius.side == radius::BoundSide::Min ? "lower"
                                                                   : "none"),
                    f.radius.exact ? "yes" : "no"});
    }
    emitTable(out, table, csv);
  }
  out << "rho = " << report::num(outcome.rho, 8) << "  (critical: "
      << outcome.criticalFeature << ")\n"
      << "backend: " << outcome.backendName << "\n\n";
}

QueryResult runRadiusQuery(const std::vector<std::string>& args,
                           std::ostream& out, QueryContext& ctx) {
  if (args.empty()) throw UsageError("missing problem file");
  const std::string& path = args[0];
  std::string schemeArg = "both";
  std::string backendArg;
  std::vector<la::Vector> checkPoint;
  bool csv = false;
  bool echo = false;

  const std::size_t n = args.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (args[i] == "--scheme" && i + 1 < n) {
      schemeArg = args[++i];
    } else if (args[i] == "--backend" && i + 1 < n) {
      backendArg = args[++i];
    } else if (args[i] == "--check" && i + 1 < n) {
      try {
        checkPoint.push_back(parseValueList(args[++i]));
      } catch (const std::exception&) {
        throw std::invalid_argument("bad --check value list");
      }
    } else if (args[i] == "--csv") {
      csv = true;
    } else if (args[i] == "--echo") {
      echo = true;
    } else {
      throw UsageError("unrecognized argument '" + args[i] + "'");
    }
  }
  if (schemeArg != "both" && schemeArg != "normalized" &&
      schemeArg != "sensitivity") {
    throw UsageError("bad --scheme value '" + schemeArg + "'");
  }

  const std::shared_ptr<const radius::FepiaProblem> handle =
      loadProblemHandle(ctx, path);
  const radius::FepiaProblem& problem = *handle;

  if (echo) {
    io::writeProblem(out, problem);
    out << '\n';
  }

  // Problem summary.
  report::Table kinds({"kind", "unit", "dim", "original values"});
  for (std::size_t j = 0; j < problem.space().kindCount(); ++j) {
    const auto& p = problem.space().kind(j);
    std::ostringstream vals;
    vals << p.original();
    kinds.addRow({p.name(), p.unit().str(), std::to_string(p.size()),
                  vals.str()});
  }
  emitTable(out, kinds, csv);

  // Per-kind radii (always legal, one kind at a time).
  report::Table perKind({"feature", "kind", "radius (kind units)"});
  for (std::size_t i = 0; i < problem.features().size(); ++i) {
    for (std::size_t j = 0; j < problem.space().kindCount(); ++j) {
      const radius::RadiusResult r = problem.singleKindRadius(i, j);
      perKind.addRow({problem.features()[i].feature->name(),
                      problem.space().kind(j).name(),
                      r.finite() ? report::num(r.radius, 8) : "inf"});
    }
  }
  emitTable(out, perKind, csv);

  if (schemeArg == "both" || schemeArg == "normalized") {
    printMerged(out, problem, radius::MergeScheme::NormalizedByOriginal, csv,
                ctx.registry, backendArg);
  }
  if (schemeArg == "both" || schemeArg == "sensitivity") {
    printMerged(out, problem, radius::MergeScheme::Sensitivity, csv,
                ctx.registry, backendArg);
  }

  QueryResult result;
  if (!checkPoint.empty()) {
    const radius::MergeScheme scheme =
        schemeArg == "sensitivity" ? radius::MergeScheme::Sensitivity
                                   : radius::MergeScheme::NormalizedByOriginal;
    const radius::ToleranceCheck check =
        problem.wouldTolerate(checkPoint, scheme);
    out << "operating point "
        << (check.tolerated ? "TOLERATED" : "NOT tolerated") << " under the "
        << radius::mergeSchemeName(scheme) << " scheme (worst margin "
        << report::num(check.worstMargin, 6) << ")\n";
    result.exitCode = check.tolerated ? 0 : 2;
  }
  return result;
}

QueryResult runValidateQuery(const std::vector<std::string>& args,
                             std::ostream& out, QueryContext& ctx) {
  std::string path;
  bool hiperd = false;
  bool des = false;
  bool csv = false;
  std::string schemeArg = "both";
  std::string jsonPath;
  std::string backendArg;
  std::optional<std::size_t> samples;
  std::optional<std::size_t> threads;
  validate::EstimatorOptions opts;

  const std::size_t n = args.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (args[i] == "--hiperd" && i + 1 < n) {
      hiperd = true;
      path = args[++i];
    } else if (args[i] == "--des") {
      des = true;
    } else if (args[i] == "--csv") {
      csv = true;
    } else if (args[i] == "--scheme" && i + 1 < n) {
      schemeArg = args[++i];
    } else if (args[i] == "--backend" && i + 1 < n) {
      backendArg = args[++i];
    } else if (args[i] == "--samples" && i + 1 < n) {
      samples = argSize("--samples", args[++i]);
    } else if (args[i] == "--seed" && i + 1 < n) {
      opts.seed = argUint("--seed", args[++i]);
    } else if (args[i] == "--threads" && i + 1 < n) {
      threads = argSize("--threads", args[++i]);
    } else if (args[i] == "--json" && i + 1 < n) {
      jsonPath = args[++i];
    } else if (path.empty() && (args[i].empty() || args[i][0] != '-')) {
      path = args[i];
    } else {
      throw UsageError("unrecognized argument '" + args[i] + "'");
    }
  }
  if (path.empty() || (des && !hiperd)) {
    throw UsageError("validate needs a problem file or --hiperd SYSTEM");
  }
  if (schemeArg != "both" && schemeArg != "normalized" &&
      schemeArg != "sensitivity") {
    throw UsageError("bad --scheme value '" + schemeArg + "'");
  }
  if (samples.has_value()) opts.directions = *samples;
  opts.metrics = ctx.registry;
  ctx.manifest->tool = "fepia_cli validate";
  ctx.manifest->seed = opts.seed;
  ctx.manifest->threads = threads.value_or(0);

  const PoolHandle pool = makePool(ctx, threads);

  // Live telemetry gauges: estimator probe counts as they accumulate,
  // plus pool occupancy when a pool exists.
  std::atomic<std::uint64_t> liveClassifications{0};
  opts.liveClassifications = &liveClassifications;
  const SourceGuard probeGauge(
      ctx.hub, [&liveClassifications](obs::Registry& reg) {
        reg.setGauge("validate.live_classifications",
                     static_cast<double>(liveClassifications.load(
                         std::memory_order_relaxed)));
      });
  const SourceGuard poolGauges(
      pool.pool != nullptr ? ctx.hub : nullptr,
      [p = pool.pool](obs::Registry& reg) { p->liveGauges(reg); });

  std::vector<validate::Comparison> jsonRows;
  std::size_t misses = 0;

  // Validation needs the cross-check rows, so the scheme solves pin the
  // empirical kernel unless the user forces another backend — in which
  // case the backend must still produce an empirical comparison.
  namespace rb = radius::backend;
  const auto validateScheme = [&](const radius::FepiaProblem& prob,
                                  radius::MergeScheme scheme) {
    rb::RadiusProblem rp;
    rp.problem = &prob;
    rp.scheme = scheme;
    rb::RadiusRequest req;
    req.backendOverride = backendArg.empty() ? "empirical" : backendArg;
    req.estimator = opts;
    req.metrics = ctx.registry;
    const rb::RadiusOutcome outcome = rb::solveRadius(rp, req, pool.pool);
    if (outcome.validation == nullptr) {
      throw std::runtime_error("radius backend '" + outcome.backendName +
                               "' does not produce an empirical comparison"
                               " (validate needs the empirical backend)");
    }
    return outcome.validation;
  };

  if (hiperd) {
    const std::shared_ptr<const hiperd::ReferenceSystem> refHandle =
        loadSystemHandle(ctx, path);
    const hiperd::ReferenceSystem& ref = *refHandle;
    const radius::FepiaProblem mixed =
        ref.system.executionMessageProblem(ref.qos);
    const std::shared_ptr<const validate::SchemeValidation> v =
        validateScheme(mixed, radius::MergeScheme::NormalizedByOriginal);
    misses +=
        emitValidation(out, "scheme: normalized", v->allRows(), csv, jsonRows);

    if (des) {
      // Classify the joint region by simulation: the shared degraded-mode
      // machinery with no fault scenarios is exactly the DES cross-check
      // (map each normalized P-space probe back to an (execution times ⋆
      // message sizes) operating point, run the queueing model against
      // the QoS) — `fault-sim --no-faults` reproduces this bit-for-bit.
      rb::RadiusProblem rp;
      rp.system = &ref;
      rp.desClassification = true;
      rb::RadiusRequest req;
      req.backendOverride = backendArg;  // empty: scheduler picks degraded
      req.estimator = opts;
      req.degraded.explicitDirections = samples.has_value();
      req.metrics = ctx.registry;
      const rb::RadiusOutcome outcome = rb::solveRadius(rp, req, pool.pool);
      if (outcome.degraded == nullptr) {
        throw std::runtime_error("radius backend '" + outcome.backendName +
                                 "' does not produce a DES estimate");
      }
      const fault::DegradedEstimate& d = *outcome.degraded;
      // The DES adds queueing on top of the analytic stage-time model,
      // so its region is a subset and the estimate legitimately comes in
      // below rho: report the row but keep it out of the verdict.
      emitValidation(
          out,
          "DES joint region (informational; queueing shrinks the region)",
          {validate::compare("simulated vs analytic rho", d.analyticRho,
                             d.degraded)},
          csv, jsonRows);
    }
  } else {
    const std::shared_ptr<const radius::FepiaProblem> handle =
        loadProblemHandle(ctx, path);
    const radius::FepiaProblem& problem = *handle;
    if (schemeArg == "both" || schemeArg == "normalized") {
      const std::shared_ptr<const validate::SchemeValidation> v =
          validateScheme(problem, radius::MergeScheme::NormalizedByOriginal);
      misses += emitValidation(out, "scheme: normalized", v->allRows(), csv,
                               jsonRows);
    }
    if (schemeArg == "both" || schemeArg == "sensitivity") {
      const std::shared_ptr<const validate::SchemeValidation> v =
          validateScheme(problem, radius::MergeScheme::Sensitivity);
      misses += emitValidation(out, "scheme: sensitivity", v->allRows(), csv,
                               jsonRows);
    }
  }

  if (pool.pool != nullptr) pool.pool->exportMetrics(*ctx.registry);

  QueryResult result;
  if (!jsonPath.empty() || ctx.captureJson) {
    ctx.manifest->wallSeconds = ctx.wall->elapsedSeconds();
    std::ostringstream doc;
    validate::writeComparisonJson(doc, jsonRows, ctx.manifest);
    finishJson(result, jsonPath, doc.str());
  }

  if (misses == 0) {
    out << "VALIDATED: every analytic radius lies in its empirical CI\n";
  } else {
    out << "DISAGREEMENT: " << misses << " row(s) outside the empirical CI\n";
  }
  result.exitCode = misses == 0 ? 0 : 2;
  return result;
}

QueryResult runFaultSimQuery(const std::vector<std::string>& args,
                             std::ostream& out, QueryContext& ctx) {
  std::string path;
  std::optional<std::size_t> samples;
  std::optional<std::size_t> threads;
  std::uint64_t seed = 0x5EEDD1CEull;
  std::size_t scenarios = 1;
  std::size_t generations = 200;
  bool noFaults = false;
  bool csv = false;
  std::string jsonPath;
  std::string backendArg;

  fault::FaultPlan explicitPlan;
  bool haveExplicit = false;
  std::optional<double> detect;
  std::optional<std::size_t> retries;

  const std::size_t n = args.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (args[i] == "--hiperd" && i + 1 < n) {
      path = args[++i];
    } else if (args[i] == "--samples" && i + 1 < n) {
      samples = argSize("--samples", args[++i]);
    } else if (args[i] == "--seed" && i + 1 < n) {
      seed = argUint("--seed", args[++i]);
    } else if (args[i] == "--threads" && i + 1 < n) {
      threads = argSize("--threads", args[++i]);
    } else if (args[i] == "--scenarios" && i + 1 < n) {
      scenarios = argSize("--scenarios", args[++i]);
    } else if (args[i] == "--gens" && i + 1 < n) {
      generations = argSize("--gens", args[++i]);
    } else if (args[i] == "--crash" && i + 1 < n) {
      const std::string& spec = args[++i];
      const auto parts = splitColons(spec);
      if (parts.size() != 2 && parts.size() != 3) {
        badSpec("--crash", spec, "MACHINE:TIME[:BACKUP]");
      }
      fault::MachineCrash c;
      c.machine = argSize("--crash", parts[0]);
      c.atSeconds = argDouble("--crash", parts[1]);
      if (parts.size() == 3) c.backup = argSize("--crash", parts[2]);
      explicitPlan.crashes.push_back(c);
      haveExplicit = true;
    } else if (args[i] == "--slow" && i + 1 < n) {
      const std::string& spec = args[++i];
      const auto parts = splitColons(spec);
      if (parts.size() != 5 || (parts[0] != "machine" && parts[0] != "link")) {
        badSpec("--slow", spec, "machine|link:INDEX:FROM:TO:FACTOR");
      }
      fault::Slowdown s;
      s.target = parts[0] == "machine" ? fault::Slowdown::Target::Machine
                                       : fault::Slowdown::Target::Link;
      s.index = argSize("--slow", parts[1]);
      s.fromSeconds = argDouble("--slow", parts[2]);
      s.toSeconds = argDouble("--slow", parts[3]);
      s.factor = argDouble("--slow", parts[4]);
      explicitPlan.slowdowns.push_back(s);
      haveExplicit = true;
    } else if (args[i] == "--loss" && i + 1 < n) {
      const std::string& spec = args[++i];
      const auto parts = splitColons(spec);
      if (parts.size() != 2) badSpec("--loss", spec, "LINK:PROBABILITY");
      fault::MessageLoss ml;
      ml.link = argSize("--loss", parts[0]);
      ml.probability = argDouble("--loss", parts[1]);
      explicitPlan.losses.push_back(ml);
      haveExplicit = true;
    } else if (args[i] == "--detect" && i + 1 < n) {
      detect = argDouble("--detect", args[++i]);
    } else if (args[i] == "--retries" && i + 1 < n) {
      retries = argSize("--retries", args[++i]);
    } else if (args[i] == "--no-faults") {
      noFaults = true;
    } else if (args[i] == "--backend" && i + 1 < n) {
      backendArg = args[++i];
    } else if (args[i] == "--csv") {
      csv = true;
    } else if (args[i] == "--json" && i + 1 < n) {
      jsonPath = args[++i];
    } else {
      throw UsageError("unrecognized argument '" + args[i] + "'");
    }
  }

  ctx.manifest->tool = "fepia_cli fault-sim";
  ctx.manifest->seed = seed;
  ctx.manifest->threads = threads.value_or(0);

  const std::shared_ptr<const hiperd::ReferenceSystem> refHandle =
      path.empty() ? std::make_shared<const hiperd::ReferenceSystem>(
                         hiperd::makeReferenceSystem())
                   : loadSystemHandle(ctx, path);
  const hiperd::ReferenceSystem& ref = *refHandle;

  // Assemble the scenario list: explicit flags define one plan;
  // otherwise --scenarios plans are sampled from per-scenario seeds
  // derived from --seed. --no-faults runs the fault-free cross-check
  // (identical to `validate --des`).
  std::vector<fault::FaultPlan> plans;
  if (!noFaults) {
    if (haveExplicit) {
      plans.push_back(explicitPlan);
    } else {
      rng::SplitMix64 mixer(seed ^ 0xFA017ull);
      fault::SamplerOptions sopts;
      for (std::size_t s = 0; s < scenarios; ++s) {
        plans.push_back(fault::samplePlan(ref.system, sopts, mixer.next()));
      }
    }
    for (fault::FaultPlan& plan : plans) {
      if (detect.has_value()) plan.policy.detectionTimeoutSeconds = *detect;
      if (retries.has_value()) plan.policy.maxRetries = *retries;
      plan.validateAgainst(ref.system);
    }
  }

  const PoolHandle pool = makePool(ctx, threads);

  validate::EstimatorOptions est;
  est.seed = seed;
  if (samples.has_value()) est.directions = *samples;
  est.metrics = ctx.registry;
  fault::DegradedOptions dopts;
  dopts.generations = generations;
  dopts.explicitDirections = samples.has_value();

  // Live telemetry gauges: DES classification progress and the fault
  // retry/drop totals (the sampler derives rates from the series).
  std::atomic<std::uint64_t> liveClassifications{0};
  fault::LiveFaultStats liveFaults;
  est.liveClassifications = &liveClassifications;
  dopts.live = &liveFaults;
  const SourceGuard faultGauges(
      ctx.hub, [&liveClassifications, &liveFaults](obs::Registry& reg) {
        reg.setGauge("validate.live_classifications",
                     static_cast<double>(liveClassifications.load(
                         std::memory_order_relaxed)));
        reg.setGauge("fault.live_classifications",
                     static_cast<double>(liveFaults.classifications.load(
                         std::memory_order_relaxed)));
        reg.setGauge("fault.live_retries",
                     static_cast<double>(liveFaults.retries.load(
                         std::memory_order_relaxed)));
        reg.setGauge("fault.live_dropped",
                     static_cast<double>(liveFaults.droppedMessages.load(
                         std::memory_order_relaxed)));
      });
  const SourceGuard poolGauges(
      pool.pool != nullptr ? ctx.hub : nullptr,
      [p = pool.pool](obs::Registry& reg) { p->liveGauges(reg); });

  // Route through the backend registry: the degraded kernel forwards
  // these options verbatim to fault::estimateDegradedRadius, so the
  // results are bit-identical to the direct call; --backend surfaces an
  // incapability diagnostic for any kernel that cannot honor a
  // fault-scenario problem.
  namespace rb = radius::backend;
  rb::RadiusProblem rp;
  rp.system = &ref;
  rp.scenarios = plans;
  rp.desClassification = true;
  rb::RadiusRequest req;
  req.backendOverride = backendArg;
  req.estimator = est;
  req.degraded = dopts;
  req.metrics = ctx.registry;
  const rb::RadiusOutcome outcome = rb::solveRadius(rp, req, pool.pool);
  if (outcome.degraded == nullptr) {
    throw std::runtime_error("radius backend '" + outcome.backendName +
                             "' does not produce a degraded-mode estimate");
  }
  const fault::DegradedEstimate& d = *outcome.degraded;

  const hiperd::System& sys = ref.system;
  out << "HiPer-D system: " << sys.machineCount() << " machines, "
      << sys.linkCount() << " links, " << sys.applicationCount() << " apps, "
      << sys.messageCount() << " messages\n";
  std::size_t crashes = 0, slowdowns = 0, losses = 0;
  for (const fault::FaultPlan& p : plans) {
    crashes += p.crashes.size();
    slowdowns += p.slowdowns.size();
    losses += p.losses.size();
  }
  out << "fault scenarios: " << plans.size() << " (" << crashes
      << " crash(es), " << slowdowns << " slowdown(s), " << losses
      << " loss rate(s))\n\n";

  const des::FaultCounters& fc = d.nominal.faults;
  report::Table counters({"counter", "value"});
  counters.addRow({"failovers", std::to_string(fc.failovers)});
  counters.addRow({"lost messages", std::to_string(fc.lostMessages)});
  counters.addRow({"retries", std::to_string(fc.retries)});
  counters.addRow({"dropped messages", std::to_string(fc.droppedMessages)});
  counters.addRow({"unrecovered jobs", std::to_string(fc.unrecoveredJobs)});
  counters.addRow({"downtime (s)", report::num(fc.downtimeSeconds, 6)});
  counters.addRow({"backoff wait (s)", report::num(fc.backoffWaitSeconds, 6)});
  out << "nominal run (scenario 0 at the operating point): QoS "
      << (d.nominalSatisfies ? "satisfied" : "VIOLATED") << "\n";
  emitTable(out, counters, csv);

  report::Table radii({"quantity", "value"});
  radii.addRow({"backend", outcome.backendName});
  radii.addRow({"analytic rho (" + d.criticalFeature + ")",
                report::num(d.analyticRho, 8)});
  radii.addRow({"degraded empirical radius",
                d.degraded.finite() ? report::num(d.degraded.radius, 8)
                                    : "inf"});
  radii.addRow({"CI", "[" + report::num(d.degraded.ci.lo, 8) + ", " +
                          report::num(d.degraded.ci.hi, 8) + "]"});
  radii.addRow({"directions", std::to_string(d.degraded.directions)});
  radii.addRow({"boundary hits", std::to_string(d.degraded.boundaryHits)});
  radii.addRow({"classifications", std::to_string(d.degraded.classifications)});
  emitTable(out, radii, csv);

  if (pool.pool != nullptr) pool.pool->exportMetrics(*ctx.registry);

  QueryResult result;
  if (!jsonPath.empty() || ctx.captureJson) {
    ctx.manifest->wallSeconds = ctx.wall->elapsedSeconds();
    std::ostringstream js;
    js << "{\n  \"manifest\": ";
    ctx.manifest->writeJson(js);
    js << ",\n  \"config\": {\"seed\": " << seed << ", \"threads\": "
       << (threads.has_value() ? std::to_string(*threads) : "null")
       << ", \"scenarios\": " << plans.size() << ", \"generations\": "
       << generations << "},\n  \"plan\": {\n    \"crashes\": [";
    const fault::FaultPlan* p0 = plans.empty() ? nullptr : &plans.front();
    if (p0 != nullptr) {
      for (std::size_t i = 0; i < p0->crashes.size(); ++i) {
        const fault::MachineCrash& c = p0->crashes[i];
        js << (i ? ", " : "") << "{\"machine\": " << c.machine
           << ", \"at_seconds\": " << jsonNum(c.atSeconds) << ", \"backup\": "
           << (c.backup.has_value() ? std::to_string(*c.backup) : "null")
           << "}";
      }
    }
    js << "],\n    \"slowdowns\": [";
    if (p0 != nullptr) {
      for (std::size_t i = 0; i < p0->slowdowns.size(); ++i) {
        const fault::Slowdown& s = p0->slowdowns[i];
        js << (i ? ", " : "") << "{\"target\": \""
           << (s.target == fault::Slowdown::Target::Machine ? "machine"
                                                            : "link")
           << "\", \"index\": " << s.index << ", \"from_seconds\": "
           << jsonNum(s.fromSeconds) << ", \"to_seconds\": "
           << jsonNum(s.toSeconds) << ", \"factor\": " << jsonNum(s.factor)
           << "}";
      }
    }
    js << "],\n    \"losses\": [";
    if (p0 != nullptr) {
      for (std::size_t i = 0; i < p0->losses.size(); ++i) {
        js << (i ? ", " : "") << "{\"link\": " << p0->losses[i].link
           << ", \"probability\": " << jsonNum(p0->losses[i].probability)
           << "}";
      }
    }
    js << "]\n  },\n  \"nominal\": {\"satisfies\": "
       << (d.nominalSatisfies ? "true" : "false")
       << ", \"max_observed_latency\": " << jsonNum(d.nominal.maxObservedLatency)
       << ", \"throughput_sustained\": "
       << (d.nominal.throughputSustained ? "true" : "false")
       << ", \"incomplete_observations\": " << d.nominal.incompleteObservations
       << ",\n    \"counters\": {\"failovers\": " << fc.failovers
       << ", \"lost_messages\": " << fc.lostMessages << ", \"retries\": "
       << fc.retries << ", \"dropped_messages\": " << fc.droppedMessages
       << ", \"unrecovered_jobs\": " << fc.unrecoveredJobs
       << ", \"downtime_seconds\": " << jsonNum(fc.downtimeSeconds)
       << ", \"backoff_wait_seconds\": " << jsonNum(fc.backoffWaitSeconds)
       << "}},\n  \"degraded\": {\"radius\": " << jsonNum(d.degraded.radius)
       << ", \"ci_lo\": " << jsonNum(d.degraded.ci.lo) << ", \"ci_hi\": "
       << jsonNum(d.degraded.ci.hi) << ", \"directions\": "
       << d.degraded.directions << ", \"boundary_hits\": "
       << d.degraded.boundaryHits << ", \"classifications\": "
       << d.degraded.classifications << "},\n  \"analytic\": {\"rho\": "
       << jsonNum(d.analyticRho) << ", \"critical_feature\": \""
       << d.criticalFeature << "\"}\n}\n";
    finishJson(result, jsonPath, js.str());
  }
  result.exitCode = d.nominalSatisfies ? 0 : 2;
  return result;
}

QueryResult runSweepQuery(const std::vector<std::string>& args,
                          std::ostream& out, QueryContext& ctx) {
  if (args.empty() || (!args[0].empty() && args[0][0] == '-')) {
    throw UsageError("sweep needs a spec file operand");
  }
  const std::string& specPath = args[0];
  std::optional<std::size_t> threads;
  sweep::SweepOptions opts;
  std::string responseAxis;
  bool csv = false;
  std::string jsonPath;
  std::optional<std::string> serveTarget;
  std::optional<std::string> workerTarget;
  std::optional<double> leaseMs;
  std::optional<double> drainTimeout;
  std::string workerName;

  const std::size_t n = args.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (args[i] == "--threads" && i + 1 < n) {
      threads = argSize("--threads", args[++i]);
    } else if (args[i] == "--chunk" && i + 1 < n) {
      opts.chunkOverride = argSize("--chunk", args[++i]);
      if (opts.chunkOverride == 0) {
        throw std::invalid_argument("bad value for --chunk: '0' (expected a "
                                    "positive integer)");
      }
    } else if (args[i] == "--journal" && i + 1 < n) {
      opts.journalPath = args[++i];
    } else if (args[i] == "--resume") {
      opts.resume = true;
    } else if (args[i] == "--stop-after" && i + 1 < n) {
      opts.stopAfterShards = argSize("--stop-after", args[++i]);
      if (opts.stopAfterShards == 0) {
        throw std::invalid_argument("bad value for --stop-after: '0' "
                                    "(expected a positive integer)");
      }
    } else if (args[i] == "--no-cache") {
      opts.cacheEnabled = false;
    } else if (args[i] == "--backend" && i + 1 < n) {
      opts.backendOverride = args[++i];
    } else if (args[i] == "--response" && i + 1 < n) {
      responseAxis = args[++i];
    } else if (args[i] == "--progress") {
      opts.progress = true;
    } else if (args[i] == "--csv") {
      csv = true;
    } else if (args[i] == "--json" && i + 1 < n) {
      jsonPath = args[++i];
    } else if (args[i] == "--cache-dir" && i + 1 < n) {
      opts.cacheDir = args[++i];
    } else if (args[i] == "--serve" && i + 1 < n) {
      serveTarget = args[++i];
    } else if (args[i] == "--worker" && i + 1 < n) {
      workerTarget = args[++i];
    } else if (args[i] == "--lease-ms" && i + 1 < n) {
      leaseMs = argDouble("--lease-ms", args[++i]);
      if (*leaseMs <= 0.0) {
        throw std::invalid_argument("bad value for --lease-ms: '" + args[i] +
                                    "' (expected a positive duration)");
      }
    } else if (args[i] == "--drain-timeout" && i + 1 < n) {
      drainTimeout = argDouble("--drain-timeout", args[++i]);
    } else if (args[i] == "--worker-name" && i + 1 < n) {
      workerName = args[++i];
    } else {
      throw UsageError("unrecognized argument '" + args[i] + "'");
    }
  }

  if (serveTarget.has_value() && workerTarget.has_value()) {
    throw UsageError("--serve and --worker are mutually exclusive");
  }
  if (serveTarget.has_value()) {
    // The coordinator never computes: compute-side knobs belong on the
    // workers, and refusing them beats silently ignoring them.
    if (threads.has_value()) throw UsageError("--serve ignores --threads");
    if (opts.stopAfterShards != 0) {
      throw UsageError("--stop-after is not supported with --serve");
    }
    if (!opts.cacheEnabled) {
      throw UsageError("--no-cache belongs on the workers, not --serve");
    }
    if (!opts.backendOverride.empty()) {
      throw UsageError("--backend belongs on the workers, not --serve");
    }
    if (!opts.cacheDir.empty()) {
      throw UsageError("--cache-dir belongs on the workers, not --serve");
    }
    if (opts.progress) {
      throw UsageError("--progress is not supported with --serve");
    }
    if (!workerName.empty()) throw UsageError("--worker-name needs --worker");
  } else if (workerTarget.has_value()) {
    // A worker computes what it is told and prints a report; it owns no
    // journal, no surface and no output tables.
    if (threads.has_value()) throw UsageError("--worker ignores --threads");
    if (opts.chunkOverride != 0) {
      throw UsageError("--chunk is the coordinator's call, not --worker's");
    }
    if (!opts.journalPath.empty() || opts.resume) {
      throw UsageError("--journal/--resume live on the coordinator");
    }
    if (opts.stopAfterShards != 0) {
      throw UsageError("--stop-after is not supported with --worker");
    }
    if (!responseAxis.empty() || csv || !jsonPath.empty()) {
      throw UsageError("--worker produces no surface output");
    }
    if (opts.progress) {
      throw UsageError("--progress is not supported with --worker");
    }
    if (leaseMs.has_value() || drainTimeout.has_value()) {
      throw UsageError("--lease-ms/--drain-timeout live on the coordinator");
    }
  } else if (leaseMs.has_value() || drainTimeout.has_value() ||
             !workerName.empty()) {
    throw UsageError(
        "--lease-ms/--drain-timeout/--worker-name need --serve or --worker");
  }

  const sweep::SweepSpec spec = sweep::loadSweepSpec(specPath);
  ctx.manifest->tool = "fepia_cli sweep";
  ctx.manifest->seed = spec.seed;
  ctx.manifest->threads = threads.value_or(0);

  QueryResult result;

  // Shared output tail: tables, summary, JSON document. Distributed and
  // in-process runs both funnel through this, so --serve's JSON is the
  // same writer on the same surface struct — byte-identity of the
  // distributed surface reduces to byte-identity of the struct.
  const auto emitSurface = [&](const sweep::SweepSurface& surface) {
    if (!surface.complete) {
      out << "sweep checkpointed after " << surface.computedShards
          << " shard(s): rerun with --resume to continue\n";
    } else {
      emitTable(out, sweep::surfaceTable(spec, surface), csv);
      if (!responseAxis.empty()) {
        emitTable(out, sweep::axisResponseTable(spec, surface, responseAxis),
                  csv);
      }
      const sweep::SurfaceSummary summary = sweep::summarize(surface);
      out << "analytic rho over " << summary.finitePoints
          << " finite point(s): [" << report::num(summary.rhoMin, 9) << ", "
          << report::num(summary.rhoMax, 9) << "]\n";
      if (spec.workload == sweep::Workload::Linear) {
        out << "worst |analytic - closed form| deviation: "
            << report::num(summary.worstClosedFormDeviation, 6) << "\n";
      }
    }
    if (!jsonPath.empty() || ctx.captureJson) {
      ctx.manifest->wallSeconds = ctx.wall->elapsedSeconds();
      std::ostringstream doc;
      sweep::writeSurfaceJson(doc, spec, surface, ctx.manifest);
      finishJson(result, jsonPath, doc.str());
      if (!jsonPath.empty()) out << "wrote " << jsonPath << "\n";
    }
  };

  if (workerTarget.has_value()) {
    const auto [host, port] = parseHostPort("--worker", *workerTarget);
    if (port == 0) badSpec("--worker", *workerTarget, "HOST:PORT");
    SweepWorkerConfig wc;
    wc.host = host;
    wc.port = port;
    wc.name = workerName;
    wc.cacheDir = opts.cacheDir;
    wc.backendOverride = opts.backendOverride;
    wc.cacheEnabled = opts.cacheEnabled;
    wc.metrics = ctx.registry;
    wc.telemetry = ctx.hub;
    wc.log = &out;
    const SweepWorkerReport rep = runSweepWorker(spec, wc);
    out << "sweep worker drained: " << rep.shardsComputed << " shard(s), "
        << rep.pointsComputed << " point(s), " << rep.duplicateCommits
        << " duplicate commit(s) in " << report::num(rep.wallSeconds, 4)
        << " s\n";
    if (!opts.cacheDir.empty() && opts.cacheEnabled) {
      out << "persistent cache: " << rep.persistentHits << " hit(s), "
          << rep.persistentMisses << " miss(es)\n";
    }
    return result;
  }

  if (serveTarget.has_value()) {
    const auto [host, port] = parseHostPort("--serve", *serveTarget);
    DistSweepConfig dc;
    dc.bindAddress = host;
    dc.port = port;
    dc.chunkOverride = opts.chunkOverride;
    if (leaseMs.has_value()) dc.leaseSeconds = *leaseMs / 1000.0;
    dc.journalPath = opts.journalPath;
    dc.resume = opts.resume;
    if (drainTimeout.has_value()) dc.drainTimeoutSeconds = *drainTimeout;
    dc.metrics = ctx.registry;
    dc.telemetry = ctx.hub;
    dc.log = &out;
    SweepCoordinator coordinator(spec, dc);
    std::string error;
    if (!coordinator.start(&error)) {
      throw std::runtime_error("sweep --serve: " + error);
    }
    // ci.sh scrapes this banner for the bound (possibly ephemeral) port.
    out << "fepia-sweep-coordinator listening on " << host << ":"
        << coordinator.port() << "\n";
    out.flush();
    const sweep::SweepSurface surface = coordinator.wait();
    const SweepCoordinator::Stats st = coordinator.stats();

    out << "sweep '" << spec.name << "' ("
        << sweep::workloadName(spec.workload) << "): " << surface.points
        << " points, " << surface.shards << " shards of " << surface.chunk
        << "\n"
        << "resumed " << surface.resumedShards << " shard(s), committed "
        << st.commits << " shard(s) from " << st.workersSeen
        << " worker(s) in " << report::num(surface.wallSeconds, 4) << " s ("
        << report::num(surface.pointsPerSec, 4) << " points/s)\n"
        << "leases: " << st.reissues << " reissue(s), " << st.steals
        << " steal(s), " << st.duplicateCommits << " duplicate commit(s); "
        << surface.classifications << " classification(s)\n\n";
    emitSurface(surface);
    return result;
  }

  opts.metrics = ctx.registry;
  opts.telemetry = ctx.hub;
  // The resident server's warm cache: content-keyed, so sharing it
  // across requests changes throughput only, never a surface byte.
  if (ctx.cache != nullptr) opts.sharedCache = &ctx.cache->sweepCache();

  const PoolHandle pool = makePool(ctx, threads);
  const SourceGuard poolGauges(
      pool.pool != nullptr ? ctx.hub : nullptr,
      [p = pool.pool](obs::Registry& reg) { p->liveGauges(reg); });

  const sweep::SweepSurface surface = sweep::runSweep(spec, opts, pool.pool);
  if (pool.pool != nullptr) pool.pool->exportMetrics(*ctx.registry);

  out << "sweep '" << spec.name << "' ("
      << sweep::workloadName(spec.workload) << "): " << surface.points
      << " points, " << surface.shards << " shards of " << surface.chunk
      << "\n"
      << "resumed " << surface.resumedShards << " shard(s), computed "
      << surface.computedShards << " shard(s) in "
      << report::num(surface.wallSeconds, 4) << " s ("
      << report::num(surface.pointsPerSec, 4) << " points/s)\n"
      << "cache: " << (surface.cacheEnabled ? "on" : "off") << ", "
      << surface.cacheHits << " hit(s), " << surface.cacheMisses
      << " miss(es); " << surface.classifications << " classification(s)";
  if (!opts.cacheDir.empty() && opts.cacheEnabled) {
    out << "\npersistent cache: " << surface.persistentHits << " hit(s), "
        << surface.persistentMisses << " miss(es)";
  }
  out << "\n\n";
  emitSurface(surface);
  return result;
}

}  // namespace fepia::server
