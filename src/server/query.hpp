// The four fepia query runners (radius, validate, fault-sim, sweep),
// extracted verbatim from tools/fepia_cli.cpp so the one-shot CLI and
// the resident fepiad server execute the *same code* — byte-identical
// responses by construction, not by parallel maintenance
// (tests/server_equivalence_test.cpp pins it).
//
// A runner takes the mode's argument tokens (everything after the
// subcommand word), the stream that plays the role of stdout, and a
// QueryContext bundling the per-invocation observability state the CLI
// used to keep in globals. It returns the process exit code the CLI
// would have produced plus, when a JSON report was requested (--json
// FILE or QueryContext::captureJson), the exact bytes of that report.
//
// Error contract: malformed/unknown arguments raise UsageError (the CLI
// maps it to its usage() text, the server to a typed bad_request);
// every other failure propagates as an ordinary exception whose what()
// is exactly the text the CLI prints after "error: ".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "radius/fepia.hpp"
#include "report/table.hpp"

namespace fepia::obs {
class Stopwatch;
}

namespace fepia::server {

class SessionCache;

/// Arguments the caller could not make sense of; carries a short reason
/// but the CLI prints its usual usage() text instead.
class UsageError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Per-invocation state a runner needs. The CLI fills it from its
/// process-wide observability globals; the server builds a fresh one
/// per request (own registry/manifest/stopwatch) around shared
/// long-lived pieces (thread pool, session cache).
struct QueryContext {
  obs::Registry* registry = nullptr;        ///< required: metrics sink
  obs::RunManifest* manifest = nullptr;     ///< required: stamped into JSON
  const obs::Stopwatch* wall = nullptr;     ///< required: wall_seconds
  obs::TelemetryHub* hub = nullptr;         ///< optional: live gauges/events
  /// Optional long-lived compute pool; when set it wins over --threads
  /// (results are bit-identical at any thread count, so only the wall
  /// clock can tell).
  parallel::ThreadPool* sharedPool = nullptr;
  /// Optional warm cache of parsed inputs + sweep sub-computations.
  SessionCache* cache = nullptr;
  /// Capture the --json document bytes even when no --json FILE was
  /// given (the server always wants them in the response).
  bool captureJson = false;
};

struct QueryResult {
  int exitCode = 0;
  bool hasJson = false;
  std::string json;  ///< exact bytes `--json FILE` writes, when captured
};

/// Default problem-file mode: `fepia_cli <file> [--scheme ...]
/// [--check ...] [--backend NAME] [--csv] [--echo]`. args[0] is the
/// problem path.
QueryResult runRadiusQuery(const std::vector<std::string>& args,
                           std::ostream& out, QueryContext& ctx);

/// `fepia_cli validate ...` — args are the tokens after "validate".
QueryResult runValidateQuery(const std::vector<std::string>& args,
                             std::ostream& out, QueryContext& ctx);

/// `fepia_cli fault-sim ...`.
QueryResult runFaultSimQuery(const std::vector<std::string>& args,
                             std::ostream& out, QueryContext& ctx);

/// `fepia_cli sweep <spec> ...`.
QueryResult runSweepQuery(const std::vector<std::string>& args,
                          std::ostream& out, QueryContext& ctx);

// ---------------------------------------------------------------------
// Shared helpers the CLI-only modes (search, profile, --hiperd) still
// use directly.

/// Checked flag-value parsing: a bad token raises std::invalid_argument
/// naming the flag ("bad value for --seed: ...").
double argDouble(const char* flag, const std::string& value);
std::uint64_t argUint(const char* flag, const std::string& value);
std::size_t argSize(const char* flag, const std::string& value);

/// Prints `table` (plain or CSV) followed by a blank line.
void emitTable(std::ostream& out, const report::Table& table, bool csv);

/// JSON scalar for a possibly non-finite double (JSON has no Infinity).
std::string jsonNum(double x);

/// Solves and prints one merged-scheme radius block through the backend
/// registry (used by the radius runner and the CLI's --hiperd mode).
void printMerged(std::ostream& out, const radius::FepiaProblem& problem,
                 radius::MergeScheme scheme, bool csv, obs::Registry* metrics,
                 const std::string& backendOverride = {});

/// Unhooks a live-gauge source before the frame that feeds it dies —
/// the sampler thread must never call into dead locals, including on
/// early returns and exceptions.
struct SourceGuard {
  obs::TelemetryHub* hub = nullptr;
  std::size_t id = 0;
  SourceGuard() = default;
  SourceGuard(obs::TelemetryHub* h, obs::TelemetryHub::SourceFn fn)
      : hub(h), id(h != nullptr ? h->addSource(std::move(fn)) : 0) {}
  SourceGuard(const SourceGuard&) = delete;
  SourceGuard& operator=(const SourceGuard&) = delete;
  ~SourceGuard() {
    if (hub != nullptr) hub->removeSource(id);
  }
};

}  // namespace fepia::server
