// fepiad — the resident robustness query server behind
// `fepia_cli serve`. One process keeps the expensive state warm across
// requests (parsed problems/systems, the sweep sub-computation cache, a
// shared thread pool) and answers the same four queries the one-shot
// CLI answers, byte-identically (the runners in server/query.hpp are
// the CLI's own mode bodies).
//
// Architecture: one acceptor thread (poll + accept on the listen
// socket), one reader thread per connection (frame decode + admission),
// and a fixed worker pool draining a bounded request queue. Admission
// control is typed: a full queue answers `overloaded` immediately, a
// request older than its deadline when a worker finally picks it up
// answers `deadline`, and requests arriving during shutdown answer
// `shutting_down` — the client can always tell "server busy" from
// "request broken". Shutdown never drops in-flight work: readers stop
// accepting, workers drain the queue, every accepted request gets its
// response before the socket closes.
//
// Protocol: see server/wire.hpp. docs/server.md is the user-facing
// description.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "server/session_cache.hpp"
#include "server/wire.hpp"

namespace fepia::server {

/// Server configuration: the CLI fills it from `serve` flags and/or a
/// key=value config file (see parseServeConfigText). The runtime knobs
/// (max_queue, max_frame_bytes, deadline_ms) can be re-applied to a
/// live server via Server::reload; the structural ones (bind, port,
/// workers, threads) need a restart and reload() ignores them.
struct ServeConfig {
  std::string bindAddress = "127.0.0.1";
  std::uint16_t port = 0;       ///< 0 = ephemeral; Server::port() tells
  std::size_t workers = 2;      ///< request-handling workers
  std::size_t threads = 0;      ///< shared compute pool (0 = hardware)
  std::size_t maxQueue = 64;    ///< admission bound on queued requests
  std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
  std::uint64_t defaultDeadlineMs = 0;  ///< 0 = no default deadline
};

/// Applies `key = value` lines (# comments, blank lines ok) to `cfg`.
/// Keys: bind, port, workers, threads, max_queue, max_frame_bytes,
/// deadline_ms. Throws std::invalid_argument naming an unknown key or
/// bad value (same spirit as the CLI's "bad value for --flag").
void parseServeConfigText(const std::string& text, ServeConfig& cfg);

/// parseServeConfigText over the contents of `path`; throws
/// std::runtime_error("cannot open '<path>'") when unreadable.
void parseServeConfigFile(const std::string& path, ServeConfig& cfg);

class Server {
 public:
  struct Stats {
    std::uint64_t accepted = 0;         ///< connections accepted
    std::uint64_t served = 0;           ///< requests answered ok
    std::uint64_t errors = 0;           ///< typed error responses
    std::uint64_t overloaded = 0;       ///< ... of which queue-full
    std::uint64_t deadlineExpired = 0;  ///< ... of which deadline
  };

  /// The hub (optional) receives fepiad.* live gauges: open
  /// connections, queue depth, requests in flight, requests served.
  explicit Server(ServeConfig cfg, obs::TelemetryHub* hub = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor + workers. Returns false
  /// with a one-line diagnostic in `error` when the socket setup fails.
  [[nodiscard]] bool start(std::string* error);

  /// The actually-bound port (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Begins a graceful shutdown and returns immediately: stop
  /// accepting connections and requests, let workers drain the queue.
  /// Safe to call from any thread, any number of times.
  void requestStop();

  /// requestStop() plus joining every thread; after stop() returns no
  /// server thread is live and the listen socket is closed. The
  /// destructor calls it.
  void stop();

  /// True once requestStop() has been observed.
  [[nodiscard]] bool stopping() const noexcept {
    return stopping_.load(std::memory_order_relaxed);
  }

  /// Re-applies the runtime knobs from `cfg` (SIGHUP / config-file hot
  /// reload). Never drops connections or queued requests.
  void reload(const ServeConfig& cfg);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] SessionCache& cache() noexcept { return cache_; }

 private:
  /// One client connection. Writers serialize on writeMutex so a
  /// progress frame from a streaming sweep can never interleave with
  /// the final response frame. The last shared_ptr owner closes the fd.
  struct Connection {
    explicit Connection(int fileDescriptor) : fd(fileDescriptor) {}
    ~Connection();
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /// Frames and writes `payload`; marks the connection dead on any
    /// write failure (EPIPE shows up here, not as SIGPIPE).
    bool write(const std::string& payload);

    int fd;
    std::mutex writeMutex;
    std::atomic<bool> open{true};
  };

  struct Request {
    std::shared_ptr<Connection> conn;
    std::string idRaw = "null";  ///< request id re-serialized verbatim
    std::string kind;
    std::vector<std::string> args;
    bool stream = false;
    std::uint64_t deadlineMs = 0;  ///< 0 = none
    std::uint64_t sleepMs = 0;     ///< ping only (test/bench hook)
    std::uint64_t enqueuedNs = 0;
  };

  struct ReaderSlot {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void acceptorLoop();
  void readerLoop(std::shared_ptr<Connection> conn,
                  std::shared_ptr<std::atomic<bool>> done);
  void workerLoop();
  /// Decodes one request payload and either enqueues it or answers it
  /// inline (stats) / triggers shutdown. Returns false when the
  /// connection should close.
  bool routePayload(const std::shared_ptr<Connection>& conn,
                    const std::string& payload);
  void handle(const Request& req);
  void sendError(const std::shared_ptr<Connection>& conn,
                 const std::string& idRaw, const char* code,
                 const std::string& message);
  [[nodiscard]] std::string statsJson();
  void reapReaders(bool joinAll);

  const ServeConfig cfg_;
  obs::TelemetryHub* hub_;
  std::size_t hubSourceId_ = 0;
  bool hubSourceAdded_ = false;

  // Runtime knobs, hot-reloadable.
  std::atomic<std::size_t> maxQueue_;
  std::atomic<std::size_t> maxFrameBytes_;
  std::atomic<std::uint64_t> defaultDeadlineMs_;

  parallel::ThreadPool pool_;
  SessionCache cache_;

  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex readersMutex_;
  std::vector<ReaderSlot> readers_;
  std::mutex connsMutex_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::deque<Request> queue_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> deadlineExpired_{0};
  std::atomic<std::size_t> openConnections_{0};
  std::atomic<std::size_t> inFlight_{0};
};

}  // namespace fepia::server
