#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <streambuf>

#include "io/parse.hpp"
#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "server/query.hpp"

namespace fepia::server {
namespace {

/// How often the acceptor wakes to check for shutdown and reap finished
/// reader threads even when no client connects.
constexpr int kAcceptPollMillis = 200;

/// Upper bound on the ping sleep_ms test hook — a typo must not park a
/// worker for an hour.
constexpr std::uint64_t kMaxPingSleepMillis = 10'000;

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::uint64_t configUint(const std::string& key, const std::string& value) {
  const std::optional<std::uint64_t> v = io::parseUint64(value);
  if (!v.has_value()) {
    throw std::invalid_argument("bad value for " + key + ": '" + value +
                                "' (expected an unsigned integer)");
  }
  return *v;
}

/// Wraps each complete line written through it into one progress frame
/// on the request's connection:
///   {"id": <echo>, "type": "progress", "event": <line verbatim>}
/// The telemetry stream emits one JSON object per line, so embedding
/// the line as the `event` value is itself valid JSON. Writes are
/// already serialized by the emitting hub's mutex.
class ProgressBuf : public std::streambuf {
 public:
  ProgressBuf(std::shared_ptr<std::atomic<bool>> connOpen,
              std::function<bool(const std::string&)> send,
              std::string idRaw)
      : connOpen_(std::move(connOpen)),
        send_(std::move(send)),
        idRaw_(std::move(idRaw)) {}

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return ch;
    if (ch == '\n') {
      if (!line_.empty()) {
        send_("{\"id\":" + idRaw_ + ",\"type\":\"progress\",\"event\":" +
              line_ + "}");
        line_.clear();
      }
    } else {
      line_.push_back(static_cast<char>(ch));
    }
    return ch;
  }

 private:
  std::shared_ptr<std::atomic<bool>> connOpen_;
  std::function<bool(const std::string&)> send_;
  std::string idRaw_;
  std::string line_;
};

}  // namespace

void parseServeConfigText(const std::string& text, ServeConfig& cfg) {
  std::istringstream in(text);
  std::string rawLine;
  while (std::getline(in, rawLine)) {
    const std::string line = trim(rawLine);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("bad config line '" + line +
                                  "' (expected key = value)");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "bind") {
      cfg.bindAddress = value;
    } else if (key == "port") {
      const std::uint64_t p = configUint(key, value);
      if (p > 65535) {
        throw std::invalid_argument("bad value for port: '" + value +
                                    "' (expected 0..65535)");
      }
      cfg.port = static_cast<std::uint16_t>(p);
    } else if (key == "workers") {
      cfg.workers = static_cast<std::size_t>(configUint(key, value));
      if (cfg.workers == 0) {
        throw std::invalid_argument(
            "bad value for workers: '0' (expected a positive integer)");
      }
    } else if (key == "threads") {
      cfg.threads = static_cast<std::size_t>(configUint(key, value));
    } else if (key == "max_queue") {
      cfg.maxQueue = static_cast<std::size_t>(configUint(key, value));
      if (cfg.maxQueue == 0) {
        throw std::invalid_argument(
            "bad value for max_queue: '0' (expected a positive integer)");
      }
    } else if (key == "max_frame_bytes") {
      cfg.maxFrameBytes = static_cast<std::size_t>(configUint(key, value));
      if (cfg.maxFrameBytes < 16) {
        throw std::invalid_argument("bad value for max_frame_bytes: '" +
                                    value + "' (expected at least 16)");
      }
    } else if (key == "deadline_ms") {
      cfg.defaultDeadlineMs = configUint(key, value);
    } else {
      throw std::invalid_argument("unknown config key '" + key + "'");
    }
  }
}

void parseServeConfigFile(const std::string& path, ServeConfig& cfg) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  std::ostringstream os;
  os << in.rdbuf();
  parseServeConfigText(os.str(), cfg);
}

// ---------------------------------------------------------------------

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

bool Server::Connection::write(const std::string& payload) {
  const std::lock_guard<std::mutex> lock(writeMutex);
  if (!open.load(std::memory_order_relaxed)) return false;
  if (!writeFrame(fd, payload)) {
    open.store(false, std::memory_order_relaxed);
    return false;
  }
  return true;
}

Server::Server(ServeConfig cfg, obs::TelemetryHub* hub)
    : cfg_(std::move(cfg)),
      hub_(hub),
      maxQueue_(cfg_.maxQueue),
      maxFrameBytes_(cfg_.maxFrameBytes),
      defaultDeadlineMs_(cfg_.defaultDeadlineMs),
      pool_(cfg_.threads) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listenFd_ >= 0) {
      ::close(listenFd_);
      listenFd_ = -1;
    }
    return false;
  };

  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bindAddress.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad bind address '" + cfg_.bindAddress + "'";
    }
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + cfg_.bindAddress + ":" + std::to_string(cfg_.port));
  }
  if (::listen(listenFd_, SOMAXCONN) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  if (hub_ != nullptr) {
    hubSourceId_ = hub_->addSource([this](obs::Registry& reg) {
      reg.setGauge("fepiad.open_connections",
                   static_cast<double>(
                       openConnections_.load(std::memory_order_relaxed)));
      std::size_t depth = 0;
      {
        const std::lock_guard<std::mutex> lock(queueMutex_);
        depth = queue_.size();
      }
      reg.setGauge("fepiad.queue_depth", static_cast<double>(depth));
      reg.setGauge("fepiad.in_flight",
                   static_cast<double>(
                       inFlight_.load(std::memory_order_relaxed)));
      reg.setGauge("fepiad.requests_served",
                   static_cast<double>(
                       served_.load(std::memory_order_relaxed)));
    });
    hubSourceAdded_ = true;
  }

  acceptor_ = std::thread([this] { acceptorLoop(); });
  const std::size_t workers = cfg_.workers == 0 ? 1 : cfg_.workers;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
  return true;
}

void Server::requestStop() {
  if (stopping_.exchange(true)) return;
  // Wake the acceptor (its poll also times out on its own) and unblock
  // every reader mid-read; write sides stay open so in-flight and
  // queued requests still get their responses.
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
  {
    const std::lock_guard<std::mutex> lock(connsMutex_);
    for (const std::shared_ptr<Connection>& conn : conns_) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  queueCv_.notify_all();
}

void Server::stop() {
  requestStop();
  if (acceptor_.joinable()) acceptor_.join();
  reapReaders(true);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    const std::lock_guard<std::mutex> lock(connsMutex_);
    conns_.clear();
  }
  if (hubSourceAdded_) {
    hub_->removeSource(hubSourceId_);
    hubSourceAdded_ = false;
  }
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
}

void Server::reload(const ServeConfig& cfg) {
  maxQueue_.store(cfg.maxQueue, std::memory_order_relaxed);
  maxFrameBytes_.store(cfg.maxFrameBytes, std::memory_order_relaxed);
  defaultDeadlineMs_.store(cfg.defaultDeadlineMs, std::memory_order_relaxed);
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.deadlineExpired = deadlineExpired_.load(std::memory_order_relaxed);
  return s;
}

void Server::reapReaders(bool joinAll) {
  std::vector<ReaderSlot> finished;
  {
    const std::lock_guard<std::mutex> lock(readersMutex_);
    for (std::size_t i = 0; i < readers_.size();) {
      if (joinAll || readers_[i].done->load(std::memory_order_acquire)) {
        finished.push_back(std::move(readers_[i]));
        readers_.erase(readers_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (ReaderSlot& slot : finished) {
    if (slot.thread.joinable()) slot.thread.join();
  }
}

void Server::acceptorLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listenFd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMillis);
    reapReaders(false);
    if (ready <= 0) continue;
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    openConnections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(fd);
    {
      const std::lock_guard<std::mutex> lock(connsMutex_);
      conns_.push_back(conn);
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread reader([this, conn, done] { readerLoop(conn, done); });
    const std::lock_guard<std::mutex> lock(readersMutex_);
    readers_.push_back(ReaderSlot{std::move(reader), done});
  }
}

void Server::readerLoop(std::shared_ptr<Connection> conn,
                        std::shared_ptr<std::atomic<bool>> done) {
  for (;;) {
    const Frame frame =
        readFrame(conn->fd, maxFrameBytes_.load(std::memory_order_relaxed));
    if (frame.status == FrameStatus::Oversized) {
      // The payload bytes were never read, so the stream cannot be
      // re-synchronized — reject and close.
      sendError(conn, "null", "bad_frame",
                "frame of " + std::to_string(frame.declaredBytes) +
                    " bytes exceeds the " +
                    std::to_string(
                        maxFrameBytes_.load(std::memory_order_relaxed)) +
                    "-byte cap");
      break;
    }
    if (frame.status != FrameStatus::Ok) break;  // Eof/Truncated/IoError
    if (!routePayload(conn, frame.payload)) break;
  }
  // Queued requests keep their own reference; the fd closes (and any
  // pending response write turns into a no-op) once the last one drops.
  {
    const std::lock_guard<std::mutex> lock(connsMutex_);
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i] == conn) {
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  openConnections_.fetch_sub(1, std::memory_order_relaxed);
  done->store(true, std::memory_order_release);
}

bool Server::routePayload(const std::shared_ptr<Connection>& conn,
                          const std::string& payload) {
  std::string parseError;
  const std::optional<JsonValue> doc = parseJson(payload, &parseError);
  if (!doc.has_value()) {
    // Framing is still intact (the payload was length-delimited), so
    // the connection survives a garbage request body.
    sendError(conn, "null", "bad_frame", "invalid JSON: " + parseError);
    return true;
  }
  std::string idRaw = "null";
  if (const JsonValue* id = doc->find("id")) idRaw = serializeJson(*id);
  const JsonValue* kindValue = doc->find("kind");
  if (!doc->isObject() || kindValue == nullptr || !kindValue->isString()) {
    sendError(conn, idRaw, "bad_request",
              "request must be a JSON object with a string \"kind\"");
    return true;
  }
  const std::string& kind = kindValue->string;

  if (kind == "stats") {
    std::ostringstream os;
    os << "{\"id\":" << idRaw << ",\"ok\":true,\"exit\":0,\"output\":\"\","
       << "\"json\":";
    obs::writeJsonString(os, statsJson());
    os << "}";
    conn->write(os.str());
    served_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (kind == "shutdown") {
    conn->write("{\"id\":" + idRaw +
                ",\"ok\":true,\"exit\":0,\"output\":\"shutting down\\n\","
                "\"json\":null}");
    served_.fetch_add(1, std::memory_order_relaxed);
    requestStop();
    return false;
  }
  if (kind != "radius" && kind != "validate" && kind != "fault-sim" &&
      kind != "sweep" && kind != "ping") {
    sendError(conn, idRaw, "bad_request", "unknown kind '" + kind + "'");
    return true;
  }

  Request req;
  req.conn = conn;
  req.idRaw = idRaw;
  req.kind = kind;
  if (const JsonValue* args = doc->find("args")) {
    if (args->kind != JsonValue::Kind::Array) {
      sendError(conn, idRaw, "bad_request", "\"args\" must be an array");
      return true;
    }
    for (const JsonValue& arg : args->array) {
      if (!arg.isString()) {
        sendError(conn, idRaw, "bad_request",
                  "\"args\" must contain only strings");
        return true;
      }
      req.args.push_back(arg.string);
    }
  }
  if (const JsonValue* stream = doc->find("stream")) {
    req.stream = stream->kind == JsonValue::Kind::Bool && stream->boolean;
  }
  if (const JsonValue* deadline = doc->find("deadline_ms")) {
    if (!deadline->isNumber() || deadline->number < 0) {
      sendError(conn, idRaw, "bad_request",
                "\"deadline_ms\" must be a non-negative number");
      return true;
    }
    req.deadlineMs = static_cast<std::uint64_t>(deadline->number);
  }
  if (const JsonValue* sleepMs = doc->find("sleep_ms")) {
    if (sleepMs->isNumber() && sleepMs->number > 0) {
      req.sleepMs = static_cast<std::uint64_t>(sleepMs->number);
      if (req.sleepMs > kMaxPingSleepMillis) req.sleepMs = kMaxPingSleepMillis;
    }
  }
  req.enqueuedNs = obs::nowNanos();

  {
    const std::lock_guard<std::mutex> lock(queueMutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      sendError(conn, idRaw, "shutting_down", "server is shutting down");
      return false;
    }
    if (queue_.size() >= maxQueue_.load(std::memory_order_relaxed)) {
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      sendError(conn, idRaw, "overloaded",
                "request queue is full (" +
                    std::to_string(
                        maxQueue_.load(std::memory_order_relaxed)) +
                    " requests)");
      return true;
    }
    queue_.push_back(std::move(req));
  }
  queueCv_.notify_one();
  return true;
}

void Server::workerLoop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(queueMutex_);
      queueCv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (queue_.empty()) {
        // stopping_ and an empty queue: every accepted request has been
        // answered (readers reject new ones once stopping_ is set).
        return;
      }
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    const std::uint64_t deadline =
        req.deadlineMs != 0
            ? req.deadlineMs
            : defaultDeadlineMs_.load(std::memory_order_relaxed);
    if (deadline != 0) {
      const std::uint64_t waitedMs =
          (obs::nowNanos() - req.enqueuedNs) / 1'000'000ull;
      if (waitedMs > deadline) {
        deadlineExpired_.fetch_add(1, std::memory_order_relaxed);
        sendError(req.conn, req.idRaw, "deadline",
                  "request waited " + std::to_string(waitedMs) +
                      " ms in queue (deadline " + std::to_string(deadline) +
                      " ms)");
        continue;
      }
    }
    handle(req);
  }
}

void Server::handle(const Request& req) {
  inFlight_.fetch_add(1, std::memory_order_relaxed);
  struct InFlightGuard {
    std::atomic<std::size_t>& counter;
    ~InFlightGuard() { counter.fetch_sub(1, std::memory_order_relaxed); }
  } guard{inFlight_};

  if (req.kind == "ping") {
    if (req.sleepMs != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(req.sleepMs));
    }
    if (req.conn->write("{\"id\":" + req.idRaw +
                        ",\"ok\":true,\"exit\":0,\"output\":\"pong\\n\","
                        "\"json\":null}")) {
      served_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  // Per-request observability state, exactly what a one-shot CLI run
  // would have built in main(): a fresh registry, a manifest collected
  // from the equivalent argv, and a wall stopwatch started now.
  obs::Registry registry;
  std::vector<std::string> fakeArgs;
  fakeArgs.push_back("fepia_cli");
  if (req.kind != "radius") fakeArgs.push_back(req.kind);
  for (const std::string& arg : req.args) fakeArgs.push_back(arg);
  std::vector<const char*> argvPtrs;
  argvPtrs.reserve(fakeArgs.size());
  for (const std::string& arg : fakeArgs) argvPtrs.push_back(arg.c_str());
  obs::RunManifest manifest = obs::RunManifest::collect(
      "fepia_cli", static_cast<int>(argvPtrs.size()), argvPtrs.data());
  const obs::Stopwatch wall;

  // Progressive results: a per-request hub (never started — no sampler
  // thread) whose sink frames every emitted record as a progress
  // message. The sweep engine's per-shard heartbeats flow through
  // SweepOptions::telemetry unchanged.
  std::unique_ptr<ProgressBuf> progressBuf;
  std::unique_ptr<std::ostream> progressStream;
  std::unique_ptr<obs::TelemetryHub> streamHub;
  if (req.stream) {
    const std::shared_ptr<Connection> conn = req.conn;
    progressBuf = std::make_unique<ProgressBuf>(
        nullptr,
        [conn](const std::string& payload) { return conn->write(payload); },
        req.idRaw);
    progressStream = std::make_unique<std::ostream>(progressBuf.get());
    streamHub = std::make_unique<obs::TelemetryHub>(obs::TelemetryOptions{},
                                                    progressStream.get());
  }

  QueryContext ctx;
  ctx.registry = &registry;
  ctx.manifest = &manifest;
  ctx.wall = &wall;
  ctx.hub = streamHub.get();
  ctx.sharedPool = &pool_;
  ctx.cache = &cache_;
  ctx.captureJson = true;

  std::ostringstream out;
  QueryResult result;
  try {
    if (req.kind == "radius") {
      result = runRadiusQuery(req.args, out, ctx);
    } else if (req.kind == "validate") {
      result = runValidateQuery(req.args, out, ctx);
    } else if (req.kind == "fault-sim") {
      result = runFaultSimQuery(req.args, out, ctx);
    } else {
      result = runSweepQuery(req.args, out, ctx);
    }
  } catch (const UsageError& e) {
    sendError(req.conn, req.idRaw, "bad_request", e.what());
    return;
  } catch (const std::exception& e) {
    sendError(req.conn, req.idRaw, "failed", e.what());
    return;
  }

  std::ostringstream response;
  response << "{\"id\":" << req.idRaw << ",\"ok\":true,\"exit\":"
           << result.exitCode << ",\"output\":";
  obs::writeJsonString(response, out.str());
  response << ",\"json\":";
  if (result.hasJson) {
    obs::writeJsonString(response, result.json);
  } else {
    response << "null";
  }
  response << "}";
  if (req.conn->write(response.str())) {
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::sendError(const std::shared_ptr<Connection>& conn,
                       const std::string& idRaw, const char* code,
                       const std::string& message) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
  os << "{\"id\":" << idRaw << ",\"ok\":false,\"error\":{\"code\":\"" << code
     << "\",\"message\":";
  obs::writeJsonString(os, message);
  os << "}}";
  conn->write(os.str());
}

std::string Server::statsJson() {
  const Stats s = stats();
  const SessionCache::Stats cs = cache_.stats();
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(queueMutex_);
    depth = queue_.size();
  }
  std::ostringstream os;
  os << "{\"accepted\": " << s.accepted << ", \"served\": " << s.served
     << ", \"errors\": " << s.errors << ", \"overloaded\": " << s.overloaded
     << ", \"deadline_expired\": " << s.deadlineExpired
     << ", \"open_connections\": "
     << openConnections_.load(std::memory_order_relaxed)
     << ", \"queue_depth\": " << depth << ", \"in_flight\": "
     << inFlight_.load(std::memory_order_relaxed)
     << ", \"pool_threads\": " << pool_.threadCount()
     << ", \"cache\": {\"problem_hits\": " << cs.problemHits
     << ", \"problem_misses\": " << cs.problemMisses
     << ", \"system_hits\": " << cs.systemHits << ", \"system_misses\": "
     << cs.systemMisses << ", \"sweep_hits\": " << cache_.sweepCache().hits()
     << ", \"sweep_misses\": " << cache_.sweepCache().misses() << "}}";
  return os.str();
}

}  // namespace fepia::server
