#include "server/dist_sweep.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "obs/clock.hpp"
#include "sweep/cache.hpp"
#include "sweep/journal.hpp"
#include "sweep/lease.hpp"
#include "sweep/pcache.hpp"

namespace fepia::server {
namespace {

constexpr int kAcceptPollMillis = 100;
constexpr int kWaitRetryMillis = 100;
/// After the last shard commits, how long the coordinator keeps serving
/// so connected workers can hear "drained" and leave cleanly.
constexpr double kDrainGraceSeconds = 10.0;

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

// JSON builders over the wire value type — requests and replies are
// assembled as JsonValue trees and serialized, never hand-concatenated,
// so worker names with quotes or backslashes cannot corrupt a frame.
JsonValue jStr(std::string s) {
  JsonValue v;
  v.kind = JsonValue::Kind::String;
  v.string = std::move(s);
  return v;
}
JsonValue jNum(double d) {
  JsonValue v;
  v.kind = JsonValue::Kind::Number;
  v.number = d;
  return v;
}
JsonValue jBool(bool b) {
  JsonValue v;
  v.kind = JsonValue::Kind::Bool;
  v.boolean = b;
  return v;
}
JsonValue jArr(JsonArray a) {
  JsonValue v;
  v.kind = JsonValue::Kind::Array;
  v.array = std::move(a);
  return v;
}
JsonValue jObj(JsonObject o) {
  JsonValue v;
  v.kind = JsonValue::Kind::Object;
  v.object = std::move(o);
  return v;
}

std::string okReply(JsonObject fields) {
  JsonObject o;
  o.emplace_back("ok", jBool(true));
  for (auto& f : fields) o.push_back(std::move(f));
  return serializeJson(jObj(std::move(o)));
}

std::string errorReply(const std::string& code, const std::string& message) {
  return serializeJson(jObj({{"ok", jBool(false)},
                             {"error", jObj({{"code", jStr(code)},
                                             {"message", jStr(message)}})}}));
}

/// Decimal-string round trip for std::size_t / uint64 — JSON numbers
/// are doubles and could silently round a large classification count.
bool parseU64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10u) {
      return false;
    }
    v = v * 10u + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

/// One commit row: [id, analytic, closed, empirical, degraded, makespan,
/// classifications], doubles in the journal's exact hexfloat form.
JsonValue encodePointRow(std::size_t id, const sweep::PointResult& r) {
  JsonArray row;
  row.push_back(jStr(std::to_string(id)));
  row.push_back(jStr(sweep::formatJournalDouble(r.analyticRho)));
  row.push_back(jStr(sweep::formatJournalDouble(r.closedForm)));
  row.push_back(jStr(sweep::formatJournalDouble(r.empirical)));
  row.push_back(jStr(sweep::formatJournalDouble(r.degraded)));
  row.push_back(jStr(sweep::formatJournalDouble(r.makespan)));
  row.push_back(jStr(std::to_string(r.classifications)));
  return jArr(std::move(row));
}

bool decodePointRow(const JsonValue& row, std::size_t expectId,
                    sweep::PointResult& out) {
  if (row.kind != JsonValue::Kind::Array || row.array.size() != 7) {
    return false;
  }
  for (const JsonValue& cell : row.array) {
    if (!cell.isString()) return false;
  }
  std::uint64_t id = 0;
  if (!parseU64(row.array[0].string, id) || id != expectId) return false;
  if (!sweep::parseJournalDouble(row.array[1].string, out.analyticRho) ||
      !sweep::parseJournalDouble(row.array[2].string, out.closedForm) ||
      !sweep::parseJournalDouble(row.array[3].string, out.empirical) ||
      !sweep::parseJournalDouble(row.array[4].string, out.degraded) ||
      !sweep::parseJournalDouble(row.array[5].string, out.makespan)) {
    return false;
  }
  return parseU64(row.array[6].string, out.classifications);
}

const JsonValue* findString(const JsonValue& req, const char* key) {
  const JsonValue* v = req.find(key);
  return (v != nullptr && v->isString()) ? v : nullptr;
}

const JsonValue* findNumber(const JsonValue& req, const char* key) {
  const JsonValue* v = req.find(key);
  return (v != nullptr && v->isNumber()) ? v : nullptr;
}

}  // namespace

// ---------------------------------------------------------------------
// Coordinator.

struct SweepCoordinator::Impl {
  sweep::SweepSpec spec;
  DistSweepConfig cfg;
  obs::Stopwatch clock;  ///< the `now` source the lease table sees

  // Shard/grid geometry, fixed after start().
  std::size_t points = 0;
  std::size_t chunk = 0;
  std::size_t shards = 0;
  std::size_t pendingPoints = 0;  ///< points this run must compute
  std::string specHashHex;

  // All mutable sweep state — lease table, result slots, journal —
  // under one mutex. Commits are tiny next to shard compute times.
  std::mutex mutex;
  std::condition_variable cv;
  std::unique_ptr<sweep::LeaseTable> lease;
  sweep::SweepSurface surface;
  sweep::JournalWriter journal;
  double lastProgressAt = 0.0;  ///< last commit or worker arrival

  // What the telemetry sampler reads. A separate, leaf-level mutex:
  // the sampler takes only this one, and no thread holding it ever
  // emits into the hub — so hub-internal locks cannot invert with it.
  mutable std::mutex statsMutex;
  std::set<std::string> workersSeen;
  std::map<std::string, std::uint64_t> workerCommits;
  std::size_t liveWorkers = 0;
  std::uint64_t commits = 0;
  std::uint64_t duplicateCommits = 0;
  std::uint64_t reissues = 0;
  std::uint64_t steals = 0;
  std::uint64_t pointsDone = 0;

  // Listener plumbing (mirrors server.cpp: poll-based acceptor woken
  // by shutdown(2), reader thread per connection, fds closed only
  // after their reader joined).
  int listenFd = -1;
  std::atomic<bool> stopping{false};
  std::thread acceptor;
  struct Conn {
    int fd = -1;
    std::thread reader;
    std::atomic<bool> done{false};
  };
  std::mutex connsMutex;
  std::vector<std::unique_ptr<Conn>> conns;
  std::size_t sourceId = 0;
  bool sourceAdded = false;
  bool torndown = false;

  void logLine(const std::string& line) {
    if (cfg.log == nullptr) return;
    const std::lock_guard<std::mutex> lock(logMutex);
    *cfg.log << line << '\n';
    cfg.log->flush();
  }
  std::mutex logMutex;

  [[nodiscard]] std::size_t shardCount(std::size_t s) const noexcept {
    const std::size_t first = s * chunk;
    return std::min(chunk, points - first);
  }

  void mirrorLeaseCounters() {  // caller holds `mutex`
    const std::lock_guard<std::mutex> lock(statsMutex);
    reissues = lease->reissues();
    steals = lease->steals();
    duplicateCommits = lease->duplicateCommits();
  }

  std::string handleHello(const JsonValue& req, std::string& helloName);
  std::string handleLease(const std::string& helloName);
  std::string handleCommit(const JsonValue& req, const std::string& helloName);
  std::string handleHeartbeat(const JsonValue& req);
  std::string handle(const JsonValue& req, std::string& helloName);
  void readerLoop(Conn* conn);
  void acceptorLoop();
  void reapDone(bool all);
  void teardown();
};

std::string SweepCoordinator::Impl::handleHello(const JsonValue& req,
                                                std::string& helloName) {
  const JsonValue* hash = findString(req, "spec_hash");
  const JsonValue* pts = findNumber(req, "points");
  const JsonValue* worker = findString(req, "worker");
  if (hash == nullptr || pts == nullptr || worker == nullptr ||
      worker->string.empty()) {
    return errorReply("bad_request", "hello needs spec_hash, points, worker");
  }
  if (hash->string != specHashHex ||
      pts->number != static_cast<double>(points)) {
    logLine("coordinator: refused worker '" + worker->string +
            "': spec mismatch (got " + hash->string + ", want " + specHashHex +
            ")");
    return errorReply("spec_mismatch",
                      "worker spec hash " + hash->string + " / " +
                          "coordinator " + specHashHex +
                          " — refusing to lease against a different sweep");
  }
  {
    const std::lock_guard<std::mutex> lock(statsMutex);
    workersSeen.insert(worker->string);
    if (helloName.empty()) ++liveWorkers;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex);
    lastProgressAt = clock.elapsedSeconds();
  }
  helloName = worker->string;
  logLine("coordinator: worker '" + helloName + "' connected");
  return okReply({{"kind", jStr("welcome")},
                  {"lease_ms", jNum(cfg.leaseSeconds * 1000.0)},
                  {"points", jNum(static_cast<double>(points))},
                  {"chunk", jNum(static_cast<double>(chunk))},
                  {"shards", jNum(static_cast<double>(shards))}});
}

std::string SweepCoordinator::Impl::handleLease(const std::string& helloName) {
  if (helloName.empty()) {
    return errorReply("bad_request", "lease before hello");
  }
  std::optional<sweep::LeaseTable::Grant> grant;
  bool drained = false;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    grant = lease->acquire(helloName, clock.elapsedSeconds());
    drained = !grant.has_value() && lease->allCommitted();
    mirrorLeaseCounters();
  }
  if (!grant.has_value()) {
    if (drained) return okReply({{"kind", jStr("drained")}});
    return okReply({{"kind", jStr("wait")},
                    {"retry_ms", jNum(static_cast<double>(kWaitRetryMillis))}});
  }
  const std::size_t s = grant->shard;
  std::string line = "coordinator: leased shard " + std::to_string(s) +
                     " to '" + helloName + "'";
  if (grant->stolen) {
    line += " (stolen from straggler, generation " +
            std::to_string(grant->generation) + ")";
  } else if (grant->generation > 0) {
    line += " (reissue, generation " + std::to_string(grant->generation) + ")";
  }
  logLine(line);
  if (cfg.telemetry != nullptr && (grant->stolen || grant->generation > 0)) {
    obs::TelemetryEvent warn("warning");
    warn.str("kind", grant->stolen ? "straggler" : "lease-reissue")
        .count("shard", s)
        .count("generation", grant->generation)
        .str("worker", helloName);
    cfg.telemetry->emit(warn);
  }
  return okReply(
      {{"kind", jStr("lease")},
       {"shard", jNum(static_cast<double>(s))},
       {"first", jNum(static_cast<double>(s * chunk))},
       {"count", jNum(static_cast<double>(shardCount(s)))},
       {"generation", jNum(static_cast<double>(grant->generation))},
       {"stolen", jBool(grant->stolen)}});
}

std::string SweepCoordinator::Impl::handleCommit(
    const JsonValue& req, const std::string& helloName) {
  if (helloName.empty()) {
    return errorReply("bad_request", "commit before hello");
  }
  const JsonValue* shardV = findNumber(req, "shard");
  const JsonValue* rows = req.find("results");
  if (shardV == nullptr || rows == nullptr ||
      rows->kind != JsonValue::Kind::Array) {
    return errorReply("bad_request", "commit needs shard and results");
  }
  const std::size_t s = static_cast<std::size_t>(shardV->number);
  if (shardV->number < 0 || s >= shards) {
    return errorReply("bad_request",
                      "shard " + std::to_string(s) + " out of range");
  }
  const std::size_t first = s * chunk;
  const std::size_t count = shardCount(s);
  if (rows->array.size() != count) {
    return errorReply("bad_request",
                      "shard " + std::to_string(s) + " expects " +
                          std::to_string(count) + " points, got " +
                          std::to_string(rows->array.size()));
  }
  // Decode off-lock; only the accept itself serializes.
  std::vector<sweep::PointResult> decoded(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!decodePointRow(rows->array[i], first + i, decoded[i])) {
      return errorReply("bad_request", "malformed result row in shard " +
                                           std::to_string(s));
    }
  }
  bool fresh = false;
  std::uint64_t done = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    fresh = lease->commit(s);
    if (fresh) {
      std::copy(decoded.begin(), decoded.end(), surface.results.begin() +
                                                    static_cast<long>(first));
      std::fill(surface.computed.begin() + static_cast<long>(first),
                surface.computed.begin() + static_cast<long>(first + count),
                static_cast<std::uint8_t>(1));
      if (journal.active()) {
        journal.appendShard(s, first, surface.results.data() + first, count);
      }
      lastProgressAt = clock.elapsedSeconds();
      cv.notify_all();
    }
    mirrorLeaseCounters();
  }
  if (fresh) {
    {
      const std::lock_guard<std::mutex> lock(statsMutex);
      ++commits;
      pointsDone += count;
      ++workerCommits[helloName];
      done = pointsDone;
    }
    logLine("coordinator: shard " + std::to_string(s) + " committed by '" +
            helloName + "' (" + std::to_string(done) + "/" +
            std::to_string(pendingPoints) + " points)");
    if (cfg.telemetry != nullptr) {
      const double elapsed = clock.elapsedSeconds();
      const double rate =
          elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
      obs::TelemetryEvent beat("heartbeat");
      beat.count("shard", s)
          .count("points_done", done)
          .count("points_total", pendingPoints)
          .num("points_per_sec", rate)
          .str("worker", helloName);
      cfg.telemetry->emit(beat);
    }
  } else {
    logLine("coordinator: duplicate commit of shard " + std::to_string(s) +
            " from '" + helloName + "' (discarded)");
  }
  return okReply({{"committed", jBool(fresh)}});
}

std::string SweepCoordinator::Impl::handleHeartbeat(const JsonValue& req) {
  const JsonValue* worker = findString(req, "worker");
  const JsonValue* shardV = findNumber(req, "shard");
  if (worker == nullptr || shardV == nullptr) {
    return errorReply("bad_request", "heartbeat needs worker and shard");
  }
  const std::lock_guard<std::mutex> lock(mutex);
  lease->heartbeat(static_cast<std::size_t>(shardV->number), worker->string,
                   clock.elapsedSeconds());
  return okReply({});
}

std::string SweepCoordinator::Impl::handle(const JsonValue& req,
                                           std::string& helloName) {
  const JsonValue* kind = findString(req, "kind");
  if (kind == nullptr) return errorReply("bad_request", "missing kind");
  if (kind->string == "hello") return handleHello(req, helloName);
  if (kind->string == "lease") return handleLease(helloName);
  if (kind->string == "commit") return handleCommit(req, helloName);
  if (kind->string == "heartbeat") return handleHeartbeat(req);
  if (kind->string == "done") {
    logLine("coordinator: worker '" +
            (helloName.empty() ? std::string("?") : helloName) + "' done");
    return okReply({});
  }
  return errorReply("bad_request", "unknown kind '" + kind->string + "'");
}

void SweepCoordinator::Impl::readerLoop(Conn* conn) {
  std::string helloName;
  for (;;) {
    const Frame frame = readFrame(conn->fd, cfg.maxFrameBytes);
    if (frame.status != FrameStatus::Ok) break;
    std::string parseError;
    const std::optional<JsonValue> req = parseJson(frame.payload, &parseError);
    const std::string reply = req.has_value()
                                  ? handle(*req, helloName)
                                  : errorReply("bad_frame", parseError);
    if (!writeFrame(conn->fd, reply)) break;
  }
  if (!helloName.empty()) {
    std::vector<std::size_t> reissued;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      reissued = lease->releaseWorker(helloName);
      mirrorLeaseCounters();
    }
    {
      const std::lock_guard<std::mutex> lock(statsMutex);
      if (liveWorkers > 0) --liveWorkers;
    }
    std::string line = "coordinator: worker '" + helloName + "' disconnected";
    if (!reissued.empty()) {
      line += "; reissued shard(s)";
      for (const std::size_t s : reissued) line += " " + std::to_string(s);
    }
    logLine(line);
    if (cfg.telemetry != nullptr && !reissued.empty()) {
      obs::TelemetryEvent warn("warning");
      warn.str("kind", "lease-reissue")
          .str("worker", helloName)
          .count("shards", reissued.size());
      cfg.telemetry->emit(warn);
    }
    cv.notify_all();
  }
  conn->done.store(true, std::memory_order_release);
}

void SweepCoordinator::Impl::reapDone(bool all) {
  const std::lock_guard<std::mutex> lock(connsMutex);
  auto it = conns.begin();
  while (it != conns.end()) {
    Conn& c = **it;
    if (!all && !c.done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    if (c.reader.joinable()) c.reader.join();
    if (c.fd >= 0) ::close(c.fd);
    it = conns.erase(it);
  }
}

void SweepCoordinator::Impl::acceptorLoop() {
  while (!stopping.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listenFd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMillis);
    reapDone(false);
    if (ready <= 0) continue;
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) continue;
    // Register under connsMutex *before* spawning the reader, and
    // re-check stopping under the same lock: teardown's conn-shutdown
    // sweep also holds it, so a connection either lands in the list in
    // time to be shut down or observes stopping and is dropped here.
    const std::lock_guard<std::mutex> lock(connsMutex);
    if (stopping.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    conns.push_back(std::move(conn));
    raw->reader = std::thread([this, raw] { readerLoop(raw); });
  }
}

void SweepCoordinator::Impl::teardown() {
  if (!torndown) {
    torndown = true;
    {
      const std::lock_guard<std::mutex> lock(connsMutex);
      stopping.store(true, std::memory_order_release);
      for (const std::unique_ptr<Conn>& c : conns) {
        if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
      }
    }
    if (listenFd >= 0) ::shutdown(listenFd, SHUT_RDWR);
  }
  if (acceptor.joinable()) acceptor.join();
  reapDone(true);
  if (listenFd >= 0) {
    ::close(listenFd);
    listenFd = -1;
  }
  if (sourceAdded && cfg.telemetry != nullptr) {
    cfg.telemetry->removeSource(sourceId);
    sourceAdded = false;
  }
}

SweepCoordinator::SweepCoordinator(sweep::SweepSpec spec, DistSweepConfig cfg)
    : impl_(std::make_unique<Impl>()) {
  impl_->spec = std::move(spec);
  impl_->cfg = std::move(cfg);
}

SweepCoordinator::~SweepCoordinator() {
  if (impl_ != nullptr) impl_->teardown();
}

bool SweepCoordinator::start(std::string* error) {
  Impl& im = *impl_;
  im.points = im.spec.pointCount();
  im.chunk = im.cfg.chunkOverride != 0 ? im.cfg.chunkOverride : im.spec.chunk;
  if (im.chunk == 0) im.chunk = 1;
  im.shards = im.points == 0 ? 0 : (im.points + im.chunk - 1) / im.chunk;
  im.specHashHex = hex16(im.spec.hash());

  sweep::SweepSurface& surface = im.surface;
  surface.points = im.points;
  surface.chunk = im.chunk;
  surface.shards = im.shards;
  surface.results.assign(im.points, sweep::PointResult{});
  surface.computed.assign(im.points, 0);

  std::vector<bool> shardDone(im.shards, false);
  if (im.cfg.resume) {
    if (im.cfg.journalPath.empty()) {
      throw std::invalid_argument(
          "sweep coordinator: --resume requires a journal path");
    }
    const sweep::JournalContents replay =
        sweep::readJournal(im.cfg.journalPath, im.spec.hash(), im.points,
                           im.chunk, im.shards);
    shardDone = replay.shardDone;
    for (std::size_t s = 0; s < im.shards; ++s) {
      if (!shardDone[s]) continue;
      const std::size_t first = s * im.chunk;
      const std::size_t count = im.shardCount(s);
      for (std::size_t i = 0; i < count; ++i) {
        surface.results[first + i] = replay.results[first + i];
        surface.computed[first + i] = 1;
      }
      ++surface.resumedShards;
    }
  }
  std::vector<std::size_t> pending;
  for (std::size_t s = 0; s < im.shards; ++s) {
    if (!shardDone[s]) {
      pending.push_back(s);
      im.pendingPoints += im.shardCount(s);
    }
  }
  im.lease = std::make_unique<sweep::LeaseTable>(
      std::move(pending), im.cfg.leaseSeconds, im.cfg.stealAfterSeconds);
  if (!im.cfg.journalPath.empty()) {
    im.journal.open(im.cfg.journalPath, im.cfg.resume, im.spec.hash(),
                    im.points, im.chunk);
  }

  // Socket setup, same recipe as Server::start.
  im.listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (im.listenFd < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(im.listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(im.cfg.port);
  if (::inet_pton(AF_INET, im.cfg.bindAddress.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad bind address '" + im.cfg.bindAddress + "'";
    }
    ::close(im.listenFd);
    im.listenFd = -1;
    return false;
  }
  if (::bind(im.listenFd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(im.listenFd, SOMAXCONN) != 0) {
    if (error != nullptr) {
      *error = "bind/listen " + im.cfg.bindAddress + ":" +
               std::to_string(im.cfg.port) + ": " + strerror(errno);
    }
    ::close(im.listenFd);
    im.listenFd = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(im.listenFd, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  im.lastProgressAt = im.clock.elapsedSeconds();
  if (im.cfg.telemetry != nullptr) {
    Impl* imp = impl_.get();
    im.sourceId = im.cfg.telemetry->addSource([imp](obs::Registry& reg) {
      const std::lock_guard<std::mutex> lock(imp->statsMutex);
      reg.setGauge("sweep.dist_live_workers",
                   static_cast<double>(imp->liveWorkers));
      reg.setGauge("sweep.dist_points_done",
                   static_cast<double>(imp->pointsDone));
      reg.setGauge("sweep.dist_points_total",
                   static_cast<double>(imp->pendingPoints));
      reg.setGauge("sweep.dist_shards_committed",
                   static_cast<double>(imp->commits));
      reg.setGauge("sweep.dist_reissues", static_cast<double>(imp->reissues));
      reg.setGauge("sweep.dist_steals", static_cast<double>(imp->steals));
      reg.setGauge("sweep.dist_duplicate_commits",
                   static_cast<double>(imp->duplicateCommits));
      for (const auto& [name, count] : imp->workerCommits) {
        reg.setGauge("sweep.dist_worker_commits." + name,
                     static_cast<double>(count));
      }
    });
    im.sourceAdded = true;
  }

  im.acceptor = std::thread([imp = impl_.get()] { imp->acceptorLoop(); });
  im.logLine("coordinator: serving " + std::to_string(im.shards -
             surface.resumedShards) + " shard(s) of " +
             std::to_string(im.shards) + " (" + std::to_string(im.points) +
             " points, chunk " + std::to_string(im.chunk) + ")");
  return true;
}

sweep::SweepSurface SweepCoordinator::wait() {
  Impl& im = *impl_;
  {
    std::unique_lock<std::mutex> lk(im.mutex);
    while (!im.lease->allCommitted()) {
      im.cv.wait_for(lk, std::chrono::milliseconds(250));
      if (im.cfg.drainTimeoutSeconds > 0.0 && !im.lease->allCommitted()) {
        const double now = im.clock.elapsedSeconds();
        if (now - im.lastProgressAt > im.cfg.drainTimeoutSeconds) {
          const std::size_t committed = im.lease->committedCount();
          const std::size_t total = im.shards - im.surface.resumedShards;
          lk.unlock();
          im.teardown();
          throw std::runtime_error(
              "sweep coordinator: no progress for " +
              std::to_string(im.cfg.drainTimeoutSeconds) + "s with " +
              std::to_string(total - committed) + " shard(s) outstanding");
        }
      }
    }
  }
  // Grace period: keep serving so connected workers can hear "drained"
  // and disconnect on their own before we pull the sockets out.
  const double drainedAt = im.clock.elapsedSeconds();
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(im.statsMutex);
      if (im.liveWorkers == 0) break;
    }
    if (im.clock.elapsedSeconds() - drainedAt > kDrainGraceSeconds) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  im.teardown();

  sweep::SweepSurface& surface = im.surface;
  surface.complete = true;
  surface.computedShards = im.shards - surface.resumedShards;
  surface.cacheEnabled = true;
  for (std::size_t id = 0; id < surface.points; ++id) {
    if (surface.computed[id]) {
      surface.classifications += surface.results[id].classifications;
    }
  }
  surface.wallSeconds = im.clock.elapsedSeconds();
  surface.pointsPerSec =
      surface.wallSeconds > 0.0
          ? static_cast<double>(im.pendingPoints) / surface.wallSeconds
          : 0.0;

  const Stats st = stats();
  im.logLine("coordinator: drained; " + std::to_string(st.commits) +
             " commit(s) from " + std::to_string(st.workersSeen) +
             " worker(s), " + std::to_string(st.duplicateCommits) +
             " duplicate(s), " + std::to_string(st.reissues) +
             " reissue(s), " + std::to_string(st.steals) + " steal(s)");
  if (im.cfg.metrics != nullptr) {
    obs::Registry& reg = *im.cfg.metrics;
    reg.counters().bump("sweep.dist_shards_committed", st.commits);
    reg.counters().bump("sweep.dist_duplicate_commits", st.duplicateCommits);
    reg.counters().bump("sweep.dist_reissues", st.reissues);
    reg.counters().bump("sweep.dist_steals", st.steals);
    reg.counters().bump("sweep.dist_workers", st.workersSeen);
    reg.setGauge("sweep.points_per_sec", surface.pointsPerSec);
  }
  return std::move(surface);
}

SweepCoordinator::Stats SweepCoordinator::stats() const {
  const Impl& im = *impl_;
  const std::lock_guard<std::mutex> lock(im.statsMutex);
  Stats st;
  st.workersSeen = im.workersSeen.size();
  st.commits = im.commits;
  st.duplicateCommits = im.duplicateCommits;
  st.reissues = im.reissues;
  st.steals = im.steals;
  return st;
}

// ---------------------------------------------------------------------
// Worker.

namespace {

/// One request/reply round trip. Returns nullopt on a lost connection
/// (the caller decides whether that is fatal); throws on a coordinator
/// refusal ({"ok": false}).
std::optional<JsonValue> rpc(int fd, const JsonValue& request,
                             std::size_t maxBytes) {
  if (!writeFrame(fd, serializeJson(request))) return std::nullopt;
  const Frame frame = readFrame(fd, maxBytes);
  if (frame.status != FrameStatus::Ok) return std::nullopt;
  std::string parseError;
  std::optional<JsonValue> reply = parseJson(frame.payload, &parseError);
  if (!reply.has_value()) {
    throw std::runtime_error("sweep worker: unparseable reply: " + parseError);
  }
  const JsonValue* ok = reply->find("ok");
  if (ok == nullptr || ok->kind != JsonValue::Kind::Bool || !ok->boolean) {
    std::string code = "unknown";
    std::string message;
    if (const JsonValue* err = reply->find("error")) {
      if (const JsonValue* c = err->find("code")) code = c->string;
      if (const JsonValue* m = err->find("message")) message = m->string;
    }
    throw std::runtime_error("sweep worker: coordinator refused (" + code +
                             "): " + message);
  }
  return reply;
}

/// Background lease renewal on its own connection, so heartbeats never
/// interleave with the compute connection's request/reply frames.
class HeartbeatThread {
 public:
  HeartbeatThread(const SweepWorkerConfig& cfg, const std::string& worker,
                  double leaseMs)
      : cfg_(cfg), worker_(worker) {
    intervalMs_ = std::max(50.0, leaseMs / 3.0);
    fd_ = connectHost(cfg.host, cfg.port);
    if (fd_ >= 0) thread_ = std::thread([this] { loop(); });
  }
  ~HeartbeatThread() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    if (fd_ >= 0) ::close(fd_);
  }
  /// The shard whose lease to renew; -1 between leases.
  void setShard(long shard) {
    current_.store(shard, std::memory_order_relaxed);
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lk(mutex_);
    while (!stop_) {
      cv_.wait_for(lk, std::chrono::milliseconds(
                           static_cast<long>(intervalMs_)));
      if (stop_) break;
      const long shard = current_.load(std::memory_order_relaxed);
      if (shard < 0) continue;
      lk.unlock();
      const JsonValue beat =
          jObj({{"kind", jStr("heartbeat")},
                {"worker", jStr(worker_)},
                {"shard", jNum(static_cast<double>(shard))}});
      bool alive = writeFrame(fd_, serializeJson(beat));
      if (alive) {
        alive = readFrame(fd_, cfg_.maxFrameBytes).status == FrameStatus::Ok;
      }
      lk.lock();
      if (!alive) break;  // coordinator gone; expiry takes over
    }
  }

  const SweepWorkerConfig& cfg_;
  std::string worker_;
  double intervalMs_ = 3000.0;
  int fd_ = -1;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<long> current_{-1};
};

}  // namespace

SweepWorkerReport runSweepWorker(const sweep::SweepSpec& spec,
                                 const SweepWorkerConfig& cfg) {
  const std::string name =
      cfg.name.empty() ? "worker-" + std::to_string(::getpid()) : cfg.name;
  obs::Stopwatch wall;
  const auto logLine = [&cfg](const std::string& line) {
    if (cfg.log == nullptr) return;
    *cfg.log << line << '\n';
    cfg.log->flush();
  };

  int fd = -1;
  for (int attempt = 0; attempt < std::max(1, cfg.connectAttempts); ++attempt) {
    fd = connectHost(cfg.host, cfg.port);
    if (fd >= 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (fd < 0) {
    throw std::runtime_error("sweep worker: cannot connect to " + cfg.host +
                             ":" + std::to_string(cfg.port));
  }
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } fdGuard{fd};

  const JsonValue hello =
      jObj({{"kind", jStr("hello")},
            {"spec_hash", jStr(hex16(spec.hash()))},
            {"points", jNum(static_cast<double>(spec.pointCount()))},
            {"worker", jStr(name)}});
  const std::optional<JsonValue> welcome = rpc(fd, hello, cfg.maxFrameBytes);
  if (!welcome.has_value()) {
    throw std::runtime_error(
        "sweep worker: connection lost during handshake");
  }
  double leaseMs = 10000.0;
  if (const JsonValue* v = findNumber(*welcome, "lease_ms")) {
    leaseMs = v->number;
  }
  logLine("worker '" + name + "': connected to " + cfg.host + ":" +
          std::to_string(cfg.port) + " (lease " +
          std::to_string(static_cast<long>(leaseMs)) + " ms)");

  sweep::ResultCache cache(cfg.cacheEnabled);
  std::unique_ptr<sweep::PersistentCache> persistent;
  if (!cfg.cacheDir.empty() && cfg.cacheEnabled) {
    persistent = std::make_unique<sweep::PersistentCache>(cfg.cacheDir);
  }

  // Live gauges for the worker process's own telemetry hub.
  std::atomic<std::uint64_t> pointsDoneA{0};
  std::atomic<std::uint64_t> shardsDoneA{0};
  std::size_t sourceId = 0;
  if (cfg.telemetry != nullptr) {
    sourceId = cfg.telemetry->addSource(
        [&pointsDoneA, &shardsDoneA, pc = persistent.get()](
            obs::Registry& reg) {
          reg.setGauge("sweep.worker_points_computed",
                       static_cast<double>(
                           pointsDoneA.load(std::memory_order_relaxed)));
          reg.setGauge("sweep.worker_shards_computed",
                       static_cast<double>(
                           shardsDoneA.load(std::memory_order_relaxed)));
          if (pc != nullptr) {
            reg.setGauge("sweep.live_persistent_hits",
                         static_cast<double>(pc->hits()));
            reg.setGauge("sweep.live_persistent_misses",
                         static_cast<double>(pc->misses()));
          }
        });
  }
  struct SourceGuard {
    obs::TelemetryHub* hub;
    std::size_t id;
    ~SourceGuard() {
      if (hub != nullptr) hub->removeSource(id);
    }
  } sourceGuard{cfg.telemetry, sourceId};

  HeartbeatThread heartbeat(cfg, name, leaseMs);

  SweepWorkerReport report;
  std::vector<sweep::PointResult> buffer;
  bool lostConnection = false;
  for (;;) {
    const std::optional<JsonValue> reply =
        rpc(fd, jObj({{"kind", jStr("lease")}, {"worker", jStr(name)}}),
            cfg.maxFrameBytes);
    if (!reply.has_value()) {
      lostConnection = true;
      break;
    }
    const JsonValue* kind = findString(*reply, "kind");
    if (kind == nullptr) {
      throw std::runtime_error("sweep worker: lease reply without kind");
    }
    if (kind->string == "drained") break;
    if (kind->string == "wait") {
      double retryMs = kWaitRetryMillis;
      if (const JsonValue* v = findNumber(*reply, "retry_ms")) {
        retryMs = v->number;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(retryMs)));
      continue;
    }
    if (kind->string != "lease") {
      throw std::runtime_error("sweep worker: unexpected lease reply kind '" +
                               kind->string + "'");
    }
    const JsonValue* shardV = findNumber(*reply, "shard");
    const JsonValue* firstV = findNumber(*reply, "first");
    const JsonValue* countV = findNumber(*reply, "count");
    if (shardV == nullptr || firstV == nullptr || countV == nullptr) {
      throw std::runtime_error("sweep worker: malformed lease reply");
    }
    const std::size_t shard = static_cast<std::size_t>(shardV->number);
    const std::size_t first = static_cast<std::size_t>(firstV->number);
    const std::size_t count = static_cast<std::size_t>(countV->number);
    std::uint64_t generation = 0;
    if (const JsonValue* v = findNumber(*reply, "generation")) {
      generation = static_cast<std::uint64_t>(v->number);
    }
    logLine("worker '" + name + "': leased shard " + std::to_string(shard) +
            " (" + std::to_string(count) + " points, generation " +
            std::to_string(generation) + ")");

    heartbeat.setShard(static_cast<long>(shard));
    buffer.assign(count, sweep::PointResult{});
    sweep::evaluatePointRange(spec, cache, persistent.get(),
                              cfg.backendOverride, first, count,
                              buffer.data());
    heartbeat.setShard(-1);
    ++report.shardsComputed;
    report.pointsComputed += count;
    shardsDoneA.fetch_add(1, std::memory_order_relaxed);
    pointsDoneA.fetch_add(count, std::memory_order_relaxed);

    JsonArray rows;
    rows.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      rows.push_back(encodePointRow(first + i, buffer[i]));
    }
    const std::optional<JsonValue> commitReply =
        rpc(fd,
            jObj({{"kind", jStr("commit")},
                  {"worker", jStr(name)},
                  {"shard", jNum(static_cast<double>(shard))},
                  {"results", jArr(std::move(rows))}}),
            cfg.maxFrameBytes);
    if (!commitReply.has_value()) {
      lostConnection = true;
      break;
    }
    const JsonValue* committed = commitReply->find("committed");
    const bool fresh = committed != nullptr &&
                       committed->kind == JsonValue::Kind::Bool &&
                       committed->boolean;
    if (!fresh) ++report.duplicateCommits;
    logLine("worker '" + name + "': " +
            (fresh ? "committed" : "duplicate commit of") + " shard " +
            std::to_string(shard));
  }

  if (lostConnection) {
    // The coordinator drains and closes once every shard is committed;
    // a post-handshake loss therefore means the sweep finished (or the
    // coordinator aborted — in which case *its* process reports the
    // failure). Either way this worker has nothing left to compute.
    logLine("worker '" + name +
            "': connection closed by coordinator; assuming drained");
  } else {
    (void)rpc(fd, jObj({{"kind", jStr("done")}, {"worker", jStr(name)}}),
              cfg.maxFrameBytes);
  }

  if (persistent != nullptr) {
    report.persistentHits = persistent->hits();
    report.persistentMisses = persistent->misses();
  }
  report.wallSeconds = wall.elapsedSeconds();
  logLine("worker '" + name + "': drained; computed " +
          std::to_string(report.shardsComputed) + " shard(s), " +
          std::to_string(report.pointsComputed) + " point(s), " +
          std::to_string(report.duplicateCommits) + " duplicate(s)");
  if (cfg.metrics != nullptr) {
    obs::Registry& reg = *cfg.metrics;
    reg.counters().bump("sweep.worker_shards_computed", report.shardsComputed);
    reg.counters().bump("sweep.worker_points_computed", report.pointsComputed);
    reg.counters().bump("sweep.worker_duplicate_commits",
                        report.duplicateCommits);
    reg.counters().bump("sweep.persistent_hits", report.persistentHits);
    reg.counters().bump("sweep.persistent_misses", report.persistentMisses);
  }
  return report;
}

}  // namespace fepia::server
