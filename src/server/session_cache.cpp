#include "server/session_cache.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "io/problem_io.hpp"
#include "io/system_io.hpp"

namespace fepia::server {
namespace {

/// FNV-1a over the file bytes, length mixed in so two contents that
/// would collide at different sizes stay distinct. (A 64-bit content
/// hash is ample for a cache whose worst failure is returning a parse
/// of different bytes — and the entries are full parses of trusted
/// local files, not adversarial input.)
std::uint64_t contentKey(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  h ^= bytes.size() * 0x100000001b3ull;
  return h;
}

/// Slurps `path`; nullopt when it cannot be opened (caller falls back
/// to the canonical loader for its error message).
std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return os.str();
}

}  // namespace

std::shared_ptr<const radius::FepiaProblem> SessionCache::problem(
    const std::string& path) {
  const std::optional<std::string> bytes = slurp(path);
  if (!bytes.has_value()) {
    // Unreadable: produce the exact io::loadProblem diagnostic.
    return std::make_shared<const radius::FepiaProblem>(
        io::loadProblem(path));
  }
  const std::uint64_t key = contentKey(*bytes);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = problems_.find(key);
    if (it != problems_.end()) {
      problemHits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Parse outside the lock (same parser as the CLI, so parse errors are
  // byte-identical); a racing request may parse the same bytes twice —
  // both parses are identical, first insert wins.
  auto parsed = std::make_shared<const radius::FepiaProblem>(
      io::parseProblemString(*bytes));
  const std::lock_guard<std::mutex> lock(mutex_);
  problemMisses_.fetch_add(1, std::memory_order_relaxed);
  return problems_.emplace(key, std::move(parsed)).first->second;
}

std::shared_ptr<const hiperd::ReferenceSystem> SessionCache::system(
    const std::string& path) {
  const std::optional<std::string> bytes = slurp(path);
  if (!bytes.has_value()) {
    return std::make_shared<const hiperd::ReferenceSystem>(
        io::loadSystem(path));
  }
  const std::uint64_t key = contentKey(*bytes);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = systems_.find(key);
    if (it != systems_.end()) {
      systemHits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  auto parsed = std::make_shared<const hiperd::ReferenceSystem>(
      io::parseSystemString(*bytes));
  const std::lock_guard<std::mutex> lock(mutex_);
  systemMisses_.fetch_add(1, std::memory_order_relaxed);
  return systems_.emplace(key, std::move(parsed)).first->second;
}

SessionCache::Stats SessionCache::stats() const noexcept {
  Stats s;
  s.problemHits = problemHits_.load(std::memory_order_relaxed);
  s.problemMisses = problemMisses_.load(std::memory_order_relaxed);
  s.systemHits = systemHits_.load(std::memory_order_relaxed);
  s.systemMisses = systemMisses_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fepia::server
