// Warm state a resident fepiad keeps between requests: parsed problem
// and system files keyed by *content* hash, plus the sweep result cache
// shared across runSweep calls.
//
// Content keying is what makes the cache byte-invisible: every request
// re-reads the file and re-hashes its bytes, so an edited file is
// re-parsed (no stale-mtime hazard) while an unchanged file costs one
// read + hash instead of a full parse. Parse results are immutable
// shared_ptr<const T>, so concurrent requests share them freely.
//
// Error behavior matches the one-shot CLI exactly: an unreadable path
// falls through to io::loadProblem / io::loadSystem so the diagnostic
// text is the canonical one, and parse errors (io::ParseError with a
// line number) come from the same parser the CLI uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "hiperd/factory.hpp"
#include "radius/fepia.hpp"
#include "sweep/cache.hpp"

namespace fepia::server {

class SessionCache {
 public:
  /// Parsed problem for `path`'s current content (parses on first
  /// sight of these bytes). Throws exactly what io::loadProblem would.
  [[nodiscard]] std::shared_ptr<const radius::FepiaProblem> problem(
      const std::string& path);

  /// Parsed reference system, same contract as problem().
  [[nodiscard]] std::shared_ptr<const hiperd::ReferenceSystem> system(
      const std::string& path);

  /// The cross-request sweep sub-computation cache (content-keyed, see
  /// sweep::SweepOptions::sharedCache).
  [[nodiscard]] sweep::ResultCache& sweepCache() noexcept {
    return sweepCache_;
  }

  struct Stats {
    std::uint64_t problemHits = 0;
    std::uint64_t problemMisses = 0;
    std::uint64_t systemHits = 0;
    std::uint64_t systemMisses = 0;
  };
  [[nodiscard]] Stats stats() const noexcept;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const radius::FepiaProblem>>
      problems_;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const hiperd::ReferenceSystem>>
      systems_;
  sweep::ResultCache sweepCache_{true};
  std::atomic<std::uint64_t> problemHits_{0};
  std::atomic<std::uint64_t> problemMisses_{0};
  std::atomic<std::uint64_t> systemHits_{0};
  std::atomic<std::uint64_t> systemMisses_{0};
};

}  // namespace fepia::server
