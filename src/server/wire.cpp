#include "server/wire.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <locale.h>  // newlocale/strtod_l (POSIX)

#include "obs/json.hpp"

namespace fepia::server {
namespace {

/// Matches obs::isValidJson's depth cap: deeper documents are rejected,
/// never recursed into (requests are flat; this only bounds adversarial
/// input).
constexpr int kMaxDepth = 64;

/// from_chars reports overflow and underflow identically
/// (result_out_of_range, value left unmodified on GCC), so it cannot
/// saturate by itself. strtod in a pinned C locale — never the
/// process locale, whose decimal point may differ — supplies the
/// behavior every JSON reader has in practice: overflow → ±HUGE_VAL,
/// gradual underflow → ±0/denormal. Same idiom as io/parse.cpp.
double strtodCLocale(const char* nptr, char** endptr) {
  static const locale_t cLocale = ::newlocale(LC_ALL_MASK, "C", nullptr);
  if (cLocale != static_cast<locale_t>(nullptr)) {
    return ::strtod_l(nptr, endptr, cLocale);
  }
  return std::strtod(nptr, endptr);  // out of memory: best effort
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!parseValue(v, 0)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = "trailing garbage after JSON document";
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* message) {
    error_ = std::string(message) + " at byte " + std::to_string(pos_);
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool parseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skipWs();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out.kind = JsonValue::Kind::Null;
        return literal("null");
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case '"':
        out.kind = JsonValue::Kind::String;
        return parseString(out.string);
      case '[':
        return parseArray(out, depth);
      case '{':
        return parseObject(out, depth);
      default:
        return parseNumber(out);
    }
  }

  bool parseNumber(JsonValue& out) {
    // Validate the JSON number grammar by hand (from_chars is laxer:
    // it accepts "1." and leading '+'), then convert the exact token.
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    std::size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return fail("bad number");
    if (digits > 1 && text_[start + (text_[start] == '-' ? 1u : 0u)] == '0') {
      return fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      std::size_t frac = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++frac;
      }
      if (frac == 0) return fail("bad number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      std::size_t exp = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++exp;
      }
      if (exp == 0) return fail("bad number");
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ptr != last ||
        (ec != std::errc() && ec != std::errc::result_out_of_range)) {
      return fail("bad number");
    }
    // Overflow saturates to +-inf, underflow to +-0, like every JSON
    // reader in practice; from_chars flags both without distinguishing
    // them (and stores nothing), so re-convert the validated token.
    if (ec == std::errc::result_out_of_range) {
      const std::string token(first, last);
      char* end = nullptr;
      value = strtodCLocale(token.c_str(), &end);
      if (end != token.c_str() + token.size()) return fail("bad number");
    }
    out.kind = JsonValue::Kind::Number;
    out.number = value;
    return true;
  }

  static void appendUtf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parseHex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    return true;
  }

  bool parseString(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parseHex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate — requires a paired \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!parseHex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          appendUtf8(out, cp);
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind = JsonValue::Kind::Array;
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue elem;
      if (!parseValue(elem, depth + 1)) return false;
      out.array.push_back(std::move(elem));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::Object;
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parseString(key)) return false;
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      JsonValue value;
      if (!parseValue(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void serializeInto(std::ostream& os, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::Null:
      os << "null";
      break;
    case JsonValue::Kind::Bool:
      os << (v.boolean ? "true" : "false");
      break;
    case JsonValue::Kind::Number:
      obs::writeJsonNumber(os, v.number);
      break;
    case JsonValue::Kind::String:
      obs::writeJsonString(os, v.string);
      break;
    case JsonValue::Kind::Array: {
      os << '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) os << ',';
        serializeInto(os, v.array[i]);
      }
      os << ']';
      break;
    }
    case JsonValue::Kind::Object: {
      os << '{';
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        if (i > 0) os << ',';
        obs::writeJsonString(os, v.object[i].first);
        os << ':';
        serializeInto(os, v.object[i].second);
      }
      os << '}';
      break;
    }
  }
}

/// Reads exactly `n` bytes, retrying on EINTR. Returns the byte count
/// actually read (< n only on EOF) or -1 on a read error.
ssize_t readFull(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

bool writeAll(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, never SIGPIPE —
    // the server must survive clients vanishing mid-response.
    const ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<JsonValue> parseJson(const std::string& text,
                                   std::string* error) {
  return Parser(text).parse(error);
}

std::string serializeJson(const JsonValue& value) {
  std::ostringstream os;
  serializeInto(os, value);
  return os.str();
}

Frame readFrame(int fd, std::size_t maxBytes) {
  Frame frame;
  unsigned char prefix[4];
  const ssize_t got =
      readFull(fd, reinterpret_cast<char*>(prefix), sizeof(prefix));
  if (got < 0) {
    frame.status = FrameStatus::IoError;
    return frame;
  }
  if (got == 0) {
    frame.status = FrameStatus::Eof;
    return frame;
  }
  if (got < static_cast<ssize_t>(sizeof(prefix))) {
    frame.status = FrameStatus::Truncated;
    return frame;
  }
  const std::uint32_t n = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                          (static_cast<std::uint32_t>(prefix[1]) << 16) |
                          (static_cast<std::uint32_t>(prefix[2]) << 8) |
                          static_cast<std::uint32_t>(prefix[3]);
  frame.declaredBytes = n;
  if (n > maxBytes) {
    // The payload is deliberately not consumed: a multi-gigabyte
    // declared length must not make the server read it all just to
    // resync. The connection is unusable after this.
    frame.status = FrameStatus::Oversized;
    return frame;
  }
  frame.payload.resize(n);
  const ssize_t body = n == 0 ? 0 : readFull(fd, frame.payload.data(), n);
  if (body < 0) {
    frame.status = FrameStatus::IoError;
    return frame;
  }
  if (body < static_cast<ssize_t>(n)) {
    frame.status = FrameStatus::Truncated;
    return frame;
  }
  frame.status = FrameStatus::Ok;
  return frame;
}

std::string encodeFrame(const std::string& payload) {
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(payload.size() + 4);
  out += static_cast<char>((n >> 24) & 0xFF);
  out += static_cast<char>((n >> 16) & 0xFF);
  out += static_cast<char>((n >> 8) & 0xFF);
  out += static_cast<char>(n & 0xFF);
  out += payload;
  return out;
}

bool writeFrame(int fd, const std::string& payload) {
  const std::string framed = encodeFrame(payload);
  return writeAll(fd, framed.data(), framed.size());
}

int connectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connectHost(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return -1;
  }
  int fd = -1;
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

}  // namespace fepia::server
