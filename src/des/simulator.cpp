#include "des/simulator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace fepia::des {

void Simulator::schedule(double delay, Action action) {
  if (delay < 0.0 || !std::isfinite(delay)) {
    throw std::invalid_argument("des::Simulator::schedule: bad delay");
  }
  if (!action) {
    throw std::invalid_argument("des::Simulator::schedule: null action");
  }
  queue_.push(Event{now_ + delay, nextSeq_++, std::move(action)});
  if (queue_.size() > queueHighWater_) queueHighWater_ = queue_.size();
}

std::size_t Simulator::run(std::size_t maxEvents) {
  std::size_t processed = 0;
  while (!queue_.empty() && processed < maxEvents) {
    // priority_queue::top is const; the action must be moved out via a
    // copy of the handle before pop.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
    ++processed;
    ++eventsProcessed_;
  }
  return processed;
}

void Simulator::exportMetrics(obs::Registry& out) const {
  out.counters().bump("des.events_processed", eventsProcessed_);
  out.maxGauge("des.queue_high_water",
               static_cast<double>(queueHighWater_));
}

FifoResource::FifoResource(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void FifoResource::submit(double serviceTime, Simulator::Action onComplete) {
  if (serviceTime < 0.0 || !std::isfinite(serviceTime)) {
    throw std::invalid_argument("des::FifoResource::submit: bad service time");
  }
  const double start = std::max(sim_.now(), busyUntil_);
  busyUntil_ = start + serviceTime;
  busy_ += serviceTime;
  ++jobs_;
  sim_.schedule(busyUntil_ - sim_.now(), std::move(onComplete));
}

}  // namespace fepia::des
