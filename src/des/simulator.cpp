#include "des/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace fepia::des {

EventId Simulator::schedule(double delay, Action action) {
  if (delay < 0.0 || !std::isfinite(delay)) {
    throw std::invalid_argument("des::Simulator::schedule: bad delay");
  }
  if (!action) {
    throw std::invalid_argument("des::Simulator::schedule: null action");
  }
  const EventId id = nextSeq_++;
  queue_.push_back(Event{now_ + delay, id, std::move(action)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  const std::size_t live = queue_.size() - cancelled_.size();
  if (live > queueHighWater_) queueHighWater_ = live;
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id >= nextSeq_) return false;  // never scheduled
  // A tombstone is only meaningful while the event is still queued; an
  // already-fired id would poison a future id otherwise — but ids are
  // never reused, so membership in the queue is the only question.
  const bool pending =
      std::any_of(queue_.begin(), queue_.end(),
                  [id](const Event& e) { return e.seq == id; });
  if (!pending) return false;
  if (!cancelled_.insert(id).second) return false;  // cancelled twice
  ++eventsCancelled_;
  return true;
}

std::size_t Simulator::run(std::size_t maxEvents) {
  std::size_t processed = 0;
  while (!queue_.empty() && processed < maxEvents) {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) {
      continue;  // tombstoned: drop without advancing the clock
    }
    now_ = ev.time;
    ev.action();
    ++processed;
    ++eventsProcessed_;
  }
  return processed;
}

void Simulator::exportMetrics(obs::Registry& out) const {
  out.counters().bump("des.events_processed", eventsProcessed_);
  out.counters().bump("des.events_cancelled", eventsCancelled_);
  out.maxGauge("des.queue_high_water",
               static_cast<double>(queueHighWater_));
}

FifoResource::FifoResource(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void FifoResource::submit(double serviceTime, Simulator::Action onComplete) {
  if (serviceTime < 0.0 || !std::isfinite(serviceTime)) {
    throw std::invalid_argument("des::FifoResource::submit: bad service time");
  }
  const double start = std::max(sim_.now(), busyUntil_);
  busyUntil_ = start + serviceTime;
  busy_ += serviceTime;
  ++jobs_;
  sim_.schedule(busyUntil_ - sim_.now(), std::move(onComplete));
}

}  // namespace fepia::des
