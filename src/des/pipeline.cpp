#include "des/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "des/simulator.hpp"
#include "obs/span.hpp"
#include "rng/distributions.hpp"

namespace fepia::des {

namespace {

/// Least-squares slope of y against its index.
double slope(const std::vector<double>& y) {
  const std::size_t n = y.size();
  if (n < 2) return 0.0;
  const double nn = static_cast<double>(n);
  const double meanX = (nn - 1.0) / 2.0;
  double meanY = 0.0;
  for (double v : y) meanY += v;
  meanY /= nn;
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - meanX;
    sxy += dx * (y[i] - meanY);
    sxx += dx * dx;
  }
  return sxx == 0.0 ? 0.0 : sxy / sxx;
}

}  // namespace

PipelineResult simulatePipeline(const hiperd::System& sys,
                                const la::Vector& execSeconds,
                                const la::Vector& messageBytes,
                                double arrivalRate,
                                const PipelineOptions& opts) {
  const std::size_t nA = sys.applicationCount();
  const std::size_t nM = sys.messageCount();
  if (execSeconds.size() != nA) {
    throw std::invalid_argument("des::simulatePipeline: one time per app");
  }
  if (messageBytes.size() != nM) {
    throw std::invalid_argument("des::simulatePipeline: one size per message");
  }
  if (arrivalRate <= 0.0 || !std::isfinite(arrivalRate)) {
    throw std::invalid_argument("des::simulatePipeline: bad arrival rate");
  }
  if (opts.generations == 0) {
    throw std::invalid_argument("des::simulatePipeline: zero generations");
  }
  for (double e : execSeconds) {
    if (e < 0.0) throw std::invalid_argument("des::simulatePipeline: negative time");
  }
  for (double b : messageBytes) {
    if (b < 0.0) throw std::invalid_argument("des::simulatePipeline: negative size");
  }

  if (opts.serviceJitterCov < 0.0) {
    throw std::invalid_argument("des::simulatePipeline: negative jitter CoV");
  }

  const double period = 1.0 / arrivalRate;
  const std::size_t gens = opts.generations;

  // Per-job multiplicative service noise (mean 1); deterministic when
  // the CoV is zero.
  rng::Xoshiro256StarStar jitterGen(opts.jitterSeed);
  const auto jitter = [&]() {
    return opts.serviceJitterCov > 0.0
               ? rng::gammaMeanCov(jitterGen, 1.0, opts.serviceJitterCov)
               : 1.0;
  };

  Simulator sim;
  std::vector<FifoResource> machines;
  machines.reserve(sys.machineCount());
  for (std::size_t m = 0; m < sys.machineCount(); ++m) {
    machines.emplace_back(sim, sys.machine(m).name);
  }
  std::vector<FifoResource> links;
  links.reserve(sys.linkCount());
  for (std::size_t l = 0; l < sys.linkCount(); ++l) {
    links.emplace_back(sim, sys.link(l).name);
  }

  // Static DAG wiring.
  std::vector<std::size_t> inDegree(nA, 0);
  std::vector<std::vector<std::size_t>> outgoing(nA);  // app -> message ids
  for (std::size_t k = 0; k < nM; ++k) {
    ++inDegree[sys.message(k).dstApp];
    outgoing[sys.message(k).srcApp].push_back(k);
  }

  // The pipeline protocol requires an acyclic message graph: an app in a
  // cycle would wait forever for its own downstream output (deadlock).
  // Detect via Kahn's algorithm and fail loudly instead.
  {
    std::vector<std::size_t> degree = inDegree;
    std::vector<std::size_t> ready;
    for (std::size_t a = 0; a < nA; ++a) {
      if (degree[a] == 0) ready.push_back(a);
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
      const std::size_t a = ready.back();
      ready.pop_back();
      ++visited;
      for (std::size_t k : outgoing[a]) {
        if (--degree[sys.message(k).dstApp] == 0) {
          ready.push_back(sys.message(k).dstApp);
        }
      }
    }
    if (visited != nA) {
      throw std::invalid_argument(
          "des::simulatePipeline: the message graph contains a cycle; the "
          "pipeline protocol requires a DAG");
    }
  }

  // Per-generation progress. arrived[a] counts input messages received
  // for the generation currently pending at app a; finish[a][g] is the
  // completion time of app a on generation g.
  std::vector<std::vector<std::size_t>> arrived(nA,
                                                std::vector<std::size_t>(gens, 0));
  std::vector<std::vector<double>> finish(nA,
                                          std::vector<double>(gens, -1.0));

  // Forward declaration glue for the recursive event chain. Every event
  // fires inside sim.run() below, so the hooks can live on the stack and
  // the closures capture them by reference; capturing an owning handle
  // here would make the stored std::functions own their own container.
  struct Hooks {
    std::function<void(std::size_t, std::size_t)> startApp;
    std::function<void(std::size_t, std::size_t)> appDone;
  };
  Hooks hooks;

  hooks.startApp = [&](std::size_t a, std::size_t g) {
    machines[sys.application(a).machine].submit(
        execSeconds[a] * jitter(), [&, a, g] { hooks.appDone(a, g); });
  };

  hooks.appDone = [&](std::size_t a, std::size_t g) {
    finish[a][g] = sim.now();
    for (std::size_t k : outgoing[a]) {
      const std::size_t dst = sys.message(k).dstApp;
      const double serviceTime =
          messageBytes[k] / sys.link(sys.message(k).link).bandwidthBytesPerSec;
      links[sys.message(k).link].submit(
          serviceTime * jitter(), [&, dst, g] {
            if (++arrived[dst][g] == inDegree[dst]) hooks.startApp(dst, g);
          });
    }
  };

  // Sensors emit synchronized generations; source apps (no message
  // inputs) become eligible at the emission instant.
  for (std::size_t g = 0; g < gens; ++g) {
    const double emitTime = static_cast<double>(g) * period;
    sim.schedule(emitTime, [&, g] {
      for (std::size_t a = 0; a < nA; ++a) {
        if (inDegree[a] == 0) hooks.startApp(a, g);
      }
    });
  }

  {
    FEPIA_SPAN_ARG("des.pipeline", "generations", gens);
    sim.run();
  }

  PipelineResult res;
  res.generations = gens;
  res.simulatedSeconds = sim.now();
  res.eventsProcessed = sim.eventsProcessed();
  res.queueHighWater = sim.queueHighWater();

  const auto warmup = static_cast<std::size_t>(
      opts.warmupFraction * static_cast<double>(gens));
  double worstSlope = 0.0;
  for (std::size_t p = 0; p < sys.pathCount(); ++p) {
    const std::size_t lastApp = sys.path(p).apps.back();
    std::vector<double> lat;
    lat.reserve(gens - warmup);
    for (std::size_t g = warmup; g < gens; ++g) {
      if (finish[lastApp][g] < 0.0) {
        ++res.incompleteObservations;  // should not happen on a DAG
        continue;
      }
      lat.push_back(finish[lastApp][g] - static_cast<double>(g) * period);
    }
    worstSlope = std::max(worstSlope, slope(lat));
    for (double v : lat) res.maxObservedLatency = std::max(res.maxObservedLatency, v);
    res.pathLatencies.push_back(std::move(lat));
  }
  res.latencyGrowthPerGeneration = worstSlope;
  res.throughputSustained =
      worstSlope * static_cast<double>(gens) <= opts.driftTolerance * period;

  const double span = res.simulatedSeconds > 0.0 ? res.simulatedSeconds : 1.0;
  for (const FifoResource& r : machines) {
    res.machineUtilization.push_back(r.busyTime() / span);
  }
  for (const FifoResource& r : links) {
    res.linkUtilization.push_back(r.busyTime() / span);
  }
  return res;
}

PipelineResult simulateAtLoads(const hiperd::System& sys,
                               const la::Vector& loads, double arrivalRate,
                               const PipelineOptions& opts) {
  la::Vector exec(sys.applicationCount());
  for (std::size_t a = 0; a < exec.size(); ++a) {
    exec[a] = sys.appComputeSeconds(a, loads);
  }
  la::Vector bytes(sys.messageCount());
  for (std::size_t k = 0; k < bytes.size(); ++k) {
    bytes[k] = sys.messageBytes(k, loads);
  }
  return simulatePipeline(sys, exec, bytes, arrivalRate, opts);
}

}  // namespace fepia::des
