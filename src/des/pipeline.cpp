#include "des/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "des/simulator.hpp"
#include "obs/span.hpp"
#include "rng/distributions.hpp"

namespace fepia::des {

namespace {

/// Least-squares slope of y against its index.
double slope(const std::vector<double>& y) {
  const std::size_t n = y.size();
  if (n < 2) return 0.0;
  const double nn = static_cast<double>(n);
  const double meanX = (nn - 1.0) / 2.0;
  double meanY = 0.0;
  for (double v : y) meanY += v;
  meanY /= nn;
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - meanX;
    sxy += dx * (y[i] - meanY);
    sxx += dx * dx;
  }
  return sxx == 0.0 ? 0.0 : sxy / sxx;
}

}  // namespace

PipelineResult simulatePipeline(const hiperd::System& sys,
                                const la::Vector& execSeconds,
                                const la::Vector& messageBytes,
                                double arrivalRate,
                                const PipelineOptions& opts) {
  const std::size_t nA = sys.applicationCount();
  const std::size_t nM = sys.messageCount();
  if (execSeconds.size() != nA) {
    throw std::invalid_argument("des::simulatePipeline: one time per app");
  }
  if (messageBytes.size() != nM) {
    throw std::invalid_argument("des::simulatePipeline: one size per message");
  }
  if (arrivalRate <= 0.0 || !std::isfinite(arrivalRate)) {
    throw std::invalid_argument("des::simulatePipeline: bad arrival rate");
  }
  if (opts.generations == 0) {
    throw std::invalid_argument("des::simulatePipeline: zero generations");
  }
  for (double e : execSeconds) {
    if (e < 0.0) throw std::invalid_argument("des::simulatePipeline: negative time");
  }
  for (double b : messageBytes) {
    if (b < 0.0) throw std::invalid_argument("des::simulatePipeline: negative size");
  }

  if (opts.serviceJitterCov < 0.0) {
    throw std::invalid_argument("des::simulatePipeline: negative jitter CoV");
  }

  const double period = 1.0 / arrivalRate;
  const std::size_t gens = opts.generations;

  // Per-job multiplicative service noise (mean 1); deterministic when
  // the CoV is zero.
  rng::Xoshiro256StarStar jitterGen(opts.jitterSeed);
  const auto jitter = [&]() {
    return opts.serviceJitterCov > 0.0
               ? rng::gammaMeanCov(jitterGen, 1.0, opts.serviceJitterCov)
               : 1.0;
  };

  Simulator sim;
  std::vector<FifoResource> machines;
  machines.reserve(sys.machineCount());
  for (std::size_t m = 0; m < sys.machineCount(); ++m) {
    machines.emplace_back(sim, sys.machine(m).name);
  }
  std::vector<FifoResource> links;
  links.reserve(sys.linkCount());
  for (std::size_t l = 0; l < sys.linkCount(); ++l) {
    links.emplace_back(sim, sys.link(l).name);
  }

  // Static DAG wiring.
  std::vector<std::size_t> inDegree(nA, 0);
  std::vector<std::vector<std::size_t>> outgoing(nA);  // app -> message ids
  for (std::size_t k = 0; k < nM; ++k) {
    ++inDegree[sys.message(k).dstApp];
    outgoing[sys.message(k).srcApp].push_back(k);
  }

  // The pipeline protocol requires an acyclic message graph: an app in a
  // cycle would wait forever for its own downstream output (deadlock).
  // Detect via Kahn's algorithm and fail loudly instead.
  {
    std::vector<std::size_t> degree = inDegree;
    std::vector<std::size_t> ready;
    for (std::size_t a = 0; a < nA; ++a) {
      if (degree[a] == 0) ready.push_back(a);
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
      const std::size_t a = ready.back();
      ready.pop_back();
      ++visited;
      for (std::size_t k : outgoing[a]) {
        if (--degree[sys.message(k).dstApp] == 0) {
          ready.push_back(sys.message(k).dstApp);
        }
      }
    }
    if (visited != nA) {
      throw std::invalid_argument(
          "des::simulatePipeline: the message graph contains a cycle; the "
          "pipeline protocol requires a DAG");
    }
  }

  // Per-generation progress. arrived[a] counts input messages received
  // for the generation currently pending at app a; finish[a][g] is the
  // completion time of app a on generation g.
  std::vector<std::vector<std::size_t>> arrived(nA,
                                                std::vector<std::size_t>(gens, 0));
  std::vector<std::vector<double>> finish(nA,
                                          std::vector<double>(gens, -1.0));

  FaultCounters fc;
  // Fault-path machine accounting: FifoResource cannot model a server
  // that dies mid-service, so crashes get explicit busy/queue state.
  struct MachineSrv {
    double busyUntil = 0.0;
    double busy = 0.0;
  };
  std::vector<MachineSrv> msrv(opts.faults != nullptr ? sys.machineCount() : 0);

  // Forward declaration glue for the recursive event chain. Every event
  // fires inside sim.run() below, so the hooks can live on the stack and
  // the closures capture them by reference; capturing an owning handle
  // here would make the stored std::functions own their own container.
  struct Hooks {
    std::function<void(std::size_t, std::size_t)> startApp;
    std::function<void(std::size_t, std::size_t)> appDone;
    // Fault path only: dispatch / failover / (re)transmit.
    std::function<void(std::size_t, std::size_t, std::size_t, std::size_t)>
        dispatch;
    std::function<void(std::size_t, std::size_t, std::size_t, std::size_t)>
        failover;
    std::function<void(std::size_t, std::size_t, std::size_t)> sendMessage;
  };
  Hooks hooks;

  if (opts.faults == nullptr) {
    hooks.startApp = [&](std::size_t a, std::size_t g) {
      machines[sys.application(a).machine].submit(
          execSeconds[a] * jitter(), [&, a, g] { hooks.appDone(a, g); });
    };

    hooks.appDone = [&](std::size_t a, std::size_t g) {
      finish[a][g] = sim.now();
      for (std::size_t k : outgoing[a]) {
        const std::size_t dst = sys.message(k).dstApp;
        const double serviceTime =
            messageBytes[k] / sys.link(sys.message(k).link).bandwidthBytesPerSec;
        links[sys.message(k).link].submit(
            serviceTime * jitter(), [&, dst, g] {
              if (++arrived[dst][g] == inDegree[dst]) hooks.startApp(dst, g);
            });
      }
    };
  } else {
    const FaultInjector& F = *opts.faults;

    // A compute job headed for machine `m`. Because service demands are
    // known at dispatch and service is FIFO non-preemptive, the job's
    // start and completion times are decided here — so whether the crash
    // of `m` catches the job (while queued or in service) is decided
    // here too, without rewinding the server.
    hooks.dispatch = [&](std::size_t a, std::size_t g, std::size_t m,
                         std::size_t hops) {
      const double tc = F.crashTime(m);
      const double now = sim.now();
      if (now >= tc) {
        // Dispatched to a machine that is already down: fail over. The
        // failover hook charges the detection delay only while the
        // failure is not yet known.
        hooks.failover(a, g, m, hops);
        return;
      }
      MachineSrv& s = msrv[m];
      const double start = std::max(now, s.busyUntil);
      const double service =
          execSeconds[a] * F.computeFactor(m, start) * jitter();
      if (!(service >= 0.0) || !std::isfinite(service)) {
        throw std::invalid_argument(
            "des::simulatePipeline: fault injector produced a bad compute "
            "factor");
      }
      const double ct = start + service;
      if (start >= tc || ct > tc) {
        // The crash catches the job in queue or mid-service: work done
        // up to the crash is wasted, and the machine serves nothing
        // afterwards. Failure manifests at the crash instant.
        s.busy += std::max(0.0, std::min(ct, tc) - start);
        s.busyUntil = tc;
        hooks.failover(a, g, m, hops);
        return;
      }
      s.busyUntil = ct;
      s.busy += service;
      sim.schedule(ct - now, [&, a, g] { hooks.appDone(a, g); });
    };

    hooks.failover = [&](std::size_t a, std::size_t g, std::size_t from,
                         std::size_t hops) {
      const std::optional<std::size_t> backup = F.backupFor(from);
      // The hop cap breaks crash chains that cycle through dead
      // machines (with a zero detection timeout such a cycle would spin
      // at one simulation instant forever).
      if (!backup.has_value() || hops + 1 >= sys.machineCount()) {
        ++fc.unrecoveredJobs;  // the generation surfaces as incomplete
        return;
      }
      ++fc.failovers;
      // The crash of `from` is detected (and becomes common knowledge)
      // one detection timeout after it happens. Jobs stranded before
      // that wait for detection; jobs dispatched once the failure is
      // known reroute to the backup immediately.
      const double detectedAt = F.crashTime(from) + F.detectionTimeout();
      sim.schedule(std::max(0.0, detectedAt - sim.now()),
                   [&, a, g, b = *backup, hops] {
                     hooks.dispatch(a, g, b, hops + 1);
                   });
    };

    hooks.startApp = [&](std::size_t a, std::size_t g) {
      hooks.dispatch(a, g, sys.application(a).machine, 0);
    };

    // Transfer attempt `attempt` (0-based) of message k, generation g.
    // A lost attempt still occupied the link (the bytes were sent; the
    // loss is discovered at the receiving end), then backs off and
    // retransmits until the retry budget runs out.
    hooks.sendMessage = [&](std::size_t k, std::size_t g,
                            std::size_t attempt) {
      const std::size_t l = sys.message(k).link;
      const double base =
          messageBytes[k] / sys.link(l).bandwidthBytesPerSec;
      const double startEst = std::max(sim.now(), links[l].busyUntil());
      const double service = base * F.transferFactor(l, startEst) * jitter();
      links[l].submit(service, [&, k, g, attempt] {
        if (F.messageLost(k, g, attempt)) {
          ++fc.lostMessages;
          if (attempt >= F.maxRetries()) {
            ++fc.droppedMessages;  // receiver never fires for this gen
            return;
          }
          ++fc.retries;
          const double backoff = F.retryBackoff(attempt);
          fc.backoffWaitSeconds += backoff;
          sim.schedule(backoff, [&, k, g, attempt] {
            hooks.sendMessage(k, g, attempt + 1);
          });
          return;
        }
        const std::size_t dst = sys.message(k).dstApp;
        if (++arrived[dst][g] == inDegree[dst]) hooks.startApp(dst, g);
      });
    };

    hooks.appDone = [&](std::size_t a, std::size_t g) {
      finish[a][g] = sim.now();
      for (std::size_t k : outgoing[a]) hooks.sendMessage(k, g, 0);
    };
  }

  // Sensors emit synchronized generations; source apps (no message
  // inputs) become eligible at the emission instant.
  for (std::size_t g = 0; g < gens; ++g) {
    const double emitTime = static_cast<double>(g) * period;
    sim.schedule(emitTime, [&, g] {
      for (std::size_t a = 0; a < nA; ++a) {
        if (inDegree[a] == 0) hooks.startApp(a, g);
      }
    });
  }

  {
    FEPIA_SPAN_ARG("des.pipeline", "generations", gens);
    sim.run();
  }

  PipelineResult res;
  res.generations = gens;
  res.simulatedSeconds = sim.now();
  res.eventsProcessed = sim.eventsProcessed();
  res.queueHighWater = sim.queueHighWater();

  const auto warmup = static_cast<std::size_t>(
      opts.warmupFraction * static_cast<double>(gens));
  double worstSlope = 0.0;
  for (std::size_t p = 0; p < sys.pathCount(); ++p) {
    const std::size_t lastApp = sys.path(p).apps.back();
    std::vector<double> lat;
    lat.reserve(gens - warmup);
    for (std::size_t g = warmup; g < gens; ++g) {
      if (finish[lastApp][g] < 0.0) {
        ++res.incompleteObservations;  // lost to a fault, or bad wiring
        continue;
      }
      lat.push_back(finish[lastApp][g] - static_cast<double>(g) * period);
    }
    worstSlope = std::max(worstSlope, slope(lat));
    for (double v : lat) res.maxObservedLatency = std::max(res.maxObservedLatency, v);
    res.pathLatencies.push_back(std::move(lat));
  }
  res.latencyGrowthPerGeneration = worstSlope;
  res.throughputSustained =
      worstSlope * static_cast<double>(gens) <= opts.driftTolerance * period;

  const double span = res.simulatedSeconds > 0.0 ? res.simulatedSeconds : 1.0;
  if (opts.faults == nullptr) {
    for (const FifoResource& r : machines) {
      res.machineUtilization.push_back(r.busyTime() / span);
    }
  } else {
    for (const MachineSrv& s : msrv) {
      res.machineUtilization.push_back(s.busy / span);
    }
    // Machine-seconds of downtime within the simulated horizon.
    for (std::size_t m = 0; m < sys.machineCount(); ++m) {
      const double tc = opts.faults->crashTime(m);
      if (tc < res.simulatedSeconds) {
        fc.downtimeSeconds += res.simulatedSeconds - tc;
      }
    }
  }
  for (const FifoResource& r : links) {
    res.linkUtilization.push_back(r.busyTime() / span);
  }
  res.faults = fc;
  return res;
}

PipelineResult simulateAtLoads(const hiperd::System& sys,
                               const la::Vector& loads, double arrivalRate,
                               const PipelineOptions& opts) {
  la::Vector exec(sys.applicationCount());
  for (std::size_t a = 0; a < exec.size(); ++a) {
    exec[a] = sys.appComputeSeconds(a, loads);
  }
  la::Vector bytes(sys.messageCount());
  for (std::size_t k = 0; k < bytes.size(); ++k) {
    bytes[k] = sys.messageBytes(k, loads);
  }
  return simulatePipeline(sys, exec, bytes, arrivalRate, opts);
}

}  // namespace fepia::des
