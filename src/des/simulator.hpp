// Minimal discrete-event simulation kernel: a time-ordered event queue
// and single-server FIFO resources.
//
// The VAL experiment uses this to check the analytic robust region
// empirically: the HiPer-D pipeline is executed as a real queueing
// system, and QoS violations observed in simulation are compared with
// the radius-based prediction. The fault-injection layer (src/fault)
// additionally cancels in-flight events when a machine crashes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"

namespace fepia::des {

/// Handle to a scheduled event, usable with Simulator::cancel.
using EventId = std::uint64_t;

/// Event-driven simulation clock and scheduler.
///
/// Ordering contract: events fire in nondecreasing time, and events at
/// exactly equal times fire in scheduling order (FIFO). The tie-break is
/// an explicit monotonic sequence number carried by every event — not an
/// accident of the heap implementation — so fault-injected runs, which
/// create bursts of same-instant cancel/failover events, are
/// deterministic by construction.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulation time (seconds).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` seconds from now; returns a
  /// handle for cancel(). Throws std::invalid_argument for negative or
  /// non-finite delay.
  EventId schedule(double delay, Action action);

  /// Cancels a pending event. Returns true when the event was still
  /// pending (it will be silently skipped); false when it already fired,
  /// was already cancelled, or never existed. Cancellation is lazy: the
  /// tombstone is resolved when the event surfaces at the queue head.
  bool cancel(EventId id);

  /// Runs until the queue drains or `maxEvents` were processed.
  /// Returns the number of events processed (cancelled events are
  /// skipped and do not count).
  std::size_t run(std::size_t maxEvents = static_cast<std::size_t>(-1));

  [[nodiscard]] bool empty() const noexcept {
    return queue_.size() == cancelled_.size();
  }

  /// Events processed over the simulator's lifetime (all run() calls).
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept {
    return eventsProcessed_;
  }
  /// Events cancelled over the simulator's lifetime.
  [[nodiscard]] std::uint64_t eventsCancelled() const noexcept {
    return eventsCancelled_;
  }
  /// Largest event-queue depth ever observed (updated on schedule()).
  [[nodiscard]] std::size_t queueHighWater() const noexcept {
    return queueHighWater_;
  }

  /// Bumps "des.events_processed" / "des.events_cancelled" and sets
  /// gauge "des.queue_high_water".
  void exportMetrics(obs::Registry& out) const;

 private:
  struct Event {
    double time;
    EventId seq;
    Action action;
  };
  /// Min-heap order: earliest time first, lowest sequence number (FIFO)
  /// on equal times. Written as the std::push_heap "less" comparator,
  /// i.e. true when `a` should surface *after* `b`.
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  double now_ = 0.0;
  EventId nextSeq_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::uint64_t eventsCancelled_ = 0;
  std::size_t queueHighWater_ = 0;
  // Manual heap (std::push_heap/pop_heap over a vector) instead of
  // std::priority_queue: the top element can be moved out before pop —
  // no copy of the stored std::function per event — and cancelled
  // entries can be dropped as they surface.
  std::vector<Event> queue_;
  std::unordered_set<EventId> cancelled_;
};

/// A single-server FIFO resource (a machine or a network link). Jobs are
/// served in submission order; service starts when the server frees up.
class FifoResource {
 public:
  FifoResource(Simulator& sim, std::string name);

  /// Submits a job with the given service time; `onComplete` fires at
  /// departure. Throws std::invalid_argument for negative service time.
  void submit(double serviceTime, Simulator::Action onComplete);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Total busy (serving) time accumulated.
  [[nodiscard]] double busyTime() const noexcept { return busy_; }
  [[nodiscard]] std::size_t jobsServed() const noexcept { return jobs_; }
  /// Time at which the server next becomes idle (>= now when busy).
  [[nodiscard]] double busyUntil() const noexcept { return busyUntil_; }

 private:
  Simulator& sim_;
  std::string name_;
  double busyUntil_ = 0.0;
  double busy_ = 0.0;
  std::size_t jobs_ = 0;
};

}  // namespace fepia::des
