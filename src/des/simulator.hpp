// Minimal discrete-event simulation kernel: a time-ordered event queue
// and single-server FIFO resources.
//
// The VAL experiment uses this to check the analytic robust region
// empirically: the HiPer-D pipeline is executed as a real queueing
// system, and QoS violations observed in simulation are compared with
// the radius-based prediction.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace fepia::des {

/// Event-driven simulation clock and scheduler. Events at equal times
/// fire in scheduling order (stable tie-break by sequence number).
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulation time (seconds).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` seconds from now.
  /// Throws std::invalid_argument for negative or non-finite delay.
  void schedule(double delay, Action action);

  /// Runs until the queue drains or `maxEvents` were processed.
  /// Returns the number of events processed.
  std::size_t run(std::size_t maxEvents = static_cast<std::size_t>(-1));

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

  /// Events processed over the simulator's lifetime (all run() calls).
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept {
    return eventsProcessed_;
  }
  /// Largest event-queue depth ever observed (updated on schedule()).
  [[nodiscard]] std::size_t queueHighWater() const noexcept {
    return queueHighWater_;
  }

  /// Bumps "des.events_processed" / sets gauge "des.queue_high_water".
  void exportMetrics(obs::Registry& out) const;

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  double now_ = 0.0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::size_t queueHighWater_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// A single-server FIFO resource (a machine or a network link). Jobs are
/// served in submission order; service starts when the server frees up.
class FifoResource {
 public:
  FifoResource(Simulator& sim, std::string name);

  /// Submits a job with the given service time; `onComplete` fires at
  /// departure. Throws std::invalid_argument for negative service time.
  void submit(double serviceTime, Simulator::Action onComplete);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Total busy (serving) time accumulated.
  [[nodiscard]] double busyTime() const noexcept { return busy_; }
  [[nodiscard]] std::size_t jobsServed() const noexcept { return jobs_; }
  /// Time at which the server next becomes idle (>= now when busy).
  [[nodiscard]] double busyUntil() const noexcept { return busyUntil_; }

 private:
  Simulator& sim_;
  std::string name_;
  double busyUntil_ = 0.0;
  double busy_ = 0.0;
  std::size_t jobs_ = 0;
};

}  // namespace fepia::des
