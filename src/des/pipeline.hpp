// Queueing simulation of a HiPer-D pipeline.
//
// Sensors emit synchronized data-set generations at the required
// throughput rate; each application processes a generation once all its
// input messages have arrived, on its machine's FIFO server; messages
// occupy their link's FIFO server for bytes/bandwidth seconds. The
// simulation measures achieved end-to-end latency per path and whether
// the pipeline sustains the input rate (stable queues) — the empirical
// ground truth against which the analytic robustness radius is checked.
//
// Fault injection: PipelineOptions::faults points at a FaultInjector
// (implemented by fault::PlanInjector from a fault::FaultPlan). When
// set, the simulation additionally models discrete perturbation kinds —
// machine crashes survived by failover to a backup after a detection
// timeout, transient compute/transfer slowdowns, and message loss
// retried with capped exponential backoff — and reports the degradation
// counters in PipelineResult::faults.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hiperd/system.hpp"
#include "la/vector.hpp"

namespace fepia::des {

/// Degradation bookkeeping of a fault-injected run.
struct FaultCounters {
  /// Compute jobs re-dispatched to a backup machine after a crash.
  std::uint64_t failovers = 0;
  /// Transfer attempts lost in flight.
  std::uint64_t lostMessages = 0;
  /// Retransmissions issued for lost transfers.
  std::uint64_t retries = 0;
  /// Transfers abandoned after the retry budget was exhausted.
  std::uint64_t droppedMessages = 0;
  /// Compute jobs with no live machine left to fail over to.
  std::uint64_t unrecoveredJobs = 0;
  /// Job-seconds spent waiting for crash detection + failover dispatch.
  double downtimeSeconds = 0.0;
  /// Seconds spent in retry backoff across all lost transfers.
  double backoffWaitSeconds = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return failovers || lostMessages || retries || droppedMessages ||
           unrecoveredJobs;
  }
};

/// Fault-injection hooks consulted by simulatePipeline. Implementations
/// must be deterministic pure functions of their arguments (the
/// simulation replays bit-identically from the same inputs); the stock
/// implementation is fault::PlanInjector. All hooks describe a fault
/// *plan*, fixed before the run — the simulation never feeds back into
/// the injector.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Time at which `machine` crashes (never recovers); +inf = never.
  [[nodiscard]] virtual double crashTime(std::size_t machine) const = 0;
  /// Failover target for work stranded on crashed `machine`; nullopt =
  /// no backup configured (the job is unrecoverable).
  [[nodiscard]] virtual std::optional<std::size_t> backupFor(
      std::size_t machine) const = 0;
  /// Failure-detection timeout: a machine's crash becomes known (and
  /// failover possible) this many seconds after it happens. Jobs
  /// stranded earlier wait until detection; once the failure is known,
  /// later dispatches reroute to the backup without extra delay.
  [[nodiscard]] virtual double detectionTimeout() const = 0;

  /// Multiplier on the service time of a compute job *starting* on
  /// `machine` at time `t` (transient slowdown windows; 1 = nominal).
  [[nodiscard]] virtual double computeFactor(std::size_t machine,
                                             double t) const = 0;
  /// Multiplier on the service time of a transfer starting on `link`.
  [[nodiscard]] virtual double transferFactor(std::size_t link,
                                              double t) const = 0;

  /// True when transfer attempt `attempt` (0-based) of message `k` in
  /// generation `g` is lost in flight. Must depend only on (k, g,
  /// attempt) so the draw is independent of event interleaving.
  [[nodiscard]] virtual bool messageLost(std::size_t k, std::size_t g,
                                         std::size_t attempt) const = 0;
  /// Backoff before retransmission number `attempt + 1` (capped
  /// exponential in the stock implementation).
  [[nodiscard]] virtual double retryBackoff(std::size_t attempt) const = 0;
  /// Retransmissions allowed per message-generation before it is
  /// dropped for good.
  [[nodiscard]] virtual std::size_t maxRetries() const = 0;
};

/// Result of a pipeline simulation.
struct PipelineResult {
  /// Post-warmup end-to-end latencies, one vector per system path.
  std::vector<std::vector<double>> pathLatencies;
  /// busy / elapsed per machine and link (may exceed 1 only transiently).
  std::vector<double> machineUtilization;
  std::vector<double> linkUtilization;
  /// Largest post-warmup latency across paths.
  double maxObservedLatency = 0.0;
  /// Least-squares slope of latency vs generation (seconds/generation),
  /// maximised over paths. Positive slope => queues grow => the input
  /// rate is not sustainable.
  double latencyGrowthPerGeneration = 0.0;
  /// True when the pipeline is stable at the offered rate.
  bool throughputSustained = false;
  double simulatedSeconds = 0.0;
  std::size_t generations = 0;
  /// Path-generation pairs whose terminal app never completed. Zero for
  /// a well-formed DAG pipeline without faults; under fault injection,
  /// dropped messages and unrecoverable jobs surface here.
  std::size_t incompleteObservations = 0;
  /// Simulator kernel statistics for this run.
  std::uint64_t eventsProcessed = 0;
  std::size_t queueHighWater = 0;
  /// Degradation counters (all zero when no injector was configured).
  FaultCounters faults{};

  /// True when the run respects `maxLatency` and sustains throughput.
  /// Under fault injection the run must also have *completed* every
  /// observation — a generation silently lost to an unrecovered fault is
  /// a QoS violation, not a free pass.
  [[nodiscard]] bool satisfies(double maxLatencySeconds) const noexcept {
    return throughputSustained && maxObservedLatency <= maxLatencySeconds &&
           incompleteObservations == 0;
  }
};

/// Simulation parameters.
struct PipelineOptions {
  std::size_t generations = 400;   ///< data-set generations to emit
  double warmupFraction = 0.25;    ///< fraction excluded from statistics
  /// Stability threshold: sustained iff total post-warmup drift
  /// (slope x generations) is below this fraction of one period.
  double driftTolerance = 0.01;
  /// Multiplicative gamma noise on every service time (compute and
  /// transfer): each job's time is scaled by Gamma(mean 1, CoV = this).
  /// 0 keeps the pipeline deterministic. Models run-to-run execution
  /// time variability on top of the (e ⋆ m) operating point.
  double serviceJitterCov = 0.0;
  std::uint64_t jitterSeed = 0x1234ABCDull;
  /// Fault-injection hooks; null (the default) runs the exact fault-free
  /// code path. Not owned; must outlive the call.
  const FaultInjector* faults = nullptr;
};

/// Simulates the pipeline with explicit per-app execution seconds and
/// per-message sizes (the (e ⋆ m) perturbation realisation) at the given
/// arrival rate (data sets per second per sensor generation).
/// Throws std::invalid_argument on dimension mismatch or bad rate.
[[nodiscard]] PipelineResult simulatePipeline(const hiperd::System& sys,
                                              const la::Vector& execSeconds,
                                              const la::Vector& messageBytes,
                                              double arrivalRate,
                                              const PipelineOptions& opts = {});

/// Convenience: derives execution times and message sizes from the
/// load-based model at `loads`, then simulates.
[[nodiscard]] PipelineResult simulateAtLoads(const hiperd::System& sys,
                                             const la::Vector& loads,
                                             double arrivalRate,
                                             const PipelineOptions& opts = {});

}  // namespace fepia::des
