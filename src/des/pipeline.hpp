// Queueing simulation of a HiPer-D pipeline.
//
// Sensors emit synchronized data-set generations at the required
// throughput rate; each application processes a generation once all its
// input messages have arrived, on its machine's FIFO server; messages
// occupy their link's FIFO server for bytes/bandwidth seconds. The
// simulation measures achieved end-to-end latency per path and whether
// the pipeline sustains the input rate (stable queues) — the empirical
// ground truth against which the analytic robustness radius is checked.
#pragma once

#include <cstdint>
#include <vector>

#include "hiperd/system.hpp"
#include "la/vector.hpp"

namespace fepia::des {

/// Result of a pipeline simulation.
struct PipelineResult {
  /// Post-warmup end-to-end latencies, one vector per system path.
  std::vector<std::vector<double>> pathLatencies;
  /// busy / elapsed per machine and link (may exceed 1 only transiently).
  std::vector<double> machineUtilization;
  std::vector<double> linkUtilization;
  /// Largest post-warmup latency across paths.
  double maxObservedLatency = 0.0;
  /// Least-squares slope of latency vs generation (seconds/generation),
  /// maximised over paths. Positive slope => queues grow => the input
  /// rate is not sustainable.
  double latencyGrowthPerGeneration = 0.0;
  /// True when the pipeline is stable at the offered rate.
  bool throughputSustained = false;
  double simulatedSeconds = 0.0;
  std::size_t generations = 0;
  /// Path-generation pairs whose terminal app never completed (should be
  /// zero for a well-formed DAG pipeline; nonzero values indicate a
  /// wiring problem upstream of the measured path).
  std::size_t incompleteObservations = 0;
  /// Simulator kernel statistics for this run.
  std::uint64_t eventsProcessed = 0;
  std::size_t queueHighWater = 0;

  /// True when the run respects `maxLatency` and sustains throughput.
  [[nodiscard]] bool satisfies(double maxLatencySeconds) const noexcept {
    return throughputSustained && maxObservedLatency <= maxLatencySeconds;
  }
};

/// Simulation parameters.
struct PipelineOptions {
  std::size_t generations = 400;   ///< data-set generations to emit
  double warmupFraction = 0.25;    ///< fraction excluded from statistics
  /// Stability threshold: sustained iff total post-warmup drift
  /// (slope x generations) is below this fraction of one period.
  double driftTolerance = 0.01;
  /// Multiplicative gamma noise on every service time (compute and
  /// transfer): each job's time is scaled by Gamma(mean 1, CoV = this).
  /// 0 keeps the pipeline deterministic. Models run-to-run execution
  /// time variability on top of the (e ⋆ m) operating point.
  double serviceJitterCov = 0.0;
  std::uint64_t jitterSeed = 0x1234ABCDull;
};

/// Simulates the pipeline with explicit per-app execution seconds and
/// per-message sizes (the (e ⋆ m) perturbation realisation) at the given
/// arrival rate (data sets per second per sensor generation).
/// Throws std::invalid_argument on dimension mismatch or bad rate.
[[nodiscard]] PipelineResult simulatePipeline(const hiperd::System& sys,
                                              const la::Vector& execSeconds,
                                              const la::Vector& messageBytes,
                                              double arrivalRate,
                                              const PipelineOptions& opts = {});

/// Convenience: derives execution times and message sizes from the
/// load-based model at `loads`, then simulates.
[[nodiscard]] PipelineResult simulateAtLoads(const hiperd::System& sys,
                                             const la::Vector& loads,
                                             double arrivalRate,
                                             const PipelineOptions& opts = {});

}  // namespace fepia::des
