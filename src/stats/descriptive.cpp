#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace fepia::stats {

namespace {

void requireNonEmpty(std::span<const double> xs, const char* fn) {
  if (xs.empty()) {
    throw std::invalid_argument(std::string("stats::") + fn + ": empty sample");
  }
}

}  // namespace

double mean(std::span<const double> xs) {
  requireNonEmpty(xs, "mean");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) {
    throw std::invalid_argument("stats::variance: need at least 2 observations");
  }
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double coefficientOfVariation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) throw std::domain_error("stats::coefficientOfVariation: mean==0");
  return stddev(xs) / m;
}

double quantile(std::span<const double> xs, double q) {
  requireNonEmpty(xs, "quantile");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("stats::quantile: q outside [0,1]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  requireNonEmpty(xs, "summarize");
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.sd = xs.size() >= 2 ? stddev(xs) : 0.0;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.median = median(xs);
  return s;
}

Interval bootstrapMeanCI(std::span<const double> xs, double confidence,
                         std::size_t resamples, rng::Xoshiro256StarStar& g) {
  requireNonEmpty(xs, "bootstrapMeanCI");
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("stats::bootstrapMeanCI: confidence in (0,1)");
  }
  if (resamples == 0) {
    throw std::invalid_argument("stats::bootstrapMeanCI: resamples == 0");
  }
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      acc += xs[rng::uniformIndex(g, 0, xs.size() - 1)];
    }
    means.push_back(acc / static_cast<double>(xs.size()));
  }
  const double alpha = 1.0 - confidence;
  return Interval{quantile(means, alpha / 2.0), quantile(means, 1.0 - alpha / 2.0)};
}

}  // namespace fepia::stats
