// Fixed-bin histogram for bench output (e.g. the distribution of
// boundary-hit distances across random directions in the VAL experiment).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

namespace fepia::stats {

/// Equal-width histogram over [lo, hi] with values outside the range
/// accumulated in underflow/overflow counters.
class Histogram {
 public:
  /// Throws std::invalid_argument when bins == 0 or lo >= hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation.
  void add(double x) noexcept;

  /// Adds a batch of observations.
  void addAll(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Center of bin `i`.
  [[nodiscard]] double binCenter(std::size_t i) const;

  /// ASCII rendering, one bin per line with a proportional bar.
  void render(std::ostream& os, std::size_t barWidth = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace fepia::stats
