#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace fepia::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("stats::Histogram: bins == 0");
  if (!(lo < hi)) throw std::invalid_argument("stats::Histogram: lo >= hi");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x > hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);  // x == hi_ lands in the last bin
  ++counts_[bin];
}

void Histogram::addAll(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

double Histogram::binCenter(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("stats::Histogram::binCenter");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

void Histogram::render(std::ostream& os, std::size_t barWidth) const {
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t len =
        peak == 0 ? 0 : counts_[i] * barWidth / std::max<std::size_t>(peak, 1);
    os << binCenter(i) << "\t" << counts_[i] << "\t" << std::string(len, '#')
       << "\n";
  }
  if (underflow_ != 0) os << "underflow\t" << underflow_ << "\n";
  if (overflow_ != 0) os << "overflow\t" << overflow_ << "\n";
}

}  // namespace fepia::stats
