#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fepia::stats {

namespace {

void requirePaired(std::span<const double> x, std::span<const double> y,
                   const char* fn) {
  if (x.size() != y.size()) {
    throw std::invalid_argument(std::string("stats::") + fn + ": size mismatch");
  }
  if (x.size() < 2) {
    throw std::invalid_argument(std::string("stats::") + fn +
                                ": need at least 2 pairs");
  }
}

}  // namespace

double pearson(std::span<const double> x, std::span<const double> y) {
  requirePaired(x, y, "pearson");
  const auto n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    throw std::domain_error("stats::pearson: zero variance sample");
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> midRanks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank over the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  requirePaired(x, y, "spearman");
  const std::vector<double> rx = midRanks(x);
  const std::vector<double> ry = midRanks(y);
  return pearson(rx, ry);
}

double kendallTauB(std::span<const double> x, std::span<const double> y) {
  requirePaired(x, y, "kendallTauB");
  long long concordant = 0, discordant = 0, tiesX = 0, tiesY = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = i + 1; j < x.size(); ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) {
        // Joint tie contributes to neither ties count in tau-b's denominator.
        continue;
      }
      if (dx == 0.0) {
        ++tiesX;
      } else if (dy == 0.0) {
        ++tiesY;
      } else if ((dx > 0.0) == (dy > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(concordant + discordant + tiesX) *
                    static_cast<double>(concordant + discordant + tiesY);
  if (n0 <= 0.0) {
    throw std::domain_error("stats::kendallTauB: degenerate (all ties)");
  }
  return static_cast<double>(concordant - discordant) / std::sqrt(n0);
}

}  // namespace fepia::stats
