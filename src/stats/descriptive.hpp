// Descriptive statistics used by the benchmark harness and the DES
// validation experiment (violation-rate summaries, bootstrap CIs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rng/xoshiro.hpp"

namespace fepia::stats {

/// Summary of a sample: count, mean, unbiased sd, extremes and median.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double sd = 0.0;   // unbiased (n-1) standard deviation; 0 when count < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Arithmetic mean; throws std::invalid_argument on an empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance; throws when fewer than two observations.
[[nodiscard]] double variance(std::span<const double> xs);

/// Unbiased sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Coefficient of variation sd/mean; throws when mean == 0.
[[nodiscard]] double coefficientOfVariation(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]; throws on empty sample or
/// q outside [0,1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
[[nodiscard]] double median(std::span<const double> xs);

/// One-pass full summary; throws on an empty sample.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Percentile bootstrap confidence interval for the mean.
/// Returns {lo, hi} at the given confidence level (e.g. 0.95).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] Interval bootstrapMeanCI(std::span<const double> xs,
                                       double confidence,
                                       std::size_t resamples,
                                       rng::Xoshiro256StarStar& g);

}  // namespace fepia::stats
