// Correlation measures for the scheme-ranking experiment (RANK in
// DESIGN.md): do the sensitivity-weighted and the normalized merge
// schemes order a population of resource allocations the same way?
#pragma once

#include <span>
#include <vector>

namespace fepia::stats {

/// Pearson product-moment correlation; throws std::invalid_argument on
/// size mismatch / fewer than two points, std::domain_error when either
/// sample has zero variance.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson on mid-ranks; ties averaged).
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

/// Kendall tau-b (tie-corrected), O(n²) — fine for allocation populations.
[[nodiscard]] double kendallTauB(std::span<const double> x,
                                 std::span<const double> y);

/// Mid-ranks of a sample (1-based, ties share the average rank).
[[nodiscard]] std::vector<double> midRanks(std::span<const double> xs);

}  // namespace fepia::stats
