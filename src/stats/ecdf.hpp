// Empirical CDF and two-sample Kolmogorov–Smirnov distance.
//
// Used to compare simulated latency distributions across operating
// points and jitter levels: the KS distance quantifies how much an
// operating-point change displaces the whole latency distribution, not
// just its maximum.
#pragma once

#include <span>
#include <vector>

namespace fepia::stats {

/// Empirical cumulative distribution function of a sample.
class Ecdf {
 public:
  /// Builds from a sample (copied and sorted); throws
  /// std::invalid_argument when empty.
  explicit Ecdf(std::span<const double> sample);

  /// F(x) = fraction of observations <= x.
  [[nodiscard]] double operator()(double x) const noexcept;

  /// Number of observations.
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// Smallest / largest observation.
  [[nodiscard]] double min() const noexcept { return sorted_.front(); }
  [[nodiscard]] double max() const noexcept { return sorted_.back(); }

  /// The sorted sample (for quantile-style inspection).
  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

/// Two-sample Kolmogorov–Smirnov statistic sup_x |F1(x) − F2(x)|.
/// Throws std::invalid_argument when either sample is empty.
[[nodiscard]] double ksDistance(std::span<const double> a,
                                std::span<const double> b);

/// Asymptotic two-sample KS p-value approximation (Kolmogorov
/// distribution): small values reject "same distribution".
[[nodiscard]] double ksPValue(double distance, std::size_t nA, std::size_t nB);

}  // namespace fepia::stats
