#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fepia::stats {

Ecdf::Ecdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  if (sorted_.empty()) {
    throw std::invalid_argument("stats::Ecdf: empty sample");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double ksDistance(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("stats::ksDistance: empty sample");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  // Sweep the merged order, tracking both ECDF levels.
  double maxDiff = 0.0;
  std::size_t i = 0, j = 0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    maxDiff = std::max(maxDiff, std::abs(static_cast<double>(i) / na -
                                         static_cast<double>(j) / nb));
  }
  // The tail (one sample exhausted) cannot increase |F1 − F2| beyond the
  // value at the last merged step plus the remaining jumps; account for
  // them explicitly.
  maxDiff = std::max(maxDiff, std::abs(1.0 - static_cast<double>(j) / nb));
  maxDiff = std::max(maxDiff, std::abs(static_cast<double>(i) / na - 1.0));
  return maxDiff;
}

double ksPValue(double distance, std::size_t nA, std::size_t nB) {
  if (nA == 0 || nB == 0) {
    throw std::invalid_argument("stats::ksPValue: empty sample");
  }
  if (distance <= 0.0) return 1.0;
  const double n = static_cast<double>(nA) * static_cast<double>(nB) /
                   static_cast<double>(nA + nB);
  const double lambda = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * distance;
  // Kolmogorov series: 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace fepia::stats
