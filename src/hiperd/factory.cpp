#include "hiperd/factory.hpp"

#include <algorithm>
#include <string>

#include "rng/distributions.hpp"

namespace fepia::hiperd {

ReferenceSystem makeReferenceSystem() {
  System sys;

  // Sensors (assumed loads in objects per data set).
  sys.addSensor({"radar", 100.0});
  sys.addSensor({"sonar", 80.0});
  sys.addSensor({"ais", 40.0});

  // Machines.
  const std::size_t m0 = sys.addMachine({"m0"});
  const std::size_t m1 = sys.addMachine({"m1"});
  const std::size_t m2 = sys.addMachine({"m2"});
  const std::size_t m3 = sys.addMachine({"m3"});

  // Links (bytes/second).
  const std::size_t lanA = sys.addLink({"lan-a", 5e7});
  const std::size_t lanB = sys.addLink({"lan-b", 1e8});
  const std::size_t lanC = sys.addLink({"lan-c", 2.5e7});

  // Applications: compute seconds = base + coeff · [radar, sonar, ais].
  const std::size_t filterR =
      sys.addApplication({"filter-r", m0, 4e-3, {3e-4, 0.0, 0.0}});
  const std::size_t filterS =
      sys.addApplication({"filter-s", m1, 5e-3, {0.0, 2.5e-4, 0.0}});
  const std::size_t fusion =
      sys.addApplication({"fusion", m2, 6e-3, {2e-4, 1.5e-4, 0.0}});
  const std::size_t evaluate =
      sys.addApplication({"evaluate", m3, 8e-3, {1e-4, 1e-4, 2e-4}});
  const std::size_t display =
      sys.addApplication({"display", m0, 2e-3, {0.0, 0.0, 5e-5}});

  // Messages: bytes = base + coeff · loads.
  const std::size_t msgRf = sys.addMessage(
      {"msg-rf", filterR, fusion, lanA, 2e3, {800.0, 0.0, 0.0}});
  const std::size_t msgSf = sys.addMessage(
      {"msg-sf", filterS, fusion, lanB, 1.5e3, {0.0, 600.0, 0.0}});
  const std::size_t msgFe = sys.addMessage(
      {"msg-fe", fusion, evaluate, lanC, 4e3, {500.0, 400.0, 0.0}});
  const std::size_t msgEd = sys.addMessage(
      {"msg-ed", evaluate, display, lanA, 1e3, {100.0, 100.0, 200.0}});

  // Sensor-to-actuator paths.
  sys.addPath({"path-radar",
               {filterR, fusion, evaluate, display},
               {msgRf, msgFe, msgEd}});
  sys.addPath({"path-sonar",
               {filterS, fusion, evaluate, display},
               {msgSf, msgFe, msgEd}});
  sys.addPath({"path-ais", {evaluate, display}, {msgEd}});

  // QoS: 10 data sets/second (0.1 s budget per machine/link) and 0.2 s
  // end-to-end latency. The assumed operating point sits well inside.
  return ReferenceSystem{std::move(sys), QoS{10.0, 0.2}};
}

ReferenceSystem makeRandomSystem(const RandomSystemParams& params,
                                 rng::Xoshiro256StarStar& g) {
  if (params.sensors == 0 || params.machines == 0 || params.links == 0 ||
      params.chainDepth == 0) {
    throw std::invalid_argument("hiperd::makeRandomSystem: zero-size parameter");
  }
  System sys;
  for (std::size_t s = 0; s < params.sensors; ++s) {
    sys.addSensor({"sensor-" + std::to_string(s),
                   rng::uniform(g, params.loadMin, params.loadMax)});
  }
  for (std::size_t m = 0; m < params.machines; ++m) {
    sys.addMachine({"machine-" + std::to_string(m)});
  }
  for (std::size_t l = 0; l < params.links; ++l) {
    sys.addLink({"link-" + std::to_string(l),
                 rng::uniform(g, params.bandwidthMin, params.bandwidthMax)});
  }

  auto randomApp = [&](const std::string& name, std::size_t machine,
                       std::size_t sensitiveSensor, bool allSensors) {
    Application app;
    app.name = name;
    app.machine = machine;
    app.baseComputeSeconds =
        rng::uniform(g, params.baseComputeMin, params.baseComputeMax);
    app.loadCoeffSeconds.assign(params.sensors, 0.0);
    for (std::size_t s = 0; s < params.sensors; ++s) {
      if (allSensors || s == sensitiveSensor) {
        app.loadCoeffSeconds[s] =
            rng::uniform(g, params.computeCoeffMin, params.computeCoeffMax);
      }
    }
    return sys.addApplication(std::move(app));
  };

  std::size_t nextMachine = 0;
  std::size_t nextLink = 0;
  const auto takeMachine = [&] {
    const std::size_t m = nextMachine;
    nextMachine = (nextMachine + 1) % params.machines;
    return m;
  };
  const auto takeLink = [&] {
    const std::size_t l = nextLink;
    nextLink = (nextLink + 1) % params.links;
    return l;
  };

  // One chain of apps per sensor, all merging into a shared sink.
  std::vector<std::vector<std::size_t>> chains(params.sensors);
  for (std::size_t s = 0; s < params.sensors; ++s) {
    for (std::size_t d = 0; d < params.chainDepth; ++d) {
      chains[s].push_back(randomApp(
          "app-s" + std::to_string(s) + "-d" + std::to_string(d), takeMachine(),
          s, /*allSensors=*/false));
    }
  }
  const std::size_t sink =
      randomApp("sink", takeMachine(), 0, /*allSensors=*/true);

  auto randomMessage = [&](const std::string& name, std::size_t src,
                           std::size_t dst, std::size_t sensor) {
    Message msg;
    msg.name = name;
    msg.srcApp = src;
    msg.dstApp = dst;
    msg.link = takeLink();
    msg.baseBytes = rng::uniform(g, params.baseBytesMin, params.baseBytesMax);
    msg.loadCoeffBytes.assign(params.sensors, 0.0);
    msg.loadCoeffBytes[sensor] =
        rng::uniform(g, params.bytesCoeffMin, params.bytesCoeffMax);
    return sys.addMessage(std::move(msg));
  };

  std::vector<std::vector<std::size_t>> chainMsgs(params.sensors);
  for (std::size_t s = 0; s < params.sensors; ++s) {
    for (std::size_t d = 0; d + 1 < params.chainDepth; ++d) {
      chainMsgs[s].push_back(randomMessage(
          "msg-s" + std::to_string(s) + "-d" + std::to_string(d),
          chains[s][d], chains[s][d + 1], s));
    }
    chainMsgs[s].push_back(randomMessage("msg-s" + std::to_string(s) + "-sink",
                                         chains[s].back(), sink, s));
  }

  for (std::size_t s = 0; s < params.sensors; ++s) {
    Path p;
    p.name = "path-" + std::to_string(s);
    p.apps = chains[s];
    p.apps.push_back(sink);
    p.messages = chainMsgs[s];
    sys.addPath(std::move(p));
  }

  // Derive a QoS that the assumed operating point satisfies with the
  // configured slack.
  const la::Vector lambda = sys.originalLoads();
  double worstBudget = 0.0;
  for (std::size_t m = 0; m < sys.machineCount(); ++m) {
    worstBudget = std::max(worstBudget, sys.machineComputeSeconds(m, lambda));
  }
  for (std::size_t l = 0; l < sys.linkCount(); ++l) {
    worstBudget = std::max(worstBudget, sys.linkCommSeconds(l, lambda));
  }
  double worstLatency = 0.0;
  for (std::size_t p = 0; p < sys.pathCount(); ++p) {
    worstLatency = std::max(worstLatency, sys.pathLatencySeconds(p, lambda));
  }
  QoS qos;
  qos.minThroughput = 1.0 / (params.qosSlack * worstBudget);
  qos.maxLatencySeconds = params.qosSlack * worstLatency;
  return ReferenceSystem{std::move(sys), qos};
}

}  // namespace fepia::hiperd
