// Canonical and randomized HiPer-D topologies for the experiments.
#pragma once

#include <cstddef>

#include "hiperd/system.hpp"
#include "rng/xoshiro.hpp"

namespace fepia::hiperd {

/// The reference topology used by the HPD/MIX/VAL experiments — a small
/// fusion pipeline in the style of the HiPer-D examples of baseline [2]:
///
///   radar  ─ filter-r ─┐
///                      ├─ fusion ── evaluate ── display
///   sonar  ─ filter-s ─┘
///   ais    ────────────────┘ (feeds evaluate directly)
///
/// 3 sensors, 4 machines, 3 links, 5 applications, 4 messages, 3
/// sensor-to-actuator paths. Coefficients are chosen so the assumed
/// operating point satisfies the returned QoS with moderate slack
/// (robustness radii are finite and nontrivial).
struct ReferenceSystem {
  System system;
  QoS qos;
};
[[nodiscard]] ReferenceSystem makeReferenceSystem();

/// Parameters of the random pipeline generator.
struct RandomSystemParams {
  std::size_t sensors = 3;
  std::size_t machines = 4;
  std::size_t links = 3;
  std::size_t chainDepth = 3;   ///< apps per sensor chain before the sink
  double loadMin = 40.0;        ///< assumed sensor load range (objects/set)
  double loadMax = 120.0;
  double computeCoeffMin = 1e-4;  ///< seconds per object
  double computeCoeffMax = 8e-4;
  double baseComputeMin = 5e-3;   ///< seconds
  double baseComputeMax = 2e-2;
  double bytesCoeffMin = 200.0;   ///< bytes per object
  double bytesCoeffMax = 1200.0;
  double baseBytesMin = 1e3;
  double baseBytesMax = 2e4;
  double bandwidthMin = 1e7;      ///< bytes/second
  double bandwidthMax = 1e8;
  double qosSlack = 1.6;          ///< QoS bounds = slack x worst assumed value
};

/// Generates a layered pipeline: one chain of `chainDepth` applications
/// per sensor, all merging into one sink application; one path per
/// sensor. Apps round-robin over machines, messages round-robin over
/// links. The QoS is derived from the assumed operating point with the
/// configured slack, so the system always starts feasible.
[[nodiscard]] ReferenceSystem makeRandomSystem(const RandomSystemParams& params,
                                               rng::Xoshiro256StarStar& g);

}  // namespace fepia::hiperd
