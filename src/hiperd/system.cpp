#include "hiperd/system.hpp"

#include <memory>
#include <stdexcept>

#include "feature/generic.hpp"
#include "feature/linear.hpp"

namespace fepia::hiperd {

std::size_t System::addSensor(Sensor s) {
  if (s.load < 0.0) {
    throw std::invalid_argument("hiperd::System::addSensor: negative load");
  }
  if (!apps_.empty() || !messages_.empty()) {
    throw std::logic_error(
        "hiperd::System::addSensor: add sensors before applications/messages "
        "(load-coefficient vectors are sized by sensor count)");
  }
  sensors_.push_back(std::move(s));
  return sensors_.size() - 1;
}

std::size_t System::addMachine(Machine m) {
  machines_.push_back(std::move(m));
  return machines_.size() - 1;
}

std::size_t System::addLink(Link l) {
  if (l.bandwidthBytesPerSec <= 0.0) {
    throw std::invalid_argument("hiperd::System::addLink: bandwidth must be > 0");
  }
  links_.push_back(std::move(l));
  return links_.size() - 1;
}

std::size_t System::addApplication(Application a) {
  if (a.machine >= machines_.size()) {
    throw std::invalid_argument("hiperd::System::addApplication: bad machine");
  }
  if (a.loadCoeffSeconds.size() != sensors_.size()) {
    throw std::invalid_argument(
        "hiperd::System::addApplication: one load coefficient per sensor");
  }
  if (a.baseComputeSeconds < 0.0) {
    throw std::invalid_argument(
        "hiperd::System::addApplication: negative base compute");
  }
  apps_.push_back(std::move(a));
  return apps_.size() - 1;
}

std::size_t System::addMessage(Message m) {
  if (m.srcApp >= apps_.size() || m.dstApp >= apps_.size()) {
    throw std::invalid_argument("hiperd::System::addMessage: bad app index");
  }
  if (m.link >= links_.size()) {
    throw std::invalid_argument("hiperd::System::addMessage: bad link index");
  }
  if (m.loadCoeffBytes.size() != sensors_.size()) {
    throw std::invalid_argument(
        "hiperd::System::addMessage: one load coefficient per sensor");
  }
  if (m.baseBytes < 0.0) {
    throw std::invalid_argument("hiperd::System::addMessage: negative base bytes");
  }
  messages_.push_back(std::move(m));
  return messages_.size() - 1;
}

std::size_t System::addPath(Path p) {
  if (p.apps.empty()) {
    throw std::invalid_argument("hiperd::System::addPath: empty app list");
  }
  for (std::size_t a : p.apps) {
    if (a >= apps_.size()) {
      throw std::invalid_argument("hiperd::System::addPath: bad app index");
    }
  }
  for (std::size_t k : p.messages) {
    if (k >= messages_.size()) {
      throw std::invalid_argument("hiperd::System::addPath: bad message index");
    }
  }
  paths_.push_back(std::move(p));
  return paths_.size() - 1;
}

la::Vector System::originalLoads() const {
  la::Vector lambda(sensors_.size());
  for (std::size_t s = 0; s < sensors_.size(); ++s) lambda[s] = sensors_[s].load;
  return lambda;
}

void System::checkLoadsDim(const la::Vector& loads) const {
  if (loads.size() != sensors_.size()) {
    throw std::invalid_argument("hiperd::System: one load per sensor expected");
  }
}

double System::appComputeSeconds(std::size_t a, const la::Vector& loads) const {
  checkLoadsDim(loads);
  const Application& app = apps_.at(a);
  double c = app.baseComputeSeconds;
  for (std::size_t s = 0; s < loads.size(); ++s) {
    c += app.loadCoeffSeconds[s] * loads[s];
  }
  return c;
}

double System::messageBytes(std::size_t k, const la::Vector& loads) const {
  checkLoadsDim(loads);
  const Message& msg = messages_.at(k);
  double b = msg.baseBytes;
  for (std::size_t s = 0; s < loads.size(); ++s) {
    b += msg.loadCoeffBytes[s] * loads[s];
  }
  return b;
}

double System::messageSeconds(std::size_t k, const la::Vector& loads) const {
  return messageBytes(k, loads) / links_.at(messages_.at(k).link).bandwidthBytesPerSec;
}

double System::machineComputeSeconds(std::size_t m, const la::Vector& loads) const {
  if (m >= machines_.size()) {
    throw std::out_of_range("hiperd::System::machineComputeSeconds");
  }
  double total = 0.0;
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    if (apps_[a].machine == m) total += appComputeSeconds(a, loads);
  }
  return total;
}

double System::linkCommSeconds(std::size_t l, const la::Vector& loads) const {
  if (l >= links_.size()) throw std::out_of_range("hiperd::System::linkCommSeconds");
  double total = 0.0;
  for (std::size_t k = 0; k < messages_.size(); ++k) {
    if (messages_[k].link == l) total += messageSeconds(k, loads);
  }
  return total;
}

double System::pathLatencySeconds(std::size_t p, const la::Vector& loads) const {
  const Path& path = paths_.at(p);
  double total = 0.0;
  for (std::size_t a : path.apps) total += appComputeSeconds(a, loads);
  for (std::size_t k : path.messages) total += messageSeconds(k, loads);
  return total;
}

bool System::satisfies(const QoS& qos, const la::Vector& loads) const {
  const double budget = 1.0 / qos.minThroughput;
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    if (machineComputeSeconds(m, loads) > budget) return false;
  }
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (linkCommSeconds(l, loads) > budget) return false;
  }
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    if (pathLatencySeconds(p, loads) > qos.maxLatencySeconds) return false;
  }
  return true;
}

perturb::PerturbationParameter System::loadParameter() const {
  std::vector<std::string> labels;
  labels.reserve(sensors_.size());
  for (const Sensor& s : sensors_) labels.push_back("load(" + s.name + ")");
  return perturb::PerturbationParameter(
      "sensor-loads", units::Unit::objectsPerDataSet(), originalLoads(),
      std::move(labels));
}

namespace {

/// Adds a bounded linear feature, refusing constant (all-zero) rows —
/// a machine with no load-dependent apps has no boundary in load space.
void addLinearIfVarying(feature::FeatureSet& phi, const std::string& name,
                        la::Vector k, double c, double bound, double origValue,
                        units::Unit unit) {
  if (la::norm2(k) == 0.0) return;  // insensitive: infinite radius, skip
  if (origValue >= bound) {
    throw std::invalid_argument("hiperd::System: feature '" + name +
                                "' already violates its bound at the assumed "
                                "operating point");
  }
  phi.add(std::make_shared<feature::LinearFeature>(name, std::move(k), c, unit),
          feature::FeatureBounds::upper(bound));
}

}  // namespace

feature::FeatureSet System::loadFeatureSet(const QoS& qos) const {
  const la::Vector lambda = originalLoads();
  const double budget = 1.0 / qos.minThroughput;
  feature::FeatureSet phi;

  // Per-machine compute time as a linear function of lambda.
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    la::Vector k(sensors_.size(), 0.0);
    double c = 0.0;
    bool hasApp = false;
    for (const Application& app : apps_) {
      if (app.machine != m) continue;
      hasApp = true;
      c += app.baseComputeSeconds;
      for (std::size_t s = 0; s < sensors_.size(); ++s) {
        k[s] += app.loadCoeffSeconds[s];
      }
    }
    if (!hasApp) continue;
    addLinearIfVarying(phi, "compute(" + machines_[m].name + ")", std::move(k),
                       c, budget, machineComputeSeconds(m, lambda),
                       units::Unit::seconds());
  }

  // Per-link communication time.
  for (std::size_t l = 0; l < links_.size(); ++l) {
    la::Vector k(sensors_.size(), 0.0);
    double c = 0.0;
    bool hasMsg = false;
    for (const Message& msg : messages_) {
      if (msg.link != l) continue;
      hasMsg = true;
      const double bw = links_[l].bandwidthBytesPerSec;
      c += msg.baseBytes / bw;
      for (std::size_t s = 0; s < sensors_.size(); ++s) {
        k[s] += msg.loadCoeffBytes[s] / bw;
      }
    }
    if (!hasMsg) continue;
    addLinearIfVarying(phi, "comm(" + links_[l].name + ")", std::move(k), c,
                       budget, linkCommSeconds(l, lambda),
                       units::Unit::seconds());
  }

  // Per-path latency.
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    la::Vector k(sensors_.size(), 0.0);
    double c = 0.0;
    for (std::size_t a : paths_[p].apps) {
      c += apps_[a].baseComputeSeconds;
      for (std::size_t s = 0; s < sensors_.size(); ++s) {
        k[s] += apps_[a].loadCoeffSeconds[s];
      }
    }
    for (std::size_t kk : paths_[p].messages) {
      const double bw = links_[messages_[kk].link].bandwidthBytesPerSec;
      c += messages_[kk].baseBytes / bw;
      for (std::size_t s = 0; s < sensors_.size(); ++s) {
        k[s] += messages_[kk].loadCoeffBytes[s] / bw;
      }
    }
    addLinearIfVarying(phi, "latency(" + paths_[p].name + ")", std::move(k), c,
                       qos.maxLatencySeconds, pathLatencySeconds(p, lambda),
                       units::Unit::seconds());
  }

  if (phi.empty()) {
    throw std::invalid_argument(
        "hiperd::System::loadFeatureSet: no load-sensitive features");
  }
  return phi;
}

radius::FepiaProblem System::loadProblem(const QoS& qos) const {
  radius::FepiaProblem problem;
  problem.addPerturbation(loadParameter());
  for (const feature::BoundedFeature& bf : loadFeatureSet(qos)) {
    problem.addFeature(bf.feature, bf.bounds);
  }
  return problem;
}

la::Vector System::originalExecutionTimes() const {
  const la::Vector lambda = originalLoads();
  la::Vector e(apps_.size());
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    e[a] = appComputeSeconds(a, lambda);
  }
  return e;
}

la::Vector System::originalMessageSizes() const {
  const la::Vector lambda = originalLoads();
  la::Vector m(messages_.size());
  for (std::size_t k = 0; k < messages_.size(); ++k) {
    m[k] = messageBytes(k, lambda);
  }
  return m;
}

perturb::PerturbationSpace System::executionMessageSpace() const {
  if (apps_.empty() || messages_.empty()) {
    throw std::logic_error(
        "hiperd::System::executionMessageSpace: needs apps and messages");
  }
  std::vector<std::string> execLabels;
  execLabels.reserve(apps_.size());
  for (const Application& a : apps_) execLabels.push_back("exec(" + a.name + ")");
  std::vector<std::string> msgLabels;
  msgLabels.reserve(messages_.size());
  for (const Message& m : messages_) msgLabels.push_back("bytes(" + m.name + ")");

  perturb::PerturbationSpace space;
  space.add(perturb::PerturbationParameter("execution-times",
                                           units::Unit::seconds(),
                                           originalExecutionTimes(),
                                           std::move(execLabels)));
  space.add(perturb::PerturbationParameter("message-lengths",
                                           units::Unit::bytes(),
                                           originalMessageSizes(),
                                           std::move(msgLabels)));
  return space;
}

feature::FeatureSet System::executionMessageFeatureSet(const QoS& qos) const {
  const std::size_t nA = apps_.size();
  const std::size_t nM = messages_.size();
  const std::size_t dim = nA + nM;
  const double budget = 1.0 / qos.minThroughput;
  const la::Vector lambda = originalLoads();
  feature::FeatureSet phi;

  // Per-machine compute: sum of e_a over apps on the machine.
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    la::Vector k(dim, 0.0);
    bool hasApp = false;
    for (std::size_t a = 0; a < nA; ++a) {
      if (apps_[a].machine == m) {
        k[a] = 1.0;
        hasApp = true;
      }
    }
    if (!hasApp) continue;
    addLinearIfVarying(phi, "compute(" + machines_[m].name + ")", std::move(k),
                       0.0, budget, machineComputeSeconds(m, lambda),
                       units::Unit::seconds());
  }

  // Per-link communication: sum of m_k / bandwidth over messages on the link.
  for (std::size_t l = 0; l < links_.size(); ++l) {
    la::Vector k(dim, 0.0);
    bool hasMsg = false;
    for (std::size_t kk = 0; kk < nM; ++kk) {
      if (messages_[kk].link == l) {
        k[nA + kk] = 1.0 / links_[l].bandwidthBytesPerSec;
        hasMsg = true;
      }
    }
    if (!hasMsg) continue;
    addLinearIfVarying(phi, "comm(" + links_[l].name + ")", std::move(k), 0.0,
                       budget, linkCommSeconds(l, lambda),
                       units::Unit::seconds());
  }

  // Per-path latency: sum of e_a plus m_k / bandwidth along the path.
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    la::Vector k(dim, 0.0);
    for (std::size_t a : paths_[p].apps) k[a] += 1.0;
    for (std::size_t kk : paths_[p].messages) {
      k[nA + kk] += 1.0 / links_[messages_[kk].link].bandwidthBytesPerSec;
    }
    addLinearIfVarying(phi, "latency(" + paths_[p].name + ")", std::move(k), 0.0,
                       qos.maxLatencySeconds, pathLatencySeconds(p, lambda),
                       units::Unit::seconds());
  }

  if (phi.empty()) {
    throw std::invalid_argument(
        "hiperd::System::executionMessageFeatureSet: no features");
  }
  return phi;
}

perturb::PerturbationSpace System::executionMessageBandwidthSpace() const {
  perturb::PerturbationSpace space = executionMessageSpace();
  if (links_.empty()) {
    throw std::logic_error(
        "hiperd::System::executionMessageBandwidthSpace: needs links");
  }
  std::vector<std::string> labels;
  labels.reserve(links_.size());
  for (const Link& l : links_) labels.push_back("bw-factor(" + l.name + ")");
  space.add(perturb::PerturbationParameter(
      "bandwidth-factors", units::Unit::dimensionless(),
      la::Vector(links_.size(), 1.0), std::move(labels)));
  return space;
}

feature::FeatureSet System::executionMessageBandwidthFeatureSet(
    const QoS& qos) const {
  const std::size_t nA = apps_.size();
  const std::size_t nM = messages_.size();
  const std::size_t nL = links_.size();
  const std::size_t dim = nA + nM + nL;
  const double budget = 1.0 / qos.minThroughput;
  const la::Vector lambda = originalLoads();
  feature::FeatureSet phi;

  // Per-machine compute: linear, unchanged by bandwidth factors (padded
  // with zero coefficients over the m and g blocks).
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    la::Vector k(dim, 0.0);
    bool hasApp = false;
    for (std::size_t a = 0; a < nA; ++a) {
      if (apps_[a].machine == m) {
        k[a] = 1.0;
        hasApp = true;
      }
    }
    if (!hasApp) continue;
    addLinearIfVarying(phi, "compute(" + machines_[m].name + ")", std::move(k),
                       0.0, budget, machineComputeSeconds(m, lambda),
                       units::Unit::seconds());
  }

  // Pre-compute the static wiring the dual fields capture by value.
  struct MsgInfo {
    std::size_t msgIndex;   // within the m block
    std::size_t linkIndex;  // within the g block
    double bandwidth;       // nominal B_l
  };
  const auto msgInfoOnLink = [&](std::size_t l) {
    std::vector<MsgInfo> out;
    for (std::size_t k = 0; k < nM; ++k) {
      if (messages_[k].link == l) {
        out.push_back({k, l, links_[l].bandwidthBytesPerSec});
      }
    }
    return out;
  };

  // Per-link communication time sum_k m_k / (B_l g_l): nonlinear in
  // (m, g). Built as an AD field over the concatenated (e ⋆ m ⋆ g) space.
  for (std::size_t l = 0; l < nL; ++l) {
    const std::vector<MsgInfo> msgs = msgInfoOnLink(l);
    if (msgs.empty()) continue;
    const double origValue = linkCommSeconds(l, lambda);
    if (origValue >= budget) {
      throw std::invalid_argument("hiperd::System: link '" + links_[l].name +
                                  "' already violates the throughput budget");
    }
    const ad::DualField field = [msgs, nA, nM](const std::vector<ad::Dual>& v) {
      ad::Dual acc = 0.0;
      for (const MsgInfo& mi : msgs) {
        acc += v[nA + mi.msgIndex] /
               (v[nA + nM + mi.linkIndex] * mi.bandwidth);
      }
      return acc;
    };
    phi.add(std::make_shared<feature::GenericFeature>(
                "comm(" + links_[l].name + ")", dim, field,
                units::Unit::seconds()),
            feature::FeatureBounds::upper(budget));
  }

  // Per-path latency: sum of e_a plus the nonlinear message terms.
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    std::vector<std::size_t> pathApps = paths_[p].apps;
    std::vector<MsgInfo> pathMsgs;
    for (std::size_t k : paths_[p].messages) {
      pathMsgs.push_back({k, messages_[k].link,
                          links_[messages_[k].link].bandwidthBytesPerSec});
    }
    const double origValue = pathLatencySeconds(p, lambda);
    if (origValue >= qos.maxLatencySeconds) {
      throw std::invalid_argument("hiperd::System: path '" + paths_[p].name +
                                  "' already violates the latency bound");
    }
    const ad::DualField field =
        [pathApps, pathMsgs, nA, nM](const std::vector<ad::Dual>& v) {
          ad::Dual acc = 0.0;
          for (std::size_t a : pathApps) acc += v[a];
          for (const MsgInfo& mi : pathMsgs) {
            acc += v[nA + mi.msgIndex] /
                   (v[nA + nM + mi.linkIndex] * mi.bandwidth);
          }
          return acc;
        };
    phi.add(std::make_shared<feature::GenericFeature>(
                "latency(" + paths_[p].name + ")", dim, field,
                units::Unit::seconds()),
            feature::FeatureBounds::upper(qos.maxLatencySeconds));
  }

  if (phi.empty()) {
    throw std::invalid_argument(
        "hiperd::System::executionMessageBandwidthFeatureSet: no features");
  }
  return phi;
}

radius::FepiaProblem System::executionMessageBandwidthProblem(
    const QoS& qos) const {
  radius::FepiaProblem problem;
  const perturb::PerturbationSpace space = executionMessageBandwidthSpace();
  for (std::size_t j = 0; j < space.kindCount(); ++j) {
    problem.addPerturbation(space.kind(j));
  }
  for (const feature::BoundedFeature& bf :
       executionMessageBandwidthFeatureSet(qos)) {
    problem.addFeature(bf.feature, bf.bounds);
  }
  return problem;
}

radius::FepiaProblem System::executionMessageProblem(const QoS& qos) const {
  radius::FepiaProblem problem;
  const perturb::PerturbationSpace space = executionMessageSpace();
  for (std::size_t j = 0; j < space.kindCount(); ++j) {
    problem.addPerturbation(space.kind(j));
  }
  for (const feature::BoundedFeature& bf : executionMessageFeatureSet(qos)) {
    problem.addFeature(bf.feature, bf.bounds);
  }
  return problem;
}

}  // namespace fepia::hiperd
