// HiPer-D-like streaming system model.
//
// "A typical HiPer-D computing system consists of a set of dedicated
// machines interconnected by high-speed communication links. A set of
// sensors sends streams of data sets to a set of communicating,
// continuously running applications that process these data sets and
// send their outputs to other applications or actuators." The system
// must satisfy throughput and latency constraints; sensor loads (objects
// per data set) change unpredictably, inflating computation and
// communication times.
//
// Model (per data set):
//   app compute seconds   c_a(lambda) = c0_a + sum_s gamma_{a,s} lambda_s
//   message bytes         b_k(lambda) = b0_k + sum_s delta_{k,s} lambda_s
//   message seconds       b_k / bandwidth(link(k))
//   machine compute       sum of c_a over apps on the machine
//   link communication    sum of b_k/bandwidth over messages on the link
//   path latency          sum of c_a + message seconds along the path
// QoS: every machine and link must keep its per-data-set time below 1/R
// (throughput R data sets/second), and every sensor-to-actuator path
// must keep latency below L_max.
//
// Two FePIA bridges are provided:
//   * load space (single kind, objects/data-set) — the HiPer-D case
//     study of baseline [2];
//   * execution-time ⋆ message-size space (two kinds, seconds and
//     bytes) — the multiple-kinds scenario of Section 3 of this paper.
#pragma once

#include <string>
#include <vector>

#include "feature/feature.hpp"
#include "la/vector.hpp"
#include "perturb/space.hpp"
#include "radius/fepia.hpp"

namespace fepia::hiperd {

/// A sensor stream; `load` is the assumed lambda (objects per data set).
struct Sensor {
  std::string name;
  double load = 0.0;
};

/// A dedicated compute node.
struct Machine {
  std::string name;
};

/// A communication channel.
struct Link {
  std::string name;
  double bandwidthBytesPerSec = 0.0;
};

/// A continuously running application pinned to one machine.
/// Compute seconds per data set: baseComputeSeconds + loadCoeffSeconds·lambda.
struct Application {
  std::string name;
  std::size_t machine = 0;
  double baseComputeSeconds = 0.0;
  std::vector<double> loadCoeffSeconds;  ///< one per sensor
};

/// A directed app-to-app transfer routed over one link.
/// Bytes per data set: baseBytes + loadCoeffBytes·lambda.
struct Message {
  std::string name;
  std::size_t srcApp = 0;
  std::size_t dstApp = 0;
  std::size_t link = 0;
  double baseBytes = 0.0;
  std::vector<double> loadCoeffBytes;  ///< one per sensor
};

/// A sensor-to-actuator chain for the latency constraint: latency is the
/// sum of the listed apps' compute times and messages' transfer times.
struct Path {
  std::string name;
  std::vector<std::size_t> apps;
  std::vector<std::size_t> messages;
};

/// QoS requirement: throughput of at least `minThroughput` data sets per
/// second (each machine/link per-data-set time <= 1/R) and path latency
/// at most `maxLatencySeconds`.
struct QoS {
  double minThroughput = 1.0;
  double maxLatencySeconds = 1.0;
};

/// The composed system. Build with the add* methods (each validates
/// references against already-added entities and returns the new index),
/// then query model values and FePIA bridges.
class System {
 public:
  std::size_t addSensor(Sensor s);
  std::size_t addMachine(Machine m);
  std::size_t addLink(Link l);
  /// Requires machine index valid and one load coefficient per sensor.
  std::size_t addApplication(Application a);
  /// Requires app/link indices valid and one load coefficient per sensor.
  std::size_t addMessage(Message m);
  /// Requires all app/message indices valid and a nonempty app list.
  std::size_t addPath(Path p);

  [[nodiscard]] std::size_t sensorCount() const noexcept { return sensors_.size(); }
  [[nodiscard]] std::size_t machineCount() const noexcept { return machines_.size(); }
  [[nodiscard]] std::size_t linkCount() const noexcept { return links_.size(); }
  [[nodiscard]] std::size_t applicationCount() const noexcept { return apps_.size(); }
  [[nodiscard]] std::size_t messageCount() const noexcept { return messages_.size(); }
  [[nodiscard]] std::size_t pathCount() const noexcept { return paths_.size(); }

  [[nodiscard]] const Sensor& sensor(std::size_t i) const { return sensors_.at(i); }
  [[nodiscard]] const Machine& machine(std::size_t i) const { return machines_.at(i); }
  [[nodiscard]] const Link& link(std::size_t i) const { return links_.at(i); }
  [[nodiscard]] const Application& application(std::size_t i) const {
    return apps_.at(i);
  }
  [[nodiscard]] const Message& message(std::size_t i) const {
    return messages_.at(i);
  }
  [[nodiscard]] const Path& path(std::size_t i) const { return paths_.at(i); }

  /// The assumed sensor loads lambda^orig.
  [[nodiscard]] la::Vector originalLoads() const;

  // ---- model evaluation at a load vector (one entry per sensor) ----
  [[nodiscard]] double appComputeSeconds(std::size_t a, const la::Vector& loads) const;
  [[nodiscard]] double messageBytes(std::size_t k, const la::Vector& loads) const;
  [[nodiscard]] double messageSeconds(std::size_t k, const la::Vector& loads) const;
  [[nodiscard]] double machineComputeSeconds(std::size_t m,
                                             const la::Vector& loads) const;
  [[nodiscard]] double linkCommSeconds(std::size_t l, const la::Vector& loads) const;
  [[nodiscard]] double pathLatencySeconds(std::size_t p, const la::Vector& loads) const;

  /// True when every machine, link and path constraint holds at `loads`.
  [[nodiscard]] bool satisfies(const QoS& qos, const la::Vector& loads) const;

  // ---- FePIA bridge: single kind (sensor loads) ----
  /// pi = lambda, unit objects/data-set, pi^orig = assumed loads.
  [[nodiscard]] perturb::PerturbationParameter loadParameter() const;
  /// Machine-, link- and path-features as linear functions of lambda.
  /// Throws std::invalid_argument when the system violates `qos` already
  /// at the assumed loads.
  [[nodiscard]] feature::FeatureSet loadFeatureSet(const QoS& qos) const;
  /// Complete single-kind problem.
  [[nodiscard]] radius::FepiaProblem loadProblem(const QoS& qos) const;

  // ---- FePIA bridge: multiple kinds (execution times ⋆ message sizes) ----
  /// pi_1 = per-app compute seconds (kind "execution-times", seconds),
  /// pi_2 = per-message sizes (kind "message-lengths", bytes); originals
  /// are the model values at lambda^orig.
  [[nodiscard]] perturb::PerturbationSpace executionMessageSpace() const;
  /// The same constraints as linear features over the concatenated
  /// (e ⋆ m) space.
  [[nodiscard]] feature::FeatureSet executionMessageFeatureSet(const QoS& qos) const;
  /// Complete multi-kind problem (Section 3 of the paper).
  [[nodiscard]] radius::FepiaProblem executionMessageProblem(const QoS& qos) const;

  // ---- FePIA bridge: three kinds incl. a NONLINEAR one ----
  // The paper lists "sudden machine or link failures" among the other
  // uncertainties a general approach must cover. Partial link failure is
  // modelled as a bandwidth-degradation factor per link: the effective
  // bandwidth of link l becomes B_l · g_l with g_l^orig = 1 (g < 1 =
  // degraded). Communication times m_k / (B_l g_l) are then NONLINEAR in
  // the joint (m, g) perturbation, exercising the numeric radius engine
  // on a real system feature.
  /// pi_1 = execution times (s), pi_2 = message sizes (B),
  /// pi_3 = per-link bandwidth factors (dimensionless, orig = 1).
  [[nodiscard]] perturb::PerturbationSpace executionMessageBandwidthSpace() const;
  /// Same constraints as executionMessageFeatureSet but with comm times
  /// m_k / (B_l g_l): machine features stay linear, link and path
  /// features become generic (AD-differentiated) nonlinear features.
  [[nodiscard]] feature::FeatureSet executionMessageBandwidthFeatureSet(
      const QoS& qos) const;
  /// Complete three-kind problem.
  [[nodiscard]] radius::FepiaProblem executionMessageBandwidthProblem(
      const QoS& qos) const;

  /// Per-app compute seconds at the assumed loads (the e^orig block).
  [[nodiscard]] la::Vector originalExecutionTimes() const;
  /// Per-message bytes at the assumed loads (the m^orig block).
  [[nodiscard]] la::Vector originalMessageSizes() const;

 private:
  void checkLoadsDim(const la::Vector& loads) const;

  std::vector<Sensor> sensors_;
  std::vector<Machine> machines_;
  std::vector<Link> links_;
  std::vector<Application> apps_;
  std::vector<Message> messages_;
  std::vector<Path> paths_;
};

}  // namespace fepia::hiperd
