// Empirical validation of a full FePIA analysis.
//
// Bridges the Monte-Carlo estimator to the paper's merge schemes: for
// each feature of a FepiaProblem, rebuild that feature's P-space (the
// shared normalized map, or the feature's own sensitivity map), run the
// directional estimator around P^orig, and compare against the analytic
// r_mu(phi_i, P) of radius::MergedAnalysis. rho is validated as the
// minimum over features; under the normalized scheme (one shared map) an
// additional joint-region estimate samples the union of all feature
// boundaries directly.
#pragma once

#include <optional>

#include "radius/fepia.hpp"
#include "validate/report.hpp"

namespace fepia::validate {

/// Result of validating one merge scheme of a problem.
struct SchemeValidation {
  radius::MergeScheme scheme{};
  /// One row per feature: analytic r_mu(phi_i, P) vs empirical.
  std::vector<Comparison> perFeature;
  /// rho = min over features, compared against the analytic rho.
  Comparison rho;
  /// Index (into perFeature) of the feature realising the empirical rho.
  std::size_t criticalFeature = 0;
  /// Normalized scheme only: the joint safe region (all features at
  /// once) sampled under the shared map — an independent estimate of rho.
  std::optional<Comparison> joint;

  /// All rows in table order (per-feature, rho, joint if present).
  [[nodiscard]] std::vector<Comparison> allRows() const;
};

/// Validates `problem.merged(scheme)` empirically. Per-feature substream
/// seeds derive deterministically from `opts.seed`; results are
/// bit-identical for a fixed seed regardless of `pool` and thread count.
/// Throws what radius::MergedAnalysis and the estimator throw.
[[nodiscard]] SchemeValidation validateMergedScheme(
    const radius::FepiaProblem& problem, radius::MergeScheme scheme,
    const EstimatorOptions& opts = {}, parallel::ThreadPool* pool = nullptr);

/// Validates the raw pi-space rho (homogeneous units only): samples the
/// joint safe region of all features around pi^orig and compares with
/// robustnessSameUnits().rho. Throws units::MismatchError when the kinds
/// carry different units.
[[nodiscard]] Comparison validateSameUnits(const radius::FepiaProblem& problem,
                                           const EstimatorOptions& opts = {},
                                           parallel::ThreadPool* pool = nullptr);

}  // namespace fepia::validate
