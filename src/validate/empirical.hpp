// Monte-Carlo empirical robustness estimation.
//
// The analytic engines of src/radius compute the robustness radius from
// the feature model; this module cross-checks them statistically, in the
// spirit of robustness-surface estimation (Manzano et al.) and
// sample-based robustness-degradation construction (Chen et al.): probe
// random perturbation directions around the operating point, locate the
// first safe/violating transition along each ray by geometric march +
// bisection on the safe-region membership predicate, and estimate the
// empirical robustness radius as the smallest directional boundary
// distance, with a bootstrap confidence interval.
//
// Determinism contract: for a fixed seed the result is bit-identical
// regardless of thread count. Directions are partitioned into fixed-size
// chunks; chunk c draws from substream c of the seed generator
// (xoshiro256** jump-ahead), every direction's result lands in a
// preallocated slot indexed by direction id, and all reductions run over
// those slots in index order after the parallel phase.
//
// Within a chunk the rays advance in lockstep: each round gathers every
// unfinished ray's next probe point into one SoA block (la::PointBlock)
// and classifies the whole block in a single call — through the batched
// kernels of src/classify for the FeatureSet overload. Per ray, the
// sequence of probe distances, the evaluation count and the resulting
// boundary distance are exactly those of the per-ray scalar loop, so
// batching changes throughput only, never results.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "classify/block_classifier.hpp"
#include "feature/feature.hpp"
#include "la/point_block.hpp"
#include "la/vector.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/descriptive.hpp"

namespace fepia::validate {

/// Safe-region membership: true when the system tolerates operating
/// point `pi` (all features within bounds, DES run satisfies QoS, ...).
/// Must be deterministic — the estimator's reproducibility guarantee is
/// only as good as the predicate's.
using SafePredicate = std::function<bool(const la::Vector&)>;

/// Safe-region membership that also sees the probe-direction index. This
/// is how discrete scenario dimensions ride along with the continuous
/// Monte-Carlo sample: a caller can key a deterministic fault scenario
/// (see fault::estimateDegradedRadius) off the direction id, so the
/// estimator samples the joint (continuous perturbation x discrete
/// scenario) space without the estimator knowing about scenarios. Every
/// evaluation along one ray — march, bisection, and any polish of that
/// direction — passes the same index; the origin check passes index 0.
/// Must be deterministic in both arguments.
using IndexedSafePredicate =
    std::function<bool(const la::Vector&, std::size_t direction)>;

/// Batched safe-region membership: writes 1/0 to `safeOut[l]` when lane
/// l of `block` is safe/violating, with `directions[l]` the probe
/// direction id of lane l (same contract as IndexedSafePredicate,
/// block-wise). The estimator advances every ray of a chunk in lockstep
/// and classifies one block per round, so a single call sees probe
/// points from many rays at different march/bisection depths. Must be
/// deterministic per lane; the estimator copies the callable once per
/// chunk, so scratch captured by value is per-chunk (not shared across
/// threads).
using BlockSafePredicate = std::function<void(
    const la::PointBlock& block, std::span<const std::size_t> directions,
    std::span<std::uint8_t> safeOut)>;

/// Sampling parameters for the empirical estimator.
struct EstimatorOptions {
  /// Number of random probe directions (the Monte-Carlo sample size).
  std::size_t directions = 4096;
  /// Directions per RNG substream; the unit of parallel work. Results do
  /// not depend on this except through the direction -> substream map,
  /// so changing it (unlike the thread count) changes the sample.
  std::size_t chunkSize = 256;
  /// Seed of the substream family.
  std::uint64_t seed = 0x5EEDD1CEull;
  /// Ray horizon: directions with no violation within this distance
  /// count as censored (infinite boundary distance).
  double horizon = 1.0e3;
  /// Bisection refinements after the march brackets the transition; 60
  /// halvings exhaust double precision for any bracket.
  std::size_t bisectIterations = 60;
  /// Restrict probes to the nonnegative orthant (perturbations that only
  /// grow, as in the paper's Figure 1 load space).
  bool nonnegativeDirections = false;
  /// Pattern-search sweeps refining the best sampled direction after the
  /// Monte-Carlo phase. A directional minimum is biased upward — badly
  /// so in high dimension, where no ray lands near the optimal
  /// direction; the polish walks the best direction downhill and removes
  /// most of that bias. Deterministic and serial (does not affect the
  /// thread-count invariance). 0 disables.
  std::size_t polishSweeps = 48;
  /// Bootstrap confidence level for the radius interval.
  double confidence = 0.95;
  /// Bootstrap resamples for the interval.
  std::size_t bootstrapResamples = 1000;
  /// Classification kernel for the FeatureSet overload: Batched (the
  /// SoA engine, default), BatchedF32 (certified float32 pre-pass), or
  /// Scalar (point-at-a-time reference). Every mode produces the same
  /// classification verdicts, so radii, distances and counts are
  /// bit-identical across modes; only throughput differs. Ignored by
  /// the predicate overloads (the predicate is the kernel there).
  classify::Mode classifyMode = classify::Mode::Batched;
  /// Optional metrics sink. When set, the estimator records
  /// "validate.directions" / "validate.classifications" /
  /// "validate.boundary_hits" counters and the per-chunk classification
  /// histogram "validate.chunk_classifications", all written serially
  /// after the parallel phase (never touched by worker threads, so the
  /// determinism contract is unaffected).
  obs::Registry* metrics = nullptr;
  /// Optional live progress counter for telemetry: each chunk adds its
  /// classification-eval count here (one relaxed fetch_add per chunk)
  /// as it completes, so a sampler thread can watch throughput while
  /// the estimator runs. Purely observational — never read back by the
  /// estimator, so results are unaffected.
  std::atomic<std::uint64_t>* liveClassifications = nullptr;
};

/// Result of an empirical radius estimation.
struct EmpiricalEstimate {
  /// The estimate: smallest directional boundary distance, refined by
  /// the polish sweeps (+inf when no direction violated within the
  /// horizon). Still an upper bound on the true radius — it is the
  /// distance along a concrete direction.
  double radius = std::numeric_limits<double>::infinity();
  /// Confidence interval for the radius. The sample minimum is a hard
  /// upper bound (every ray distance >= the true radius); the lower end
  /// extends below it by the larger of the reflected-bootstrap spread
  /// and a Robson-Whitlock endpoint extrapolation from the spacing of
  /// the two smallest distances, so the analytic radius of a correct
  /// model falls inside even in high dimension (where the directional
  /// minimum's upward bias exceeds the resampling spread).
  stats::Interval ci{};
  /// Direction index realising the minimum.
  std::size_t criticalDirection = 0;
  /// Directions sampled / directions whose ray hit the boundary.
  std::size_t directions = 0;
  std::size_t boundaryHits = 0;
  /// Total safe-predicate evaluations across all rays.
  std::size_t classifications = 0;
  /// Kernel work counters of the FeatureSet overload (blocks, lanes,
  /// f32 hits, double fallbacks), merged over all chunk classifiers in
  /// chunk order. Zero for the predicate overloads.
  classify::ClassifyStats classifyStats{};
  /// Summary over the finite (boundary-hitting) directional distances.
  stats::Summary distanceSummary{};
  /// Per-direction boundary distance, in direction order (+inf for
  /// censored rays). Feed to stats::Ecdf for the robustness-degradation
  /// curve: F(r) = fraction of directions already violating at radius r.
  std::vector<double> distances;

  [[nodiscard]] bool finite() const noexcept {
    return radius < std::numeric_limits<double>::infinity();
  }
};

/// Estimates the empirical robustness radius of the region where `safe`
/// holds, around `origin`. Runs serially when `pool` is null, chunked
/// across the pool otherwise; results are bit-identical either way.
/// Throws std::invalid_argument on bad options or an empty origin, and
/// std::domain_error when `safe(origin)` is false (the paper assumes the
/// assumed operating point satisfies QoS).
[[nodiscard]] EmpiricalEstimate estimateEmpiricalRadius(
    const SafePredicate& safe, const la::Vector& origin,
    const EstimatorOptions& opts = {}, parallel::ThreadPool* pool = nullptr);

/// Direction-indexed overload (joint continuous x scenario sampling; see
/// IndexedSafePredicate). The plain-predicate overload is this one with
/// the index ignored, so both produce bit-identical results for the same
/// membership function.
[[nodiscard]] EmpiricalEstimate estimateEmpiricalRadius(
    const IndexedSafePredicate& safe, const la::Vector& origin,
    const EstimatorOptions& opts = {}, parallel::ThreadPool* pool = nullptr);

/// Block-predicate overload: the caller supplies the batched kernel
/// directly. The estimator marches and bisects every ray of a chunk in
/// lockstep, classifying one block per round, so the predicate sees
/// large lane counts even deep into bisection. Per-ray probe sequences,
/// distances and evaluation counts are bit-identical to the scalar
/// overloads for the same membership function.
[[nodiscard]] EmpiricalEstimate estimateEmpiricalRadius(
    const BlockSafePredicate& safe, const la::Vector& origin,
    const EstimatorOptions& opts = {}, parallel::ThreadPool* pool = nullptr);

/// Convenience overload: the safe region of a feature set —
/// phi.allWithinBounds(pi) — around `origin`. Classified through one
/// classify::BlockClassifier per chunk in the kernel mode selected by
/// opts.classifyMode; the result (including every bit of every radius)
/// does not depend on the mode, and the kernels' work counters are
/// returned in EmpiricalEstimate::classifyStats and recorded as
/// "classify.*" counters when opts.metrics is set.
[[nodiscard]] EmpiricalEstimate estimateEmpiricalRadius(
    const feature::FeatureSet& phi, const la::Vector& origin,
    const EstimatorOptions& opts = {}, parallel::ThreadPool* pool = nullptr);

/// Fraction of probe directions already violating at distance `r` — the
/// empirical robustness-degradation function, read off the ECDF of the
/// directional boundary distances. 0 everywhere below the empirical
/// radius; approaches the boundary-hit fraction as r grows.
[[nodiscard]] double violationFraction(const EmpiricalEstimate& est, double r);

}  // namespace fepia::validate
