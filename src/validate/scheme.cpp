#include "validate/scheme.hpp"

#include <limits>

#include "feature/transform.hpp"
#include "radius/merge.hpp"
#include "rng/xoshiro.hpp"

namespace fepia::validate {

namespace {

/// The inverse of a (possibly non-invertible) diagonal map as an affine
/// precomposition: coordinates with zero weight are pinned at the base
/// point, matching DiagonalMap::fromPOnto / alpha_j = 0 semantics.
std::shared_ptr<const feature::PerformanceFeature> pSpaceFeature(
    const std::shared_ptr<const feature::PerformanceFeature>& phi,
    const la::Vector& weights, const la::Vector& base) {
  la::Vector scale(weights.size());
  la::Vector shift(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    scale[i] = weights[i] != 0.0 ? 1.0 / weights[i] : 0.0;
    shift[i] = weights[i] != 0.0 ? 0.0 : base[i];
  }
  return feature::precomposeAffineDiagonal(phi, scale, shift);
}

}  // namespace

std::vector<Comparison> SchemeValidation::allRows() const {
  std::vector<Comparison> rows = perFeature;
  rows.push_back(rho);
  if (joint.has_value()) rows.push_back(*joint);
  return rows;
}

SchemeValidation validateMergedScheme(const radius::FepiaProblem& problem,
                                      radius::MergeScheme scheme,
                                      const EstimatorOptions& opts,
                                      parallel::ThreadPool* pool) {
  const radius::MergedAnalysis analysis = problem.merged(scheme);
  const radius::MergedRobustnessReport& rep = analysis.report();
  const la::Vector orig = problem.space().concatenatedOriginal();

  SchemeValidation out;
  out.scheme = scheme;
  // Fixed per-feature seed derivation: feature i consumes the i-th value
  // of a SplitMix64 stream over opts.seed, independent of pool/threads.
  rng::SplitMix64 seeds(opts.seed);

  double bestEmpirical = std::numeric_limits<double>::infinity();
  std::size_t bestIndex = 0;
  for (std::size_t i = 0; i < rep.features.size(); ++i) {
    const radius::MergedFeatureReport& fr = rep.features[i];
    const radius::DiagonalMap map(fr.mapWeights);
    feature::FeatureSet single;
    single.add(pSpaceFeature(problem.features()[i].feature, fr.mapWeights, orig),
               problem.features()[i].bounds);
    EstimatorOptions perFeature = opts;
    perFeature.seed = seeds.next();
    EmpiricalEstimate est =
        estimateEmpiricalRadius(single, map.toP(orig), perFeature, pool);
    if (est.radius <= bestEmpirical) {
      bestEmpirical = est.radius;
      bestIndex = i;
    }
    out.perFeature.push_back(compare(fr.featureName, fr.radius.radius, est));
  }

  out.rho = compare("rho (min over features)", rep.rho,
                    out.perFeature[bestIndex].empirical);
  out.criticalFeature = bestIndex;

  if (scheme == radius::MergeScheme::NormalizedByOriginal) {
    // One shared map: the joint safe region is well-defined in P-space.
    const la::Vector& weights = rep.features.front().mapWeights;
    const radius::DiagonalMap map(weights);
    feature::FeatureSet joint;
    for (const feature::BoundedFeature& bf : problem.features()) {
      joint.add(pSpaceFeature(bf.feature, weights, orig), bf.bounds);
    }
    EstimatorOptions jointOpts = opts;
    jointOpts.seed = seeds.next();
    out.joint = compare(
        "rho (joint region)", rep.rho,
        estimateEmpiricalRadius(joint, map.toP(orig), jointOpts, pool));
  }
  return out;
}

Comparison validateSameUnits(const radius::FepiaProblem& problem,
                             const EstimatorOptions& opts,
                             parallel::ThreadPool* pool) {
  const radius::RobustnessReport rep = problem.robustnessSameUnits();
  return compare(
      "rho (pi-space)", rep.rho,
      estimateEmpiricalRadius(problem.features(),
                              problem.space().concatenatedOriginal(), opts,
                              pool));
}

}  // namespace fepia::validate
