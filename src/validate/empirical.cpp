#include "validate/empirical.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/span.hpp"
#include "rng/distributions.hpp"
#include "stats/ecdf.hpp"

namespace fepia::validate {

namespace {

void checkOptions(const EstimatorOptions& opts) {
  if (opts.directions == 0) {
    throw std::invalid_argument("validate: directions must be positive");
  }
  if (opts.chunkSize == 0) {
    throw std::invalid_argument("validate: chunkSize must be positive");
  }
  if (!(opts.horizon > 0.0) || !std::isfinite(opts.horizon)) {
    throw std::invalid_argument("validate: horizon must be finite and positive");
  }
  if (!(opts.confidence > 0.0 && opts.confidence < 1.0)) {
    throw std::invalid_argument("validate: confidence must lie in (0, 1)");
  }
}

/// Builds the chunk predicates: called once per chunk id (0..chunks-1)
/// before the parallel phase, plus once with id == chunks for the
/// serial predicate used by the origin check and the polish. Lets the
/// FeatureSet overload give every chunk its own BlockClassifier without
/// the estimator knowing about classifiers.
using BlockPredicateFactory =
    std::function<BlockSafePredicate(std::size_t chunkId)>;

/// One ray's march/bisection state machine. advance() consumes exactly
/// one safe/unsafe verdict per round, replicating the scalar loop of
/// boundaryDistanceAlong (same probe sequence, same exit conditions,
/// same final 0.5*(lo+hi)), so lockstep execution is bit-identical to
/// per-ray execution.
struct RayState {
  enum class Phase { March, Bisect, Done };

  std::vector<double> u;  ///< unit direction
  double lo = 0.0;        ///< known safe distance
  double hi = 0.0;        ///< known unsafe distance (once bracketed)
  double probe = 0.0;     ///< distance to classify next round
  std::size_t iter = 0;   ///< bisection steps taken
  Phase phase = Phase::March;
  double dist = std::numeric_limits<double>::infinity();

  /// Schedules the next bisection probe, or finishes the ray when the
  /// iteration budget is spent or the bracket has collapsed to double
  /// resolution — the scalar loop's exact exit tests, checked before
  /// each evaluation.
  void scheduleBisect(const EstimatorOptions& opts) {
    if (iter >= opts.bisectIterations) {
      finish(0.5 * (lo + hi));
      return;
    }
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) {
      finish(0.5 * (lo + hi));
      return;
    }
    probe = mid;
  }

  void advance(bool safe, const EstimatorOptions& opts) {
    switch (phase) {
      case Phase::March:
        if (!safe) {
          hi = probe;
          phase = Phase::Bisect;
          iter = 0;
          scheduleBisect(opts);
        } else {
          lo = probe;
          if (probe >= opts.horizon) {
            finish(std::numeric_limits<double>::infinity());
          } else {
            probe = std::min(2.0 * probe, opts.horizon);
          }
        }
        break;
      case Phase::Bisect:
        if (safe) {
          lo = probe;
        } else {
          hi = probe;
        }
        ++iter;
        scheduleBisect(opts);
        break;
      case Phase::Done:
        break;
    }
  }

  void finish(double d) {
    dist = d;
    phase = Phase::Done;
  }
};

/// Adapts a block predicate to one-point probes (origin check, polish):
/// a persistent 1-lane block, scattered and classified per call. The
/// per-lane kernels are bit-identical to scalar evaluation, so this is
/// interchangeable with a scalar predicate.
class SingleLaneProbe {
 public:
  SingleLaneProbe(const BlockSafePredicate& pred, std::size_t n)
      : pred_(pred), block_(n, 1) {}

  bool operator()(const la::Vector& pi, std::size_t direction) {
    block_.setPoint(0, pi.span());
    dir_[0] = direction;
    pred_(block_, dir_, std::span<std::uint8_t>(&verdict_, 1));
    return verdict_ != 0;
  }

 private:
  const BlockSafePredicate& pred_;
  la::PointBlock block_;
  std::array<std::size_t, 1> dir_{};
  std::uint8_t verdict_ = 0;
};

/// First safe->unsafe transition distance along `u` from `origin`:
/// geometric march from horizon * 2^-40 doubling up to the horizon, then
/// bisection of the bracketing interval. Returns +inf when the whole ray
/// stays safe. Rays that leave and re-enter the safe region below the
/// march resolution are attributed to the first crossing the march sees
/// (the same caveat as any sampling method on a non-convex region).
/// Serial reference used by the polish; the chunk phase runs the same
/// probe sequence through RayState in lockstep.
double boundaryDistanceAlong(SingleLaneProbe& safe, std::size_t direction,
                             const la::Vector& origin,
                             const std::vector<double>& u,
                             const EstimatorOptions& opts, la::Vector& probe,
                             std::size_t& evals) {
  const std::size_t n = origin.size();
  const auto isSafeAt = [&](double t) {
    for (std::size_t i = 0; i < n; ++i) probe[i] = origin[i] + t * u[i];
    ++evals;
    return safe(probe, direction);
  };

  double lo = 0.0;  // known safe (origin checked by the caller)
  double hi = 0.0;
  bool hit = false;
  double t = std::ldexp(opts.horizon, -40);
  for (;;) {
    if (!isSafeAt(t)) {
      hi = t;
      hit = true;
      break;
    }
    lo = t;
    if (t >= opts.horizon) break;
    t = std::min(2.0 * t, opts.horizon);
  }
  if (!hit) return std::numeric_limits<double>::infinity();

  for (std::size_t it = 0; it < opts.bisectIterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // bracket at double resolution
    if (isSafeAt(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Confidence interval for the region radius from the directional
/// sample. Every directional distance is >= the true radius, so the
/// sample minimum m is a hard upper bound; the question is how far below
/// m the interval must reach to cover the endpoint. Two corrections are
/// combined and the wider one wins:
///
///  * reflected (basic) bootstrap of the minimum: m - (q_hi - m), with
///    q_hi the upper bootstrap quantile of resampled minima — captures
///    the resampling spread, but cannot see past the sample;
///  * Robson-Whitlock endpoint extrapolation: m - (d2 - m) * c / (1 - c)
///    for tail mass c, with d2 the second-smallest distance — the
///    spacing of the lowest order statistics scales with the directional
///    minimum's bias (which grows with dimension), so this reaches below
///    the sample where the bootstrap cannot.
stats::Interval minimumCI(const std::vector<double>& finite, double m,
                          const EstimatorOptions& opts) {
  if (finite.size() < 2) {
    return stats::Interval{m, m};
  }
  double d2 = std::numeric_limits<double>::infinity();
  bool seenMin = false;
  for (const double d : finite) {
    if (d == m && !seenMin) {
      seenMin = true;  // skip one copy of the minimum itself
    } else {
      d2 = std::min(d2, d);
    }
  }
  const double tail = 0.5 * (1.0 - opts.confidence);
  const double spacing = (d2 - m) * (1.0 - tail) / tail;

  double spread = 0.0;
  if (opts.bootstrapResamples > 0) {
    rng::Xoshiro256StarStar g(
        rng::SplitMix64(opts.seed ^ 0xB007B007ull).next());
    std::vector<double> mins(opts.bootstrapResamples);
    for (std::size_t b = 0; b < opts.bootstrapResamples; ++b) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < finite.size(); ++i) {
        best = std::min(best,
                        finite[rng::uniformIndex(g, 0, finite.size() - 1)]);
      }
      mins[b] = best;
    }
    std::sort(mins.begin(), mins.end());
    spread = stats::quantile(mins, 1.0 - tail) - m;
  }
  return stats::Interval{std::max(0.0, m - std::max(spread, spacing)), m};
}

/// Deterministic pattern search on the direction sphere, started from
/// the best sampled direction: perturb one coordinate at a time,
/// renormalise, keep strict improvements, halve the step on a full
/// sweep without one. Serial by design — runs after the parallel phase,
/// so it cannot affect the thread-count invariance.
double polishDirection(SingleLaneProbe& safe, std::size_t direction,
                       const la::Vector& origin, std::vector<double> u,
                       double d0, const EstimatorOptions& opts,
                       la::Vector& probe, std::size_t& evals) {
  const std::size_t n = u.size();
  double best = d0;
  double step = 0.25;
  std::vector<double> v(n);
  for (std::size_t sweep = 0; sweep < opts.polishSweeps && step > 1e-9;
       ++sweep) {
    bool improved = false;
    for (std::size_t j = 0; j < n; ++j) {
      for (const double sgn : {1.0, -1.0}) {
        v = u;
        v[j] += sgn * step;
        if (opts.nonnegativeDirections && v[j] < 0.0) v[j] = 0.0;
        double norm2 = 0.0;
        for (const double x : v) norm2 += x * x;
        if (!(norm2 > 0.0)) continue;
        const double inv = 1.0 / std::sqrt(norm2);
        for (double& x : v) x *= inv;
        const double d = boundaryDistanceAlong(safe, direction, origin, v,
                                               opts, probe, evals);
        if (d < best) {
          best = d;
          u = v;
          improved = true;
        }
      }
    }
    if (!improved) step *= 0.5;
  }
  return best;
}

/// The estimator core, shared by every public overload. Builds one
/// block predicate per chunk (plus a serial one), runs the chunks'
/// lockstep march/bisection — in parallel when a pool is given — and
/// reduces in direction order.
EmpiricalEstimate runEstimator(const BlockPredicateFactory& factory,
                               const la::Vector& origin,
                               const EstimatorOptions& opts,
                               parallel::ThreadPool* pool) {
  checkOptions(opts);
  if (origin.empty()) {
    throw std::invalid_argument("validate: empty origin");
  }

  const std::size_t n = origin.size();
  const std::size_t chunks =
      (opts.directions + opts.chunkSize - 1) / opts.chunkSize;

  // Chunk predicates first (factory runs serially, so it may touch
  // shared state), serial probe last at index `chunks`.
  std::vector<BlockSafePredicate> preds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) preds[c] = factory(c);

  SingleLaneProbe serialProbe(preds[chunks], n);
  // Origin membership is a precondition, not part of the sample — it is
  // deliberately excluded from est.classifications (as before).
  if (!serialProbe(origin, 0)) {
    throw std::domain_error(
        "validate: the origin violates the robustness requirement (the paper "
        "assumes the assumed operating point satisfies QoS)");
  }

  std::vector<double> distances(opts.directions);
  std::vector<std::size_t> evalsPerChunk(chunks, 0);
  // Per-chunk argmin direction, kept for the polish. First-index wins on
  // ties — the same rule the global reduction below uses, so the global
  // critical direction is always its chunk's stored one.
  std::vector<std::vector<double>> bestDirPerChunk(chunks);

  FEPIA_SPAN_ARG("validate.estimate", "directions", opts.directions);

  const rng::Xoshiro256StarStar base(opts.seed);
  const auto runChunk = [&](std::size_t c) {
    FEPIA_SPAN_ARG("validate.chunk", "chunk", c);
    rng::Xoshiro256StarStar g = base.substream(static_cast<unsigned>(c));
    const std::size_t first = c * opts.chunkSize;
    const std::size_t last = std::min(first + opts.chunkSize, opts.directions);
    const std::size_t count = last - first;

    // Draw every direction of the chunk up front, in direction order.
    // The predicate never touches this generator, so the draw sequence
    // is the one the per-ray loop produced.
    std::vector<RayState> rays(count);
    const double t0 = std::ldexp(opts.horizon, -40);
    for (std::size_t i = 0; i < count; ++i) {
      rays[i].u = opts.nonnegativeDirections ? rng::unitSphereNonnegative(g, n)
                                             : rng::unitSphere(g, n);
      rays[i].probe = t0;
    }

    // Lockstep rounds: one SoA block per round holding every unfinished
    // ray's next probe point, one predicate call per round.
    const BlockSafePredicate& pred = preds[c];
    la::PointBlock block(n, count);
    std::vector<std::size_t> laneRay(count);
    std::vector<std::size_t> dirIds(count);
    std::vector<std::uint8_t> verdicts(count);
    std::size_t evals = 0;
    for (;;) {
      std::size_t lanes = 0;
      for (std::size_t r = 0; r < count; ++r) {
        if (rays[r].phase != RayState::Phase::Done) laneRay[lanes++] = r;
      }
      if (lanes == 0) break;
      block.setLanes(lanes);
      for (std::size_t j = 0; j < n; ++j) {
        const std::span<double> row = block.coordinate(j);
        const double oj = origin[j];
        for (std::size_t l = 0; l < lanes; ++l) {
          const RayState& s = rays[laneRay[l]];
          row[l] = oj + s.probe * s.u[j];
        }
      }
      for (std::size_t l = 0; l < lanes; ++l) dirIds[l] = first + laneRay[l];
      pred(block, std::span<const std::size_t>(dirIds.data(), lanes),
           std::span<std::uint8_t>(verdicts.data(), lanes));
      evals += lanes;
      for (std::size_t l = 0; l < lanes; ++l) {
        rays[laneRay[l]].advance(verdicts[l] != 0, opts);
      }
    }

    double chunkBest = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < count; ++i) {
      distances[first + i] = rays[i].dist;
      if (rays[i].dist < chunkBest) {
        chunkBest = rays[i].dist;
        bestDirPerChunk[c] = std::move(rays[i].u);
      }
    }
    evalsPerChunk[c] = evals;
    if (opts.liveClassifications != nullptr) {
      opts.liveClassifications->fetch_add(evals, std::memory_order_relaxed);
    }
  };

  if (pool != nullptr && chunks > 1) {
    parallel::parallelFor(*pool, chunks, runChunk);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) runChunk(c);
  }

  EmpiricalEstimate est;
  est.directions = opts.directions;
  est.distances = std::move(distances);
  for (std::size_t c = 0; c < chunks; ++c) est.classifications += evalsPerChunk[c];

  std::vector<double> finite;
  finite.reserve(est.distances.size());
  for (std::size_t i = 0; i < est.distances.size(); ++i) {
    const double d = est.distances[i];
    if (std::isfinite(d)) {
      finite.push_back(d);
      if (d < est.radius) {
        est.radius = d;
        est.criticalDirection = i;
      }
    }
  }
  est.boundaryHits = finite.size();
  if (!finite.empty()) {
    est.distanceSummary = stats::summarize(finite);
    if (opts.polishSweeps > 0) {
      la::Vector probe(n);
      std::size_t evals = 0;
      est.radius = polishDirection(
          serialProbe, est.criticalDirection, origin,
          bestDirPerChunk[est.criticalDirection / opts.chunkSize], est.radius,
          opts, probe, evals);
      est.classifications += evals;
    }
    est.ci = minimumCI(finite, est.radius, opts);
  }

  if (opts.metrics != nullptr) {
    obs::Registry& reg = *opts.metrics;
    reg.counters().bump("validate.directions", est.directions);
    reg.counters().bump("validate.classifications", est.classifications);
    reg.counters().bump("validate.boundary_hits", est.boundaryHits);
    obs::Histogram& chunkHist = reg.histogram(
        "validate.chunk_classifications",
        obs::Histogram::exponential(64.0, 4.0, 10).upperBounds());
    for (std::size_t c = 0; c < chunks; ++c) {
      chunkHist.record(static_cast<double>(evalsPerChunk[c]));
    }
  }
  return est;
}

}  // namespace

EmpiricalEstimate estimateEmpiricalRadius(const SafePredicate& safe,
                                          const la::Vector& origin,
                                          const EstimatorOptions& opts,
                                          parallel::ThreadPool* pool) {
  if (!safe) {
    throw std::invalid_argument("validate: null safe predicate");
  }
  return estimateEmpiricalRadius(
      IndexedSafePredicate(
          [&safe](const la::Vector& pi, std::size_t) { return safe(pi); }),
      origin, opts, pool);
}

EmpiricalEstimate estimateEmpiricalRadius(const IndexedSafePredicate& safe,
                                          const la::Vector& origin,
                                          const EstimatorOptions& opts,
                                          parallel::ThreadPool* pool) {
  if (!safe) {
    throw std::invalid_argument("validate: null safe predicate");
  }
  // Lane-at-a-time adapter; each chunk's closure owns its gather
  // scratch, so chunks stay thread-independent.
  const std::size_t n = origin.size();
  const BlockPredicateFactory factory =
      [&safe, n](std::size_t) -> BlockSafePredicate {
    return [&safe, scratch = la::Vector(n)](
               const la::PointBlock& block,
               std::span<const std::size_t> directions,
               std::span<std::uint8_t> safeOut) mutable {
      for (std::size_t l = 0; l < block.lanes(); ++l) {
        block.gatherPoint(l, scratch.span());
        safeOut[l] = safe(scratch, directions[l]) ? 1 : 0;
      }
    };
  };
  return runEstimator(factory, origin, opts, pool);
}

EmpiricalEstimate estimateEmpiricalRadius(const BlockSafePredicate& safe,
                                          const la::Vector& origin,
                                          const EstimatorOptions& opts,
                                          parallel::ThreadPool* pool) {
  if (!safe) {
    throw std::invalid_argument("validate: null safe predicate");
  }
  // One copy of the callable per chunk: value-captured scratch inside
  // the caller's predicate becomes per-chunk state automatically.
  return runEstimator([&safe](std::size_t) { return safe; }, origin, opts,
                      pool);
}

EmpiricalEstimate estimateEmpiricalRadius(const feature::FeatureSet& phi,
                                          const la::Vector& origin,
                                          const EstimatorOptions& opts,
                                          parallel::ThreadPool* pool) {
  if (phi.empty()) {
    throw std::invalid_argument("validate: empty feature set");
  }
  if (phi.dimension() != origin.size()) {
    throw std::invalid_argument(
        "validate: origin dimension does not match the feature set");
  }
  checkOptions(opts);

  const std::size_t chunks =
      (opts.directions + opts.chunkSize - 1) / opts.chunkSize;
  std::vector<std::unique_ptr<classify::BlockClassifier>> classifiers(chunks +
                                                                      1);
  const BlockPredicateFactory factory =
      [&phi, &classifiers, &opts](std::size_t id) -> BlockSafePredicate {
    classifiers[id] =
        std::make_unique<classify::BlockClassifier>(phi, opts.classifyMode);
    classify::BlockClassifier* cls = classifiers[id].get();
    return [cls](const la::PointBlock& block, std::span<const std::size_t>,
                 std::span<std::uint8_t> safeOut) {
      cls->classify(block, safeOut);
    };
  };

  EmpiricalEstimate est = runEstimator(factory, origin, opts, pool);
  for (const auto& cls : classifiers) {
    if (cls) est.classifyStats.merge(cls->stats());
  }
  if (opts.metrics != nullptr) {
    auto& counters = opts.metrics->counters();
    counters.bump("classify.blocks", est.classifyStats.blocks);
    counters.bump("classify.lanes", est.classifyStats.lanes);
    counters.bump("classify.f32_hits", est.classifyStats.f32Hits);
    counters.bump("classify.double_fallbacks",
                  est.classifyStats.doubleFallbacks);
  }
  return est;
}

double violationFraction(const EmpiricalEstimate& est, double r) {
  if (est.distances.empty()) {
    throw std::invalid_argument("validate: estimate holds no distances");
  }
  if (est.boundaryHits == 0) return 0.0;
  std::vector<double> finite;
  finite.reserve(est.boundaryHits);
  for (double d : est.distances) {
    if (std::isfinite(d)) finite.push_back(d);
  }
  const stats::Ecdf cdf(finite);
  return cdf(r) * static_cast<double>(est.boundaryHits) /
         static_cast<double>(est.directions);
}

}  // namespace fepia::validate
