// Analytic-vs-empirical comparison reporting for the validation engine.
//
// A Comparison pairs one analytic radius (closed form or numeric engine)
// with one empirical estimate and records how they relate: relative
// error and whether the analytic value falls inside the empirical
// bootstrap interval. The renderers emit the structured report the CLI
// and benches print — a src/report table and a line-oriented JSON
// document for machine consumption.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "report/table.hpp"
#include "validate/empirical.hpp"

namespace fepia::validate {

/// One analytic-vs-empirical row.
struct Comparison {
  std::string label;          ///< feature / scheme being validated
  double analyticRadius = 0.0;
  EmpiricalEstimate empirical;
  /// (empirical - analytic) / analytic; NaN when the analytic radius is
  /// zero or either side is infinite.
  double relativeError = 0.0;
  /// True when the analytic radius lies within the empirical CI.
  bool analyticWithinCI = false;
};

/// Builds a Comparison from its parts (computes the derived fields).
[[nodiscard]] Comparison compare(std::string label, double analyticRadius,
                                 EmpiricalEstimate empirical);

/// Renders rows as a src/report table: label, analytic, empirical,
/// relative error, CI, CI verdict, boundary hits, classifications.
[[nodiscard]] report::Table comparisonTable(std::span<const Comparison> rows);

/// Writes the structured JSON report:
///   {"rows": [{"label": ..., "analytic": ..., "empirical": ...,
///     "relative_error": ..., "ci": [lo, hi], "within_ci": ...,
///     "directions": ..., "boundary_hits": ..., "classifications": ...},
///    ...]}
/// When `manifest` is non-null a "manifest" object (see
/// obs::RunManifest::writeJson) is emitted before "rows".
void writeComparisonJson(std::ostream& os, std::span<const Comparison> rows,
                         const obs::RunManifest* manifest = nullptr);

}  // namespace fepia::validate
