#include "validate/report.hpp"

#include <cmath>
#include <limits>
#include <ostream>

#include "obs/json.hpp"

namespace fepia::validate {

namespace {

std::string jsonNumber(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  return report::num(v, 17);
}

}  // namespace

Comparison compare(std::string label, double analyticRadius,
                   EmpiricalEstimate empirical) {
  Comparison c;
  c.label = std::move(label);
  c.analyticRadius = analyticRadius;
  c.empirical = std::move(empirical);
  if (analyticRadius != 0.0 && std::isfinite(analyticRadius) &&
      c.empirical.finite()) {
    c.relativeError = (c.empirical.radius - analyticRadius) / analyticRadius;
  } else {
    c.relativeError = std::numeric_limits<double>::quiet_NaN();
  }
  if (std::isinf(analyticRadius) && !c.empirical.finite()) {
    // Both sides agree the region is unbounded in every sampled direction.
    c.analyticWithinCI = true;
  } else {
    // Ulp-level slack: the bisection's final bracket midpoint can land a
    // couple of ulps on either side of the analytic value.
    const double slack = 1e-12 * (1.0 + std::abs(analyticRadius));
    c.analyticWithinCI = c.empirical.finite() &&
                         analyticRadius >= c.empirical.ci.lo - slack &&
                         analyticRadius <= c.empirical.ci.hi + slack;
  }
  return c;
}

report::Table comparisonTable(std::span<const Comparison> rows) {
  report::Table table({"feature", "analytic", "empirical", "rel err",
                       "95% CI", "analytic in CI", "hits/dirs", "classif."});
  for (const Comparison& c : rows) {
    const bool fin = c.empirical.finite();
    std::string ci = "-";
    if (fin) {
      ci = "[";
      ci += report::num(c.empirical.ci.lo, 6);
      ci += ", ";
      ci += report::num(c.empirical.ci.hi, 6);
      ci += "]";
    }
    table.addRow(
        {c.label,
         std::isfinite(c.analyticRadius) ? report::num(c.analyticRadius, 8)
                                         : "inf",
         fin ? report::num(c.empirical.radius, 8) : "inf",
         std::isnan(c.relativeError) ? "-" : report::num(c.relativeError, 3),
         std::move(ci),
         c.analyticWithinCI ? "yes" : "NO",
         std::to_string(c.empirical.boundaryHits) + "/" +
             std::to_string(c.empirical.directions),
         std::to_string(c.empirical.classifications)});
  }
  return table;
}

void writeComparisonJson(std::ostream& os, std::span<const Comparison> rows,
                         const obs::RunManifest* manifest) {
  os << "{";
  if (manifest != nullptr) {
    os << "\"manifest\": ";
    manifest->writeJson(os);
    os << ", ";
  }
  os << "\"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Comparison& c = rows[i];
    if (i != 0) os << ", ";
    os << "{\"label\": ";
    obs::writeJsonString(os, c.label);
    os << ", \"analytic\": " << jsonNumber(c.analyticRadius)
       << ", \"empirical\": " << jsonNumber(c.empirical.radius)
       << ", \"relative_error\": " << jsonNumber(c.relativeError)
       << ", \"ci\": [" << jsonNumber(c.empirical.ci.lo) << ", "
       << jsonNumber(c.empirical.ci.hi) << "]"
       << ", \"within_ci\": " << (c.analyticWithinCI ? "true" : "false")
       << ", \"directions\": " << c.empirical.directions
       << ", \"boundary_hits\": " << c.empirical.boundaryHits
       << ", \"classifications\": " << c.empirical.classifications << "}";
  }
  os << "]}\n";
}

}  // namespace fepia::validate
