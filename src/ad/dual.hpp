// Forward-mode automatic differentiation with dynamically-sized duals.
//
// The numeric robustness-radius solver needs exact gradients of arbitrary
// performance features phi_i(pi) to follow the constraint manifold
// f_i(pi) = beta. Users write their feature once as a template over the
// scalar type; instantiating it with ad::Dual yields machine-precision
// gradients with no finite-difference tuning.
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace fepia::ad {

/// A scalar value paired with its vector of partial derivatives.
///
/// Partials are dynamically sized; binary operations require both
/// operands to carry the same number of partials (or one operand to be a
/// constant, represented by an empty partials vector).
class Dual {
 public:
  /// A constant (zero derivative in every direction).
  Dual(double value = 0.0) : value_(value) {}  // NOLINT(google-explicit-constructor)

  /// A value with explicit partials.
  Dual(double value, std::vector<double> partials)
      : value_(value), partials_(std::move(partials)) {}

  /// The `i`-th of `n` independent variables: partials = e_i.
  static Dual variable(double value, std::size_t i, std::size_t n) {
    if (i >= n) throw std::out_of_range("ad::Dual::variable: index out of range");
    std::vector<double> p(n, 0.0);
    p[i] = 1.0;
    return Dual(value, std::move(p));
  }

  [[nodiscard]] double value() const noexcept { return value_; }

  /// Partial derivative with respect to variable `i` (0 for constants).
  [[nodiscard]] double partial(std::size_t i) const {
    return i < partials_.size() ? partials_[i] : 0.0;
  }

  [[nodiscard]] const std::vector<double>& partials() const noexcept {
    return partials_;
  }

  /// True when this dual carries no derivative information.
  [[nodiscard]] bool isConstant() const noexcept { return partials_.empty(); }

  Dual& operator+=(const Dual& rhs);
  Dual& operator-=(const Dual& rhs);
  Dual& operator*=(const Dual& rhs);
  Dual& operator/=(const Dual& rhs);

 private:
  // Combines partials elementwise: out = a*this' + b*rhs'.
  void combine(const Dual& rhs, double a, double b);

  double value_;
  std::vector<double> partials_;  // empty == constant
};

[[nodiscard]] Dual operator+(Dual lhs, const Dual& rhs);
[[nodiscard]] Dual operator-(Dual lhs, const Dual& rhs);
[[nodiscard]] Dual operator*(Dual lhs, const Dual& rhs);
[[nodiscard]] Dual operator/(Dual lhs, const Dual& rhs);
[[nodiscard]] Dual operator-(const Dual& x);

[[nodiscard]] bool operator<(const Dual& a, const Dual& b) noexcept;
[[nodiscard]] bool operator>(const Dual& a, const Dual& b) noexcept;
[[nodiscard]] bool operator<=(const Dual& a, const Dual& b) noexcept;
[[nodiscard]] bool operator>=(const Dual& a, const Dual& b) noexcept;

// Elementary functions with exact derivative propagation.
[[nodiscard]] Dual sin(const Dual& x);
[[nodiscard]] Dual cos(const Dual& x);
[[nodiscard]] Dual exp(const Dual& x);
[[nodiscard]] Dual log(const Dual& x);    // throws std::domain_error for x <= 0
[[nodiscard]] Dual sqrt(const Dual& x);   // throws std::domain_error for x < 0
[[nodiscard]] Dual pow(const Dual& x, double p);
[[nodiscard]] Dual abs(const Dual& x);    // derivative is sign(x); 0 at x == 0
[[nodiscard]] Dual max(const Dual& a, const Dual& b);
[[nodiscard]] Dual min(const Dual& a, const Dual& b);

}  // namespace fepia::ad
