// Gradient and directional-derivative helpers over ad::Dual, plus a
// finite-difference fallback used to cross-check user-supplied features.
#pragma once

#include <functional>

#include "ad/dual.hpp"
#include "la/vector.hpp"

namespace fepia::ad {

/// A scalar field given in dual form: callable on a vector of duals.
using DualField = std::function<Dual(const std::vector<Dual>&)>;

/// A plain scalar field on doubles.
using ScalarField = std::function<double(const la::Vector&)>;

/// Value and exact gradient of `f` at `x` via one forward-mode sweep.
struct ValueAndGradient {
  double value = 0.0;
  la::Vector gradient;
};
[[nodiscard]] ValueAndGradient valueAndGradient(const DualField& f,
                                                const la::Vector& x);

/// Exact gradient only.
[[nodiscard]] la::Vector gradient(const DualField& f, const la::Vector& x);

/// Evaluates a dual field on plain doubles (all inputs as constants).
[[nodiscard]] double evaluate(const DualField& f, const la::Vector& x);

/// Central finite-difference gradient of a plain scalar field; `h` is the
/// relative step (scaled per coordinate by max(1,|x_i|)).
[[nodiscard]] la::Vector finiteDifferenceGradient(const ScalarField& f,
                                                  const la::Vector& x,
                                                  double h = 1e-6);

}  // namespace fepia::ad
