#include "ad/gradient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fepia::ad {

// ---------- Dual ----------

void Dual::combine(const Dual& rhs, double a, double b) {
  if (rhs.partials_.empty()) {
    for (double& p : partials_) p *= a;
    return;
  }
  if (partials_.empty()) {
    partials_.assign(rhs.partials_.size(), 0.0);
  } else if (partials_.size() != rhs.partials_.size()) {
    throw std::invalid_argument("ad::Dual: mixing duals of different arity");
  }
  for (std::size_t i = 0; i < partials_.size(); ++i) {
    partials_[i] = a * partials_[i] + b * rhs.partials_[i];
  }
}

Dual& Dual::operator+=(const Dual& rhs) {
  combine(rhs, 1.0, 1.0);
  value_ += rhs.value_;
  return *this;
}

Dual& Dual::operator-=(const Dual& rhs) {
  combine(rhs, 1.0, -1.0);
  value_ -= rhs.value_;
  return *this;
}

Dual& Dual::operator*=(const Dual& rhs) {
  // (uv)' = v u' + u v' ; must be computed before value_ changes.
  combine(rhs, rhs.value_, value_);
  value_ *= rhs.value_;
  return *this;
}

Dual& Dual::operator/=(const Dual& rhs) {
  if (rhs.value_ == 0.0) throw std::domain_error("ad::Dual: division by zero");
  // (u/v)' = u'/v − u v'/v².
  combine(rhs, 1.0 / rhs.value_, -value_ / (rhs.value_ * rhs.value_));
  value_ /= rhs.value_;
  return *this;
}

Dual operator+(Dual lhs, const Dual& rhs) { return lhs += rhs; }
Dual operator-(Dual lhs, const Dual& rhs) { return lhs -= rhs; }
Dual operator*(Dual lhs, const Dual& rhs) { return lhs *= rhs; }
Dual operator/(Dual lhs, const Dual& rhs) { return lhs /= rhs; }

Dual operator-(const Dual& x) {
  std::vector<double> p = x.partials();
  for (double& v : p) v = -v;
  return Dual(-x.value(), std::move(p));
}

bool operator<(const Dual& a, const Dual& b) noexcept { return a.value() < b.value(); }
bool operator>(const Dual& a, const Dual& b) noexcept { return a.value() > b.value(); }
bool operator<=(const Dual& a, const Dual& b) noexcept { return a.value() <= b.value(); }
bool operator>=(const Dual& a, const Dual& b) noexcept { return a.value() >= b.value(); }

namespace {

// Applies the chain rule: result value `v`, derivative scale `dv`.
Dual chain(const Dual& x, double v, double dv) {
  std::vector<double> p = x.partials();
  for (double& pi : p) pi *= dv;
  return Dual(v, std::move(p));
}

}  // namespace

Dual sin(const Dual& x) { return chain(x, std::sin(x.value()), std::cos(x.value())); }
Dual cos(const Dual& x) { return chain(x, std::cos(x.value()), -std::sin(x.value())); }
Dual exp(const Dual& x) {
  const double e = std::exp(x.value());
  return chain(x, e, e);
}

Dual log(const Dual& x) {
  if (x.value() <= 0.0) throw std::domain_error("ad::log: non-positive argument");
  return chain(x, std::log(x.value()), 1.0 / x.value());
}

Dual sqrt(const Dual& x) {
  if (x.value() < 0.0) throw std::domain_error("ad::sqrt: negative argument");
  const double s = std::sqrt(x.value());
  // Derivative is unbounded at 0; propagate 0 partials there by convention.
  const double d = s == 0.0 ? 0.0 : 0.5 / s;
  return chain(x, s, d);
}

Dual pow(const Dual& x, double p) {
  const double v = std::pow(x.value(), p);
  const double d = p * std::pow(x.value(), p - 1.0);
  return chain(x, v, d);
}

Dual abs(const Dual& x) {
  const double sign = x.value() > 0.0 ? 1.0 : (x.value() < 0.0 ? -1.0 : 0.0);
  return chain(x, std::abs(x.value()), sign);
}

Dual max(const Dual& a, const Dual& b) { return a.value() >= b.value() ? a : b; }
Dual min(const Dual& a, const Dual& b) { return a.value() <= b.value() ? a : b; }

// ---------- gradient helpers ----------

ValueAndGradient valueAndGradient(const DualField& f, const la::Vector& x) {
  const std::size_t n = x.size();
  std::vector<Dual> duals;
  duals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) duals.push_back(Dual::variable(x[i], i, n));
  const Dual out = f(duals);
  ValueAndGradient vg;
  vg.value = out.value();
  vg.gradient = la::Vector(n);
  for (std::size_t i = 0; i < n; ++i) vg.gradient[i] = out.partial(i);
  return vg;
}

la::Vector gradient(const DualField& f, const la::Vector& x) {
  return valueAndGradient(f, x).gradient;
}

double evaluate(const DualField& f, const la::Vector& x) {
  std::vector<Dual> duals;
  duals.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) duals.emplace_back(x[i]);
  return f(duals).value();
}

la::Vector finiteDifferenceGradient(const ScalarField& f, const la::Vector& x,
                                    double h) {
  if (h <= 0.0) throw std::invalid_argument("ad::finiteDifferenceGradient: h <= 0");
  la::Vector g(x.size());
  la::Vector probe = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double step = h * std::max(1.0, std::abs(x[i]));
    probe[i] = x[i] + step;
    const double fp = f(probe);
    probe[i] = x[i] - step;
    const double fm = f(probe);
    probe[i] = x[i];
    g[i] = (fp - fm) / (2.0 * step);
  }
  return g;
}

}  // namespace fepia::ad
