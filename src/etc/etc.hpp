// Expected-time-to-compute (ETC) matrix generation.
//
// The makespan case study of baseline [2] assumes a matrix of estimated
// execution times e(t, m) of task t on machine m. The heterogeneous-
// computing literature (including the paper's authors) generates such
// matrices synthetically with controlled task and machine heterogeneity.
// Two standard generators are provided:
//
//  * Range-based: e(t,m) = q_t · U[1, R_mach), with q_t ~ U[1, R_task).
//  * CVB (coefficient-of-variation-based): q_t ~ Gamma(mean = muTask,
//    cov = vTask); e(t,m) ~ Gamma(mean = q_t, cov = vMach).
//
// High/low heterogeneity presets match the common four regimes
// (hi-hi, hi-lo, lo-hi, lo-lo).
#pragma once

#include <cstddef>
#include <string>

#include "la/matrix.hpp"
#include "rng/xoshiro.hpp"

namespace fepia::etc {

/// Task/machine heterogeneity regime.
enum class Heterogeneity { HiHi, HiLo, LoHi, LoLo };

/// Name like "hi-hi" for reports.
[[nodiscard]] const char* heterogeneityName(Heterogeneity h) noexcept;

/// Parameters of the CVB generator.
struct CvbParams {
  double meanTask = 100.0;  ///< mu_task: mean task execution time (seconds)
  double covTask = 0.6;     ///< V_task: task heterogeneity
  double covMachine = 0.6;  ///< V_mach: machine heterogeneity
};

/// Standard CVB presets: 0.6 for "high", 0.1 for "low" heterogeneity.
[[nodiscard]] CvbParams cvbPreset(Heterogeneity h, double meanTask = 100.0);

/// Generates a tasks x machines ETC matrix with the CVB method.
/// Throws std::invalid_argument for zero sizes or non-positive params.
[[nodiscard]] la::Matrix generateCvb(std::size_t tasks, std::size_t machines,
                                     const CvbParams& params,
                                     rng::Xoshiro256StarStar& g);

/// Parameters of the range-based generator.
struct RangeParams {
  double taskRange = 1000.0;     ///< R_task: tasks span [1, R_task)
  double machineRange = 100.0;   ///< R_mach: machine multiplier spans [1, R_mach)
};

/// Generates a tasks x machines ETC matrix with the range-based method.
[[nodiscard]] la::Matrix generateRange(std::size_t tasks, std::size_t machines,
                                       const RangeParams& params,
                                       rng::Xoshiro256StarStar& g);

/// Consistency post-processing: sorts each row so machine 0 is fastest
/// for every task (a "consistent" ETC in HC terminology).
void makeConsistent(la::Matrix& etcMatrix);

/// Empirical heterogeneity report of a generated matrix.
struct HeterogeneityReport {
  double taskCov = 0.0;     ///< CoV of per-task row means
  double machineCov = 0.0;  ///< mean CoV within rows
};
[[nodiscard]] HeterogeneityReport measureHeterogeneity(const la::Matrix& etcMatrix);

}  // namespace fepia::etc
