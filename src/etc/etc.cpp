#include "etc/etc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "rng/distributions.hpp"

namespace fepia::etc {

const char* heterogeneityName(Heterogeneity h) noexcept {
  switch (h) {
    case Heterogeneity::HiHi:
      return "hi-hi";
    case Heterogeneity::HiLo:
      return "hi-lo";
    case Heterogeneity::LoHi:
      return "lo-hi";
    case Heterogeneity::LoLo:
      return "lo-lo";
  }
  return "unknown";
}

CvbParams cvbPreset(Heterogeneity h, double meanTask) {
  constexpr double kHigh = 0.6;
  constexpr double kLow = 0.1;
  CvbParams p;
  p.meanTask = meanTask;
  switch (h) {
    case Heterogeneity::HiHi:
      p.covTask = kHigh;
      p.covMachine = kHigh;
      break;
    case Heterogeneity::HiLo:
      p.covTask = kHigh;
      p.covMachine = kLow;
      break;
    case Heterogeneity::LoHi:
      p.covTask = kLow;
      p.covMachine = kHigh;
      break;
    case Heterogeneity::LoLo:
      p.covTask = kLow;
      p.covMachine = kLow;
      break;
  }
  return p;
}

namespace {

void requireSizes(std::size_t tasks, std::size_t machines, const char* fn) {
  if (tasks == 0 || machines == 0) {
    throw std::invalid_argument(std::string("etc::") + fn +
                                ": tasks and machines must be nonzero");
  }
}

}  // namespace

la::Matrix generateCvb(std::size_t tasks, std::size_t machines,
                       const CvbParams& params, rng::Xoshiro256StarStar& g) {
  requireSizes(tasks, machines, "generateCvb");
  if (params.meanTask <= 0.0 || params.covTask <= 0.0 || params.covMachine <= 0.0) {
    throw std::invalid_argument("etc::generateCvb: parameters must be positive");
  }
  la::Matrix out(tasks, machines);
  for (std::size_t t = 0; t < tasks; ++t) {
    const double q = rng::gammaMeanCov(g, params.meanTask, params.covTask);
    for (std::size_t m = 0; m < machines; ++m) {
      out(t, m) = rng::gammaMeanCov(g, q, params.covMachine);
    }
  }
  return out;
}

la::Matrix generateRange(std::size_t tasks, std::size_t machines,
                         const RangeParams& params, rng::Xoshiro256StarStar& g) {
  requireSizes(tasks, machines, "generateRange");
  if (params.taskRange <= 1.0 || params.machineRange <= 1.0) {
    throw std::invalid_argument("etc::generateRange: ranges must exceed 1");
  }
  la::Matrix out(tasks, machines);
  for (std::size_t t = 0; t < tasks; ++t) {
    const double q = rng::uniform(g, 1.0, params.taskRange);
    for (std::size_t m = 0; m < machines; ++m) {
      out(t, m) = q * rng::uniform(g, 1.0, params.machineRange);
    }
  }
  return out;
}

void makeConsistent(la::Matrix& etcMatrix) {
  std::vector<double> row(etcMatrix.cols());
  for (std::size_t t = 0; t < etcMatrix.rows(); ++t) {
    for (std::size_t m = 0; m < etcMatrix.cols(); ++m) row[m] = etcMatrix(t, m);
    std::sort(row.begin(), row.end());
    for (std::size_t m = 0; m < etcMatrix.cols(); ++m) etcMatrix(t, m) = row[m];
  }
}

HeterogeneityReport measureHeterogeneity(const la::Matrix& etcMatrix) {
  if (etcMatrix.rows() == 0 || etcMatrix.cols() == 0) {
    throw std::invalid_argument("etc::measureHeterogeneity: empty matrix");
  }
  const auto rows = etcMatrix.rows();
  const auto cols = etcMatrix.cols();
  std::vector<double> rowMeans(rows, 0.0);
  double covSum = 0.0;
  for (std::size_t t = 0; t < rows; ++t) {
    double mean = 0.0;
    for (std::size_t m = 0; m < cols; ++m) mean += etcMatrix(t, m);
    mean /= static_cast<double>(cols);
    rowMeans[t] = mean;
    if (cols >= 2 && mean > 0.0) {
      double var = 0.0;
      for (std::size_t m = 0; m < cols; ++m) {
        const double d = etcMatrix(t, m) - mean;
        var += d * d;
      }
      var /= static_cast<double>(cols - 1);
      covSum += std::sqrt(var) / mean;
    }
  }
  HeterogeneityReport rep;
  rep.machineCov = covSum / static_cast<double>(rows);
  double mm = 0.0;
  for (double v : rowMeans) mm += v;
  mm /= static_cast<double>(rows);
  if (rows >= 2 && mm > 0.0) {
    double var = 0.0;
    for (double v : rowMeans) var += (v - mm) * (v - mm);
    var /= static_cast<double>(rows - 1);
    rep.taskCov = std::sqrt(var) / mm;
  }
  return rep;
}

}  // namespace fepia::etc
