#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fepia::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("report::Table: need at least one column");
  }
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("report::Table::addRow: expected " +
                                std::to_string(headers_.size()) + " cells, got " +
                                std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  emitRow(headers_);
  std::size_t ruleWidth = 2 * (headers_.size() - 1);
  for (std::size_t w : widths) ruleWidth += w;
  os << std::string(ruleWidth, '-') << '\n';
  for (const auto& row : rows_) emitRow(row);
}

namespace {

std::string csvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::printCsv(std::ostream& os) const {
  const auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csvEscape(row[c]);
    }
    os << '\n';
  };
  emitRow(headers_);
  for (const auto& row : rows_) emitRow(row);
}

void Table::printMarkdown(std::ostream& os) const {
  const auto emitRow = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << " | ";
      os << row[c];
    }
    os << " |\n";
  };
  emitRow(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emitRow(row);
}

std::string num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

std::string fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

}  // namespace fepia::report
