// Fixed-width/CSV/Markdown table emission for the benchmark harness, so
// every experiment prints rows the way the paper's tables would.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fepia::report {

/// A simple column-aligned table builder.
class Table {
 public:
  /// Creates a table with the given column headers (at least one).
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; throws std::invalid_argument on column-count mismatch.
  void addRow(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columnCount() const noexcept {
    return headers_.size();
  }

  /// Fixed-width rendering with a header rule.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void printCsv(std::ostream& os) const;

  /// GitHub-flavoured Markdown.
  void printMarkdown(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant digits (general format).
[[nodiscard]] std::string num(double v, int precision = 6);

/// Formats a double in fixed-point with `decimals` digits.
[[nodiscard]] std::string fixed(double v, int decimals = 4);

}  // namespace fepia::report
