// A perturbation parameter pi_j — step 2 of the FePIA procedure.
//
// "Let Pi be the set of perturbation parameters. It is assumed that the
// elements of Pi are vectors. [...] representation of the perturbation
// parameters as separate elements of Pi would be based on their nature
// or kind (e.g., message length variables in pi_1 and computation time
// variables in pi_2)."
#pragma once

#include <string>
#include <vector>

#include "la/vector.hpp"
#include "units/unit.hpp"

namespace fepia::perturb {

/// One kind of perturbation parameter: a named vector whose elements all
/// share one unit, plus the assumed operating point pi_j^orig.
///
/// Invariants: at least one element; element labels, when provided, are
/// one per element.
class PerturbationParameter {
 public:
  /// Creates a parameter with anonymous elements.
  /// Throws std::invalid_argument when `original` is empty.
  PerturbationParameter(std::string name, units::Unit unit, la::Vector original);

  /// Creates a parameter with labelled elements (e.g. task names).
  /// Throws std::invalid_argument on size mismatch or empty `original`.
  PerturbationParameter(std::string name, units::Unit unit, la::Vector original,
                        std::vector<std::string> elementLabels);

  /// Kind name, e.g. "execution-times".
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Physical unit shared by every element (seconds, bytes, ...).
  [[nodiscard]] const units::Unit& unit() const noexcept { return unit_; }

  /// Dimension n_{pi_j} of the vector.
  [[nodiscard]] std::size_t size() const noexcept { return original_.size(); }

  /// The assumed value pi_j^orig.
  [[nodiscard]] const la::Vector& original() const noexcept { return original_; }

  /// Label of element `i` ("<name>[i]" when unlabelled).
  [[nodiscard]] std::string elementLabel(std::size_t i) const;

  /// True when every original element is nonzero — required by the
  /// normalized merge scheme (division by pi^orig).
  [[nodiscard]] bool allOriginalsNonzero() const noexcept;

 private:
  std::string name_;
  units::Unit unit_;
  la::Vector original_;
  std::vector<std::string> labels_;  // empty or one per element
};

}  // namespace fepia::perturb
