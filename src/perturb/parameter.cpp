#include "perturb/parameter.hpp"

#include <stdexcept>

namespace fepia::perturb {

PerturbationParameter::PerturbationParameter(std::string name, units::Unit unit,
                                             la::Vector original)
    : name_(std::move(name)), unit_(unit), original_(std::move(original)) {
  if (original_.empty()) {
    throw std::invalid_argument("perturb::PerturbationParameter '" + name_ +
                                "': needs at least one element");
  }
}

PerturbationParameter::PerturbationParameter(std::string name, units::Unit unit,
                                             la::Vector original,
                                             std::vector<std::string> elementLabels)
    : PerturbationParameter(std::move(name), unit, std::move(original)) {
  if (elementLabels.size() != original_.size()) {
    throw std::invalid_argument("perturb::PerturbationParameter '" + name_ +
                                "': label count does not match dimension");
  }
  labels_ = std::move(elementLabels);
}

std::string PerturbationParameter::elementLabel(std::size_t i) const {
  if (i >= size()) {
    throw std::out_of_range("perturb::PerturbationParameter::elementLabel");
  }
  if (!labels_.empty()) return labels_[i];
  return name_ + "[" + std::to_string(i) + "]";
}

bool PerturbationParameter::allOriginalsNonzero() const noexcept {
  for (double v : original_) {
    if (v == 0.0) return false;
  }
  return true;
}

}  // namespace fepia::perturb
