#include "perturb/space.hpp"

#include <stdexcept>

namespace fepia::perturb {

std::size_t PerturbationSpace::add(PerturbationParameter param) {
  offsets_.push_back(total_);
  total_ += param.size();
  params_.push_back(std::move(param));
  return params_.size() - 1;
}

const PerturbationParameter& PerturbationSpace::kind(std::size_t j) const {
  if (j >= params_.size()) {
    throw std::out_of_range("perturb::PerturbationSpace::kind");
  }
  return params_[j];
}

std::size_t PerturbationSpace::blockOffset(std::size_t j) const {
  if (j >= offsets_.size()) {
    throw std::out_of_range("perturb::PerturbationSpace::blockOffset");
  }
  return offsets_[j];
}

std::string PerturbationSpace::flatLabel(std::size_t i) const {
  if (i >= total_) throw std::out_of_range("perturb::PerturbationSpace::flatLabel");
  for (std::size_t j = params_.size(); j-- > 0;) {
    if (i >= offsets_[j]) return params_[j].elementLabel(i - offsets_[j]);
  }
  throw std::logic_error("perturb::PerturbationSpace::flatLabel: bad layout");
}

la::Vector PerturbationSpace::concatenatedOriginal() const {
  la::Vector out;
  out.resize(total_);
  for (std::size_t j = 0; j < params_.size(); ++j) {
    const la::Vector& orig = params_[j].original();
    for (std::size_t i = 0; i < orig.size(); ++i) out[offsets_[j] + i] = orig[i];
  }
  return out;
}

la::Vector PerturbationSpace::concatenate(std::span<const la::Vector> perKind) const {
  if (!homogeneousUnits()) {
    // Find a pair to name in the error.
    for (std::size_t j = 1; j < params_.size(); ++j) {
      units::requireSameUnit(params_[0].unit(), params_[j].unit(),
                             "perturb::PerturbationSpace::concatenate");
    }
  }
  return concatenateUnchecked(perKind);
}

la::Vector PerturbationSpace::concatenateUnchecked(
    std::span<const la::Vector> perKind) const {
  if (perKind.size() != params_.size()) {
    throw std::invalid_argument(
        "perturb::PerturbationSpace::concatenate: expected one vector per kind");
  }
  la::Vector out;
  out.resize(total_);
  for (std::size_t j = 0; j < params_.size(); ++j) {
    if (perKind[j].size() != params_[j].size()) {
      throw std::invalid_argument(
          "perturb::PerturbationSpace::concatenate: block '" +
          params_[j].name() + "' has wrong dimension");
    }
    for (std::size_t i = 0; i < perKind[j].size(); ++i) {
      out[offsets_[j] + i] = perKind[j][i];
    }
  }
  return out;
}

std::vector<la::Vector> PerturbationSpace::split(const la::Vector& flat) const {
  if (flat.size() != total_) {
    throw std::invalid_argument("perturb::PerturbationSpace::split: dimension");
  }
  std::vector<la::Vector> out;
  out.reserve(params_.size());
  for (std::size_t j = 0; j < params_.size(); ++j) {
    la::Vector block(params_[j].size());
    for (std::size_t i = 0; i < block.size(); ++i) block[i] = flat[offsets_[j] + i];
    out.push_back(std::move(block));
  }
  return out;
}

bool PerturbationSpace::homogeneousUnits() const noexcept {
  for (std::size_t j = 1; j < params_.size(); ++j) {
    if (!(params_[j].unit() == params_[0].unit())) return false;
  }
  return true;
}

}  // namespace fepia::perturb
