// The perturbation parameter set Pi and its concatenation layout.
//
// Section 3 of the paper: "Let P be a weighted concatenation of the
// vectors pi_1, pi_2, ..., pi_|Pi|, where P-space has
// n_{pi_1} + ... + n_{pi_|Pi|} dimensions." This class owns the ordering
// and offsets of that concatenation, converts between per-kind vectors
// and the flat pi-space vector, and enforces the units rule: a *plain*
// (unweighted) concatenation is only legal when every kind shares one
// unit — mixing seconds with bytes throws units::MismatchError, which is
// precisely the paper's argument for introducing P-space.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "la/vector.hpp"
#include "perturb/parameter.hpp"

namespace fepia::perturb {

/// An ordered collection of PerturbationParameter (the set Pi) with the
/// block layout of the concatenated space.
class PerturbationSpace {
 public:
  PerturbationSpace() = default;

  /// Appends a parameter kind; returns its block index j.
  std::size_t add(PerturbationParameter param);

  /// Number of kinds |Pi|.
  [[nodiscard]] std::size_t kindCount() const noexcept { return params_.size(); }

  /// Total dimension of the concatenated space.
  [[nodiscard]] std::size_t totalDimension() const noexcept { return total_; }

  /// The j-th kind; throws std::out_of_range.
  [[nodiscard]] const PerturbationParameter& kind(std::size_t j) const;

  /// Offset of block j within the concatenated vector.
  [[nodiscard]] std::size_t blockOffset(std::size_t j) const;

  /// Flat label of concatenated element `i` (for reports).
  [[nodiscard]] std::string flatLabel(std::size_t i) const;

  /// pi^orig blocks concatenated: [pi_1^orig ⋆ pi_2^orig ⋆ ...].
  [[nodiscard]] la::Vector concatenatedOriginal() const;

  /// Plain concatenation `pi_1 ⋆ pi_2 ⋆ ...` of per-kind value vectors.
  /// Throws units::MismatchError when the kinds carry different units
  /// (the paper's Section 3 objection), std::invalid_argument on
  /// count/dimension mismatch.
  [[nodiscard]] la::Vector concatenate(std::span<const la::Vector> perKind) const;

  /// Concatenation without the unit check — the building block for the
  /// *weighted* merge schemes, which handle units themselves.
  [[nodiscard]] la::Vector concatenateUnchecked(
      std::span<const la::Vector> perKind) const;

  /// Splits a flat pi-space vector back into per-kind blocks.
  /// Throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::vector<la::Vector> split(const la::Vector& flat) const;

  /// True when all kinds share one unit (plain concatenation legal).
  [[nodiscard]] bool homogeneousUnits() const noexcept;

 private:
  std::vector<PerturbationParameter> params_;
  std::vector<std::size_t> offsets_;
  std::size_t total_ = 0;
};

}  // namespace fepia::perturb
