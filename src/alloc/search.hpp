// Robustness-aware allocation search.
//
// The paper's motivation: "One way of handling the unpredictable load
// increases is to design a resource allocation that will tolerate as
// much increase as possible before a QoS violation occurs." These
// optimisers *design* such allocations by searching assignment space
// directly for the robustness metric, instead of only evaluating
// allocations produced by makespan heuristics:
//
//  * steepest-ascent local search on rho (single-task reassignments);
//  * simulated annealing on a pluggable objective (rho, makespan, or a
//    blend), with feasibility preserved via the tau constraint.
#pragma once

#include <functional>

#include "alloc/allocation.hpp"
#include "la/matrix.hpp"
#include "rng/xoshiro.hpp"

namespace fepia::alloc {

/// Objective evaluated on candidate allocations. Larger is better.
using AllocationObjective =
    std::function<double(const Allocation&, const la::Matrix& etcMatrix)>;

/// Objective: the makespan-robustness rho (closed form) under constraint
/// tau; allocations violating tau score -infinity.
[[nodiscard]] AllocationObjective rhoObjective(double tau);

/// Objective: negated makespan (so larger is better).
[[nodiscard]] AllocationObjective makespanObjective();

/// Steepest-ascent local search: applies the single-task reassignment
/// with the best objective gain until no move improves.
/// Throws std::invalid_argument on shape mismatch.
[[nodiscard]] Allocation localSearch(Allocation start,
                                     const la::Matrix& etcMatrix,
                                     const AllocationObjective& objective,
                                     std::size_t maxMoves = 10000);

/// Simulated-annealing options.
struct AnnealOptions {
  std::size_t iterations = 20000;
  double initialTemperature = 1.0;  ///< in objective units (auto-scaled below)
  double coolingRate = 0.999;      ///< geometric cooling per iteration
  /// When > 0, the initial temperature is set to this fraction of the
  /// start objective's magnitude (overrides initialTemperature).
  double autoTemperatureFraction = 0.05;
};

/// Result of an annealing run.
struct AnnealResult {
  Allocation best;
  double bestObjective = 0.0;
  std::size_t accepted = 0;
  std::size_t improved = 0;
};

/// Simulated annealing over single-task reassignment moves.
/// The start allocation must have a finite objective value; throws
/// std::invalid_argument otherwise.
[[nodiscard]] AnnealResult simulatedAnnealing(Allocation start,
                                              const la::Matrix& etcMatrix,
                                              const AllocationObjective& objective,
                                              rng::Xoshiro256StarStar& g,
                                              const AnnealOptions& opts = {});

}  // namespace fepia::alloc
