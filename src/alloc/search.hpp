// Robustness-aware allocation search.
//
// The paper's motivation: "One way of handling the unpredictable load
// increases is to design a resource allocation that will tolerate as
// much increase as possible before a QoS violation occurs." These
// optimisers *design* such allocations by searching assignment space
// directly for the robustness metric, instead of only evaluating
// allocations produced by makespan heuristics:
//
//  * steepest-ascent local search on rho (single-task reassignments);
//  * simulated annealing on a pluggable objective (rho, makespan, or a
//    blend), with feasibility preserved via the tau constraint.
//
// The rho and makespan objectives are *named* callable types, so the
// search loops recognise them inside the type-erased AllocationObjective
// and route evaluation through alloc::EvalEngine (incremental deltas +
// memoization; see eval_engine.hpp) instead of recomputing every machine
// finish time per candidate. Custom objectives still work through the
// generic full-recompute path.
#pragma once

#include <functional>

#include "alloc/allocation.hpp"
#include "la/matrix.hpp"
#include "rng/xoshiro.hpp"

namespace fepia::alloc {

class EvalEngine;

/// Objective evaluated on candidate allocations. Larger is better.
using AllocationObjective =
    std::function<double(const Allocation&, const la::Matrix& etcMatrix)>;

/// The callable behind rhoObjective(): a named type so engine-aware code
/// can recover tau via AllocationObjective::target<RhoObjectiveFn>().
struct RhoObjectiveFn {
  double tau = 0.0;
  double operator()(const Allocation& mu, const la::Matrix& etcMatrix) const;
};

/// The callable behind makespanObjective().
struct MakespanObjectiveFn {
  double operator()(const Allocation& mu, const la::Matrix& etcMatrix) const;
};

/// Objective: the makespan-robustness rho (closed form) under constraint
/// tau; allocations violating tau score -infinity.
[[nodiscard]] AllocationObjective rhoObjective(double tau);

/// Objective: negated makespan (so larger is better).
[[nodiscard]] AllocationObjective makespanObjective();

/// Steepest-ascent local search: applies the single-task reassignment
/// with the best objective gain until no move improves. Rho/makespan
/// objectives run on an EvalEngine (O(1)-ish move scoring); custom
/// objectives fall back to full recomputation, re-evaluated after every
/// accepted move so the tracked objective never drifts.
/// Throws std::invalid_argument on shape mismatch or a null objective.
[[nodiscard]] Allocation localSearch(Allocation start,
                                     const la::Matrix& etcMatrix,
                                     const AllocationObjective& objective,
                                     std::size_t maxMoves = 10000);

/// Engine-driven steepest ascent: scans moves through `engine` (in
/// parallel when the engine holds a thread pool) and leaves the engine's
/// working state at the returned optimum. Deterministic for a fixed
/// engine config at any thread count.
[[nodiscard]] Allocation localSearch(EvalEngine& engine, Allocation start,
                                     std::size_t maxMoves = 10000);

/// Simulated-annealing options.
struct AnnealOptions {
  std::size_t iterations = 20000;
  double initialTemperature = 1.0;  ///< in objective units (auto-scaled below)
  double coolingRate = 0.999;      ///< geometric cooling per iteration
  /// When > 0, the initial temperature is set to this fraction of the
  /// start objective's magnitude (overrides initialTemperature).
  double autoTemperatureFraction = 0.05;
};

/// Result of an annealing run.
struct AnnealResult {
  Allocation best;
  double bestObjective = 0.0;
  std::size_t accepted = 0;
  std::size_t improved = 0;
};

/// Simulated annealing over single-task reassignment moves.
/// The start allocation must have a finite objective value; throws
/// std::invalid_argument otherwise.
[[nodiscard]] AnnealResult simulatedAnnealing(Allocation start,
                                              const la::Matrix& etcMatrix,
                                              const AllocationObjective& objective,
                                              rng::Xoshiro256StarStar& g,
                                              const AnnealOptions& opts = {});

}  // namespace fepia::alloc
