// Genetic-algorithm mapper.
//
// GAs are the standard metaheuristic for independent-task mapping in the
// heterogeneous-computing literature the paper builds on. This one works
// on assignment chromosomes with tournament selection, uniform
// crossover, per-gene mutation and elitism, over the same pluggable
// AllocationObjective as the other searches — so it can design for
// makespan or directly for the robustness metric rho.
//
// Evaluation goes through alloc::EvalEngine when the objective is the
// rho or makespan functor: the whole population is scored as one batch
// (parallel across a thread pool when one is supplied, bit-identical at
// any thread count), and the chromosome cache means elites and
// re-discovered chromosomes are never re-scored. Selection, crossover
// and mutation stay serial on the caller's generator, so results for a
// fixed seed are independent of the pool entirely.
#pragma once

#include <optional>
#include <vector>

#include "alloc/search.hpp"

namespace fepia::parallel {
class ThreadPool;
}  // namespace fepia::parallel

namespace fepia::alloc {

class EvalEngine;

/// GA configuration.
struct GeneticOptions {
  std::size_t populationSize = 48;
  std::size_t generations = 150;
  std::size_t tournamentSize = 3;
  double crossoverRate = 0.9;   ///< probability a child is a crossover
  double mutationRate = 0.02;   ///< per-gene reassignment probability
  std::size_t eliteCount = 2;   ///< best chromosomes copied verbatim
};

/// GA outcome.
struct GeneticResult {
  Allocation best;
  double bestObjective = 0.0;
  std::size_t evaluations = 0;  ///< objective scores requested
  std::size_t cacheHits = 0;    ///< scores served from the engine cache
};

/// Runs the GA. `seeds` (optional) injects known-good allocations (e.g.
/// heuristic results) into the initial population; `pool` (optional)
/// parallelises population scoring for engine-backed objectives without
/// changing any result. Throws std::invalid_argument on an empty
/// objective, bad rates, or when no initial chromosome has a finite
/// objective.
[[nodiscard]] GeneticResult geneticSearch(
    const la::Matrix& etcMatrix, const AllocationObjective& objective,
    rng::Xoshiro256StarStar& g, const GeneticOptions& opts = {},
    const std::vector<Allocation>& seeds = {},
    parallel::ThreadPool* pool = nullptr);

/// Engine-driven GA: population scoring runs through `engine` (batched,
/// cached, parallel when the engine holds a pool).
[[nodiscard]] GeneticResult geneticSearch(
    EvalEngine& engine, rng::Xoshiro256StarStar& g,
    const GeneticOptions& opts = {}, const std::vector<Allocation>& seeds = {});

}  // namespace fepia::alloc
