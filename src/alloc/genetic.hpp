// Genetic-algorithm mapper.
//
// GAs are the standard metaheuristic for independent-task mapping in the
// heterogeneous-computing literature the paper builds on. This one works
// on assignment chromosomes with tournament selection, uniform
// crossover, per-gene mutation and elitism, over the same pluggable
// AllocationObjective as the other searches — so it can design for
// makespan or directly for the robustness metric rho.
#pragma once

#include <optional>
#include <vector>

#include "alloc/search.hpp"

namespace fepia::alloc {

/// GA configuration.
struct GeneticOptions {
  std::size_t populationSize = 48;
  std::size_t generations = 150;
  std::size_t tournamentSize = 3;
  double crossoverRate = 0.9;   ///< probability a child is a crossover
  double mutationRate = 0.02;   ///< per-gene reassignment probability
  std::size_t eliteCount = 2;   ///< best chromosomes copied verbatim
};

/// GA outcome.
struct GeneticResult {
  Allocation best;
  double bestObjective = 0.0;
  std::size_t evaluations = 0;  ///< objective evaluations performed
};

/// Runs the GA. `seeds` (optional) injects known-good allocations (e.g.
/// heuristic results) into the initial population. Throws
/// std::invalid_argument on an empty objective, bad rates, or when no
/// initial chromosome has a finite objective.
[[nodiscard]] GeneticResult geneticSearch(
    const la::Matrix& etcMatrix, const AllocationObjective& objective,
    rng::Xoshiro256StarStar& g, const GeneticOptions& opts = {},
    const std::vector<Allocation>& seeds = {});

}  // namespace fepia::alloc
