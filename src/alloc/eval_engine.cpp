#include "alloc/eval_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/clock.hpp"
#include "obs/span.hpp"

namespace fepia::alloc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// FNV-1a over the chromosome bytes; collisions are resolved by exact
/// comparison in the cache bucket, so the hash only affects speed.
std::uint64_t chromosomeHash(const Chromosome& c) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::size_t gene : c) {
    std::uint64_t g = static_cast<std::uint64_t>(gene);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= g & 0xFFu;
      h *= 0x100000001B3ull;
      g >>= 8;
    }
  }
  return h;
}

}  // namespace

EvalEngine::EvalEngine(const la::Matrix& etcMatrix, EngineConfig config,
                       parallel::ThreadPool* pool)
    : etc_(etcMatrix),
      config_(config),
      pool_(pool),
      tasks_(etcMatrix.rows()),
      machines_(etcMatrix.cols()) {
  if (tasks_ == 0 || machines_ == 0) {
    throw std::invalid_argument("alloc::EvalEngine: empty ETC matrix");
  }
  if (config_.objective == EngineObjective::Rho && !std::isfinite(config_.tau)) {
    throw std::invalid_argument("alloc::EvalEngine: tau must be finite");
  }
  if (config_.chunkSize == 0) {
    throw std::invalid_argument("alloc::EvalEngine: chunkSize must be positive");
  }
}

double EvalEngine::margin(double finish, std::size_t taskCount) const {
  if (config_.objective == EngineObjective::NegMakespan) {
    // -makespan = min over machines of -finish (empty machines included:
    // makespan() maxes over the whole finish vector).
    return -finish;
  }
  // Rho: machines with no tasks cannot bind.
  if (taskCount == 0) return kInf;
  if (finish >= config_.tau) return -kInf;  // infeasible (rhoObjective)
  return (config_.tau - finish) / std::sqrt(static_cast<double>(taskCount));
}

double EvalEngine::evaluateFull(const Chromosome& c) const {
  if (c.size() != tasks_) {
    throw std::invalid_argument("alloc::EvalEngine: chromosome size mismatch");
  }
  // Identical accumulation order to alloc::machineFinishTimes: ascending
  // task index, one running sum per machine.
  std::vector<double> finish(machines_, 0.0);
  std::vector<std::size_t> count(machines_, 0);
  for (std::size_t t = 0; t < tasks_; ++t) {
    const std::size_t m = c[t];
    if (m >= machines_) {
      throw std::invalid_argument("alloc::EvalEngine: gene out of range");
    }
    finish[m] += etc_(t, m);
    ++count[m];
  }
  double obj = kInf;
  for (std::size_t m = 0; m < machines_; ++m) {
    const double g = margin(finish[m], count[m]);
    if (g == -kInf) return -kInf;
    obj = std::min(obj, g);
  }
  return obj;
}

double EvalEngine::evaluate(const Allocation& mu) {
  return evaluate(mu.assignment());
}

double EvalEngine::evaluate(const Chromosome& c) {
  if (config_.cacheCapacity == 0) {
    counters().bump("evals_full");
    return evaluateFull(c);
  }
  // Lookup latency is sampled only when latency metrics are on, so the
  // default hot path never reads the clock.
  const bool timed = obs::timingEnabled();
  const std::uint64_t lookupStart = timed ? obs::nowNanos() : 0;
  const auto recordLookup = [&] {
    if (timed) {
      metrics_
          .histogram("engine.cache_lookup_ns",
                     {100, 250, 500, 1000, 2500, 5000, 10000, 100000})
          .record(static_cast<double>(obs::nowNanos() - lookupStart));
    }
  };
  const std::uint64_t h = chromosomeHash(c);
  auto it = cache_.find(h);
  if (it != cache_.end()) {
    for (const auto& [key, value] : it->second) {
      if (key == c) {
        recordLookup();
        counters().bump("cache_hits");
        return value;
      }
    }
  }
  recordLookup();
  counters().bump("cache_misses");
  counters().bump("evals_full");
  const double value = evaluateFull(c);
  if (cacheEntries_ >= config_.cacheCapacity) {
    cache_.clear();
    cacheEntries_ = 0;
    counters().bump("cache_resets");
  }
  cache_[h].emplace_back(c, value);
  ++cacheEntries_;
  return value;
}

std::vector<double> EvalEngine::evaluateBatch(
    const std::vector<Chromosome>& population) {
  FEPIA_SPAN_ARG("engine.batch", "chromosomes", population.size());
  counters().bump("batches");
  std::vector<double> out(population.size(), 0.0);
  if (population.empty()) return out;

  // Serial cache phase: collect misses (preserving index order).
  std::vector<std::size_t> misses;
  misses.reserve(population.size());
  if (config_.cacheCapacity == 0) {
    for (std::size_t i = 0; i < population.size(); ++i) misses.push_back(i);
  } else {
    for (std::size_t i = 0; i < population.size(); ++i) {
      const std::uint64_t h = chromosomeHash(population[i]);
      bool hit = false;
      if (auto it = cache_.find(h); it != cache_.end()) {
        for (const auto& [key, value] : it->second) {
          if (key == population[i]) {
            out[i] = value;
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        counters().bump("cache_hits");
      } else {
        counters().bump("cache_misses");
        misses.push_back(i);
      }
    }
  }

  // Parallel scoring phase: fixed chunking over the miss list, each
  // result written to its own slot — bit-identical at any thread count.
  const auto scoreMiss = [&](std::size_t k) {
    out[misses[k]] = evaluateFull(population[misses[k]]);
  };
  const std::size_t chunks =
      (misses.size() + config_.chunkSize - 1) / config_.chunkSize;
  if (pool_ != nullptr && chunks > 1) {
    parallel::parallelFor(*pool_, chunks, [&](std::size_t c) {
      const std::size_t first = c * config_.chunkSize;
      const std::size_t last =
          std::min(first + config_.chunkSize, misses.size());
      for (std::size_t k = first; k < last; ++k) scoreMiss(k);
    });
  } else {
    for (std::size_t k = 0; k < misses.size(); ++k) scoreMiss(k);
  }
  counters().bump("evals_full", misses.size());

  // Serial insert phase (index order, so the cache state is deterministic).
  if (config_.cacheCapacity > 0) {
    for (const std::size_t i : misses) {
      if (cacheEntries_ >= config_.cacheCapacity) {
        cache_.clear();
        cacheEntries_ = 0;
        counters().bump("cache_resets");
      }
      cache_[chromosomeHash(population[i])].emplace_back(population[i], out[i]);
      ++cacheEntries_;
    }
  }
  return out;
}

void EvalEngine::refreshMachine(std::size_t m) {
  MachineState& ms = machineState_[m];
  double sum = 0.0;
  for (const std::size_t t : ms.tasks) sum += etc_(t, m);
  ms.finish = sum;
}

double EvalEngine::foldObjective() const {
  double obj = kInf;
  for (std::size_t m = 0; m < machines_; ++m) {
    const double g = margin(machineState_[m].finish, machineState_[m].tasks.size());
    if (g == -kInf) return -kInf;
    obj = std::min(obj, g);
  }
  return obj;
}

double EvalEngine::foldObjectiveWith(std::size_t a, double finishA,
                                     std::size_t countA, std::size_t b,
                                     double finishB, std::size_t countB) const {
  double obj = kInf;
  for (std::size_t m = 0; m < machines_; ++m) {
    double f;
    std::size_t n;
    if (m == a) {
      f = finishA;
      n = countA;
    } else if (m == b) {
      f = finishB;
      n = countB;
    } else {
      f = machineState_[m].finish;
      n = machineState_[m].tasks.size();
    }
    const double g = margin(f, n);
    if (g == -kInf) return -kInf;
    obj = std::min(obj, g);
  }
  return obj;
}

void EvalEngine::setState(const Allocation& mu) {
  if (mu.taskCount() != tasks_ || mu.machineCount() != machines_) {
    throw std::invalid_argument("alloc::EvalEngine: allocation shape mismatch");
  }
  state_ = mu;
  machineState_.assign(machines_, MachineState{});
  for (std::size_t t = 0; t < tasks_; ++t) {
    machineState_[mu.machineOf(t)].tasks.push_back(t);  // ascending by loop
  }
  for (std::size_t m = 0; m < machines_; ++m) refreshMachine(m);
  stateObjective_ = foldObjective();
  counters().bump("evals_full");
}

const Allocation& EvalEngine::state() const {
  if (!state_.has_value()) {
    throw std::logic_error("alloc::EvalEngine: no working state loaded");
  }
  return *state_;
}

double EvalEngine::stateObjective() const {
  if (!state_.has_value()) {
    throw std::logic_error("alloc::EvalEngine: no working state loaded");
  }
  return stateObjective_;
}

double EvalEngine::finishWith(std::size_t m, std::size_t skip,
                              std::size_t add) const {
  // Index-ordered sum of the machine's tasks with `skip` removed and
  // `add` merged in at its sorted position — the same addition sequence
  // a from-scratch recompute of the mutated allocation performs.
  const std::vector<std::size_t>& list = machineState_[m].tasks;
  double sum = 0.0;
  bool added = add >= tasks_;  // disabled sentinel
  for (const std::size_t t : list) {
    if (!added && add < t) {
      sum += etc_(add, m);
      added = true;
    }
    if (t == skip) continue;
    sum += etc_(t, m);
  }
  if (!added) sum += etc_(add, m);
  return sum;
}

double EvalEngine::scoreMove(std::size_t t, std::size_t to) const {
  if (!state_.has_value()) {
    throw std::logic_error("alloc::EvalEngine: no working state loaded");
  }
  if (t >= tasks_) {
    throw std::out_of_range("alloc::EvalEngine::scoreMove: task index");
  }
  if (to >= machines_) {
    throw std::out_of_range("alloc::EvalEngine::scoreMove: machine index");
  }
  const std::size_t from = state_->machineOf(t);
  if (to == from) return stateObjective_;
  const double fromFinish = finishWith(from, /*skip=*/t, /*add=*/tasks_);
  const double toFinish = finishWith(to, /*skip=*/tasks_, /*add=*/t);
  return foldObjectiveWith(from, fromFinish,
                           machineState_[from].tasks.size() - 1, to, toFinish,
                           machineState_[to].tasks.size() + 1);
}

Move EvalEngine::apply(std::size_t t, std::size_t to) {
  if (!state_.has_value()) {
    throw std::logic_error("alloc::EvalEngine: no working state loaded");
  }
  if (t >= tasks_) {
    throw std::out_of_range("alloc::EvalEngine::apply: task index");
  }
  if (to >= machines_) {
    throw std::out_of_range("alloc::EvalEngine::apply: machine index");
  }
  const std::size_t from = state_->machineOf(t);
  if (to != from) {
    std::vector<std::size_t>& src = machineState_[from].tasks;
    src.erase(std::lower_bound(src.begin(), src.end(), t));
    std::vector<std::size_t>& dst = machineState_[to].tasks;
    dst.insert(std::lower_bound(dst.begin(), dst.end(), t), t);
    refreshMachine(from);
    refreshMachine(to);
    state_->reassign(t, to);
    stateObjective_ = foldObjective();
  }
  counters().bump("applies");
  return Move{t, to, from};
}

void EvalEngine::revert(const Move& m) {
  (void)apply(m.task, m.from);
  counters().bump("reverts");
}

std::optional<EngineConfig> engineConfigFor(const AllocationObjective& objective) {
  if (const auto* rho = objective.target<RhoObjectiveFn>()) {
    EngineConfig cfg;
    cfg.objective = EngineObjective::Rho;
    cfg.tau = rho->tau;
    return cfg;
  }
  if (objective.target<MakespanObjectiveFn>() != nullptr) {
    EngineConfig cfg;
    cfg.objective = EngineObjective::NegMakespan;
    return cfg;
  }
  return std::nullopt;
}

BestMove EvalEngine::bestMove(double minGain) {
  FEPIA_SPAN("engine.move_scan");
  if (!state_.has_value()) {
    throw std::logic_error("alloc::EvalEngine: no working state loaded");
  }
  const double current = stateObjective_;
  const std::size_t moveCount = tasks_ * machines_;
  const std::size_t chunks =
      (moveCount + config_.chunkSize - 1) / config_.chunkSize;

  struct ChunkBest {
    double objective = -kInf;
    std::size_t moveId = 0;
    bool found = false;
  };
  std::vector<ChunkBest> best(chunks);

  // Pure argmax with first-index tie-break: the strictly-greater rule
  // inside each chunk plus the in-order chunk reduction below reproduce
  // the serial full scan exactly, for any chunk size or thread count.
  const auto scanChunk = [&](std::size_t c) {
    ChunkBest cb;
    const std::size_t first = c * config_.chunkSize;
    const std::size_t last = std::min(first + config_.chunkSize, moveCount);
    for (std::size_t id = first; id < last; ++id) {
      const std::size_t t = id / machines_;
      const std::size_t m = id % machines_;
      if (m == state_->machineOf(t)) continue;
      const double cand = scoreMove(t, m);
      if (!(cand > current + minGain)) continue;
      if (!cb.found || cand > cb.objective) {
        cb.found = true;
        cb.objective = cand;
        cb.moveId = id;
      }
    }
    best[c] = cb;
  };

  if (pool_ != nullptr && chunks > 1) {
    parallel::parallelFor(*pool_, chunks, scanChunk);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) scanChunk(c);
  }
  counters().bump("evals_delta", moveCount);
  counters().bump("move_scans");

  BestMove result;
  result.objective = current;
  for (const ChunkBest& cb : best) {
    if (cb.found && (!result.move.has_value() || cb.objective > result.objective)) {
      result.objective = cb.objective;
      result.move = Move{cb.moveId / machines_, cb.moveId % machines_,
                         state_->machineOf(cb.moveId / machines_)};
    }
  }
  return result;
}

}  // namespace fepia::alloc
