#include "alloc/robustness.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "feature/linear.hpp"

namespace fepia::alloc {

perturb::PerturbationParameter executionTimeParameter(
    const Allocation& mu, const la::Matrix& etcMatrix) {
  std::vector<std::string> labels;
  labels.reserve(mu.taskCount());
  for (std::size_t t = 0; t < mu.taskCount(); ++t) {
    labels.push_back("exec(task " + std::to_string(t) + " on m" +
                     std::to_string(mu.machineOf(t)) + ")");
  }
  return perturb::PerturbationParameter("execution-times",
                                        units::Unit::seconds(),
                                        assignedExecutionTimes(mu, etcMatrix),
                                        std::move(labels));
}

feature::FeatureSet makespanFeatureSet(const Allocation& mu,
                                       const la::Matrix& etcMatrix, double tau) {
  const la::Vector orig = assignedExecutionTimes(mu, etcMatrix);
  const la::Vector finish = machineFinishTimesFromExecVector(mu, orig);

  feature::FeatureSet phi;
  for (std::size_t m = 0; m < mu.machineCount(); ++m) {
    const std::vector<std::size_t> tasks = mu.tasksOn(m);
    if (tasks.empty()) continue;
    if (finish[m] >= tau) {
      throw std::invalid_argument(
          "alloc::makespanFeatureSet: machine " + std::to_string(m) +
          " already violates tau (finish " + std::to_string(finish[m]) + ")");
    }
    la::Vector k(mu.taskCount(), 0.0);
    for (std::size_t t : tasks) k[t] = 1.0;
    phi.add(std::make_shared<feature::LinearFeature>(
                "finish-time(m" + std::to_string(m) + ")", std::move(k), 0.0,
                units::Unit::seconds()),
            feature::FeatureBounds::upper(tau));
  }
  if (phi.empty()) {
    throw std::invalid_argument("alloc::makespanFeatureSet: no loaded machines");
  }
  return phi;
}

radius::FepiaProblem makespanProblem(const Allocation& mu,
                                     const la::Matrix& etcMatrix, double tau) {
  radius::FepiaProblem problem;
  problem.addPerturbation(executionTimeParameter(mu, etcMatrix));
  const feature::FeatureSet phi = makespanFeatureSet(mu, etcMatrix, tau);
  for (const feature::BoundedFeature& bf : phi) {
    problem.addFeature(bf.feature, bf.bounds);
  }
  return problem;
}

radius::RobustnessReport makespanRobustness(const Allocation& mu,
                                            const la::Matrix& etcMatrix,
                                            double tau) {
  const feature::FeatureSet phi = makespanFeatureSet(mu, etcMatrix, tau);
  return radius::robustness(phi, assignedExecutionTimes(mu, etcMatrix));
}

double makespanRobustnessClosedForm(const Allocation& mu,
                                    const la::Matrix& etcMatrix, double tau) {
  const la::Vector finish = machineFinishTimes(mu, etcMatrix);
  double rho = std::numeric_limits<double>::infinity();
  for (std::size_t m = 0; m < mu.machineCount(); ++m) {
    const auto n = mu.tasksOn(m).size();
    if (n == 0) continue;
    if (finish[m] >= tau) {
      throw std::invalid_argument(
          "alloc::makespanRobustnessClosedForm: tau already violated");
    }
    rho = std::min(rho,
                   (tau - finish[m]) / std::sqrt(static_cast<double>(n)));
  }
  return rho;
}

}  // namespace fepia::alloc
