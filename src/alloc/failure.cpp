#include "alloc/failure.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "alloc/robustness.hpp"

namespace fepia::alloc {

Allocation recoverFromFailure(const Allocation& mu, const la::Matrix& etcMatrix,
                              std::size_t failedMachine) {
  if (etcMatrix.rows() != mu.taskCount() ||
      etcMatrix.cols() != mu.machineCount()) {
    throw std::invalid_argument("alloc::recoverFromFailure: shape mismatch");
  }
  if (failedMachine >= mu.machineCount()) {
    throw std::invalid_argument("alloc::recoverFromFailure: bad machine index");
  }
  if (mu.machineCount() < 2) {
    throw std::invalid_argument(
        "alloc::recoverFromFailure: no surviving machine to fail over to");
  }

  Allocation recovered = mu;
  const std::vector<std::size_t> orphans = mu.tasksOn(failedMachine);

  // Finish times of the survivors under the unchanged assignments.
  la::Vector finish = machineFinishTimes(mu, etcMatrix);
  finish[failedMachine] = 0.0;

  // Greedy MCT: remap the orphaned tasks, longest (on their best
  // survivor) first, each to the machine minimising its completion time.
  std::vector<std::size_t> order = orphans;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    double bestA = std::numeric_limits<double>::infinity();
    double bestB = std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < mu.machineCount(); ++m) {
      if (m == failedMachine) continue;
      bestA = std::min(bestA, etcMatrix(a, m));
      bestB = std::min(bestB, etcMatrix(b, m));
    }
    return bestA > bestB;
  });

  for (std::size_t t : order) {
    std::size_t bestM = failedMachine;
    double bestCt = std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < mu.machineCount(); ++m) {
      if (m == failedMachine) continue;
      const double ct = finish[m] + etcMatrix(t, m);
      if (ct < bestCt) {
        bestCt = ct;
        bestM = m;
      }
    }
    recovered.reassign(t, bestM);
    finish[bestM] = bestCt;
  }
  return recovered;
}

std::vector<FailureImpact> machineFailureImpacts(const Allocation& mu,
                                                 const la::Matrix& etcMatrix,
                                                 double tau) {
  if (mu.machineCount() < 2) {
    throw std::invalid_argument(
        "alloc::machineFailureImpacts: needs at least two machines");
  }
  std::vector<FailureImpact> out;
  out.reserve(mu.machineCount());
  for (std::size_t f = 0; f < mu.machineCount(); ++f) {
    FailureImpact impact{f, false, recoverFromFailure(mu, etcMatrix, f), 0.0,
                         0.0};
    impact.makespanAfter = makespan(impact.recovered, etcMatrix);
    if (impact.makespanAfter < tau) {
      impact.recoverable = true;
      impact.rhoAfter =
          makespanRobustnessClosedForm(impact.recovered, etcMatrix, tau);
    }
    out.push_back(std::move(impact));
  }
  return out;
}

bool survivesAnySingleFailure(const Allocation& mu, const la::Matrix& etcMatrix,
                              double tau) {
  for (const FailureImpact& impact :
       machineFailureImpacts(mu, etcMatrix, tau)) {
    if (!impact.recoverable) return false;
  }
  return true;
}

}  // namespace fepia::alloc
