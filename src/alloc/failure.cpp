#include "alloc/failure.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "alloc/robustness.hpp"

namespace fepia::alloc {

Allocation recoverFromFailure(const Allocation& mu, const la::Matrix& etcMatrix,
                              std::size_t failedMachine) {
  if (failedMachine < mu.machineCount() && mu.machineCount() < 2) {
    throw std::invalid_argument(
        "alloc::recoverFromFailure: no surviving machine to fail over to");
  }
  return recoverFromFailures(mu, etcMatrix, {failedMachine});
}

Allocation recoverFromFailures(const Allocation& mu, const la::Matrix& etcMatrix,
                               const std::vector<std::size_t>& failedMachines) {
  if (etcMatrix.rows() != mu.taskCount() ||
      etcMatrix.cols() != mu.machineCount()) {
    throw std::invalid_argument("alloc::recoverFromFailures: shape mismatch");
  }
  if (failedMachines.empty()) {
    throw std::invalid_argument("alloc::recoverFromFailures: empty failure set");
  }
  std::vector<bool> failed(mu.machineCount(), false);
  std::size_t survivors = mu.machineCount();
  for (const std::size_t f : failedMachines) {
    if (f >= mu.machineCount()) {
      throw std::invalid_argument(
          "alloc::recoverFromFailures: bad machine index");
    }
    if (!failed[f]) {
      failed[f] = true;
      --survivors;
    }
  }
  if (survivors == 0) {
    throw std::invalid_argument(
        "alloc::recoverFromFailures: no surviving machine to fail over to");
  }

  Allocation recovered = mu;
  std::vector<std::size_t> orphans;
  for (std::size_t m = 0; m < mu.machineCount(); ++m) {
    if (!failed[m]) continue;
    const std::vector<std::size_t> stranded = mu.tasksOn(m);
    orphans.insert(orphans.end(), stranded.begin(), stranded.end());
  }

  // Finish times of the survivors under the unchanged assignments.
  la::Vector finish = machineFinishTimes(mu, etcMatrix);
  for (std::size_t m = 0; m < mu.machineCount(); ++m) {
    if (failed[m]) finish[m] = 0.0;
  }

  // Greedy MCT: remap the orphaned tasks, longest (on their best
  // survivor) first, each to the machine minimising its completion time.
  std::sort(orphans.begin(), orphans.end(), [&](std::size_t a, std::size_t b) {
    double bestA = std::numeric_limits<double>::infinity();
    double bestB = std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < mu.machineCount(); ++m) {
      if (failed[m]) continue;
      bestA = std::min(bestA, etcMatrix(a, m));
      bestB = std::min(bestB, etcMatrix(b, m));
    }
    return bestA > bestB;
  });

  for (std::size_t t : orphans) {
    std::size_t bestM = mu.machineCount();
    double bestCt = std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < mu.machineCount(); ++m) {
      if (failed[m]) continue;
      const double ct = finish[m] + etcMatrix(t, m);
      if (ct < bestCt) {
        bestCt = ct;
        bestM = m;
      }
    }
    recovered.reassign(t, bestM);
    finish[bestM] = bestCt;
  }
  return recovered;
}

std::vector<FailureImpact> machineFailureImpacts(const Allocation& mu,
                                                 const la::Matrix& etcMatrix,
                                                 double tau) {
  if (mu.machineCount() < 2) {
    throw std::invalid_argument(
        "alloc::machineFailureImpacts: needs at least two machines");
  }
  std::vector<FailureImpact> out;
  out.reserve(mu.machineCount());
  for (std::size_t f = 0; f < mu.machineCount(); ++f) {
    FailureImpact impact{f, false, recoverFromFailure(mu, etcMatrix, f), 0.0,
                         0.0};
    impact.makespanAfter = makespan(impact.recovered, etcMatrix);
    if (impact.makespanAfter < tau) {
      impact.recoverable = true;
      impact.rhoAfter =
          makespanRobustnessClosedForm(impact.recovered, etcMatrix, tau);
    }
    out.push_back(std::move(impact));
  }
  return out;
}

FailureSetImpact evaluateFailureSet(const Allocation& mu,
                                    const la::Matrix& etcMatrix,
                                    const std::vector<std::size_t>& failedMachines,
                                    double tau) {
  std::vector<std::size_t> set = failedMachines;
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  FailureSetImpact impact{set, false, recoverFromFailures(mu, etcMatrix, set),
                          0.0, 0.0};
  impact.makespanAfter = makespan(impact.recovered, etcMatrix);
  if (impact.makespanAfter < tau) {
    impact.recoverable = true;
    impact.rhoAfter =
        makespanRobustnessClosedForm(impact.recovered, etcMatrix, tau);
  }
  return impact;
}

bool survivesFailures(const Allocation& mu, const la::Matrix& etcMatrix,
                      const std::vector<std::size_t>& failedMachines,
                      double tau) {
  return evaluateFailureSet(mu, etcMatrix, failedMachines, tau).recoverable;
}

bool survivesAnySingleFailure(const Allocation& mu, const la::Matrix& etcMatrix,
                              double tau) {
  for (const FailureImpact& impact :
       machineFailureImpacts(mu, etcMatrix, tau)) {
    if (!impact.recoverable) return false;
  }
  return true;
}

}  // namespace fepia::alloc
