#include "alloc/allocation.hpp"

#include <algorithm>
#include <stdexcept>

namespace fepia::alloc {

Allocation::Allocation(std::vector<std::size_t> taskToMachine,
                       std::size_t machineCount)
    : assignment_(std::move(taskToMachine)), machines_(machineCount) {
  if (assignment_.empty() || machines_ == 0) {
    throw std::invalid_argument("alloc::Allocation: empty tasks or machines");
  }
  for (std::size_t m : assignment_) {
    if (m >= machines_) {
      throw std::invalid_argument("alloc::Allocation: assignment out of range");
    }
  }
}

std::vector<std::size_t> Allocation::tasksOn(std::size_t m) const {
  std::vector<std::size_t> out;
  for (std::size_t t = 0; t < assignment_.size(); ++t) {
    if (assignment_[t] == m) out.push_back(t);
  }
  return out;
}

void Allocation::reassign(std::size_t t, std::size_t m) {
  if (t >= assignment_.size()) {
    throw std::out_of_range("alloc::Allocation::reassign: task index");
  }
  if (m >= machines_) {
    throw std::invalid_argument("alloc::Allocation::reassign: machine index");
  }
  assignment_[t] = m;
}

namespace {

void requireShapes(const Allocation& mu, const la::Matrix& etcMatrix,
                   const char* fn) {
  if (etcMatrix.rows() != mu.taskCount() || etcMatrix.cols() != mu.machineCount()) {
    throw std::invalid_argument(std::string("alloc::") + fn +
                                ": ETC shape does not match allocation");
  }
}

}  // namespace

la::Vector machineFinishTimes(const Allocation& mu, const la::Matrix& etcMatrix) {
  requireShapes(mu, etcMatrix, "machineFinishTimes");
  la::Vector f(mu.machineCount(), 0.0);
  for (std::size_t t = 0; t < mu.taskCount(); ++t) {
    f[mu.machineOf(t)] += etcMatrix(t, mu.machineOf(t));
  }
  return f;
}

double makespan(const Allocation& mu, const la::Matrix& etcMatrix) {
  const la::Vector f = machineFinishTimes(mu, etcMatrix);
  return *std::max_element(f.begin(), f.end());
}

la::Vector machineFinishTimesFromExecVector(const Allocation& mu,
                                            const la::Vector& execTimes) {
  if (execTimes.size() != mu.taskCount()) {
    throw std::invalid_argument(
        "alloc::machineFinishTimesFromExecVector: one time per task expected");
  }
  la::Vector f(mu.machineCount(), 0.0);
  for (std::size_t t = 0; t < mu.taskCount(); ++t) {
    f[mu.machineOf(t)] += execTimes[t];
  }
  return f;
}

la::Vector assignedExecutionTimes(const Allocation& mu,
                                  const la::Matrix& etcMatrix) {
  requireShapes(mu, etcMatrix, "assignedExecutionTimes");
  la::Vector e(mu.taskCount());
  for (std::size_t t = 0; t < mu.taskCount(); ++t) {
    e[t] = etcMatrix(t, mu.machineOf(t));
  }
  return e;
}

}  // namespace fepia::alloc
