// Machine-failure impact analysis.
//
// "Sudden machine or link failures" is the paper's second example of an
// uncertainty a general robustness approach must cover. Unlike execution
// time drift, a failure is a discrete event, so it gets a discrete
// analysis: for each machine, remove it, remap its tasks greedily onto
// the survivors, and re-evaluate the makespan constraint and the
// (continuous) robustness metric of the recovered allocation. The result
// ranks machines by criticality and tells whether the allocation
// tolerates any single failure at all.
#pragma once

#include <vector>

#include "alloc/allocation.hpp"
#include "la/matrix.hpp"

namespace fepia::alloc {

/// Outcome of losing one machine.
struct FailureImpact {
  std::size_t failedMachine = 0;
  /// False when the recovered allocation violates tau (or no machines
  /// remain) — the failure is not survivable under the constraint.
  bool recoverable = false;
  /// Tasks remapped onto the surviving machines (MCT greedy).
  Allocation recovered;
  double makespanAfter = 0.0;
  /// rho of the recovered allocation under tau; 0 when not recoverable.
  double rhoAfter = 0.0;
};

/// Greedy MCT re-mapping of the failed machine's tasks onto survivors.
/// Throws std::invalid_argument when shapes mismatch or only one machine
/// exists (nothing to fail over to).
[[nodiscard]] Allocation recoverFromFailure(const Allocation& mu,
                                            const la::Matrix& etcMatrix,
                                            std::size_t failedMachine);

/// Evaluates every single-machine failure. `tau` is the makespan
/// constraint the recovered allocation must respect.
[[nodiscard]] std::vector<FailureImpact> machineFailureImpacts(
    const Allocation& mu, const la::Matrix& etcMatrix, double tau);

/// True when every single-machine failure is recoverable under tau —
/// a discrete robustness certificate complementing the continuous rho.
[[nodiscard]] bool survivesAnySingleFailure(const Allocation& mu,
                                            const la::Matrix& etcMatrix,
                                            double tau);

}  // namespace fepia::alloc
