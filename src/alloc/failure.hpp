// Machine-failure impact analysis.
//
// "Sudden machine or link failures" is the paper's second example of an
// uncertainty a general robustness approach must cover. Unlike execution
// time drift, a failure is a discrete event, so it gets a discrete
// analysis: for each machine, remove it, remap its tasks greedily onto
// the survivors, and re-evaluate the makespan constraint and the
// (continuous) robustness metric of the recovered allocation. The result
// ranks machines by criticality and tells whether the allocation
// tolerates any single failure at all.
#pragma once

#include <vector>

#include "alloc/allocation.hpp"
#include "la/matrix.hpp"

namespace fepia::alloc {

/// Outcome of losing one machine.
struct FailureImpact {
  std::size_t failedMachine = 0;
  /// False when the recovered allocation violates tau (or no machines
  /// remain) — the failure is not survivable under the constraint.
  bool recoverable = false;
  /// Tasks remapped onto the surviving machines (MCT greedy).
  Allocation recovered;
  double makespanAfter = 0.0;
  /// rho of the recovered allocation under tau; 0 when not recoverable.
  double rhoAfter = 0.0;
};

/// Outcome of losing a set of machines simultaneously (a fault plan's
/// crash set; see fault::crashedMachines).
struct FailureSetImpact {
  /// The failed machines, sorted ascending, deduplicated.
  std::vector<std::size_t> failedMachines;
  /// False when the recovered allocation violates tau (or no machines
  /// remain) — the combined failure is not survivable.
  bool recoverable = false;
  Allocation recovered;
  double makespanAfter = 0.0;
  /// rho of the recovered allocation under tau; 0 when not recoverable.
  double rhoAfter = 0.0;
};

/// Greedy MCT re-mapping of the failed machine's tasks onto survivors.
/// Throws std::invalid_argument when shapes mismatch or only one machine
/// exists (nothing to fail over to).
[[nodiscard]] Allocation recoverFromFailure(const Allocation& mu,
                                            const la::Matrix& etcMatrix,
                                            std::size_t failedMachine);

/// Multi-failure generalisation: remaps every task stranded on a machine
/// in `failedMachines` onto the survivors (greedy MCT, longest-first).
/// Duplicates in the set are ignored. Throws std::invalid_argument when
/// shapes mismatch, an index is out of range, the set is empty, or no
/// machine survives.
[[nodiscard]] Allocation recoverFromFailures(
    const Allocation& mu, const la::Matrix& etcMatrix,
    const std::vector<std::size_t>& failedMachines);

/// Evaluates one simultaneous failure set against tau.
[[nodiscard]] FailureSetImpact evaluateFailureSet(
    const Allocation& mu, const la::Matrix& etcMatrix,
    const std::vector<std::size_t>& failedMachines, double tau);

/// True when the allocation survives the given simultaneous failures
/// under tau — the discrete certificate for a concrete crash set.
[[nodiscard]] bool survivesFailures(const Allocation& mu,
                                    const la::Matrix& etcMatrix,
                                    const std::vector<std::size_t>& failedMachines,
                                    double tau);

/// Evaluates every single-machine failure. `tau` is the makespan
/// constraint the recovered allocation must respect.
[[nodiscard]] std::vector<FailureImpact> machineFailureImpacts(
    const Allocation& mu, const la::Matrix& etcMatrix, double tau);

/// True when every single-machine failure is recoverable under tau —
/// a discrete robustness certificate complementing the continuous rho.
[[nodiscard]] bool survivesAnySingleFailure(const Allocation& mu,
                                            const la::Matrix& etcMatrix,
                                            double tau);

}  // namespace fepia::alloc
