#include "alloc/search.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "alloc/robustness.hpp"
#include "rng/distributions.hpp"

namespace fepia::alloc {

AllocationObjective rhoObjective(double tau) {
  return [tau](const Allocation& mu, const la::Matrix& etcMatrix) {
    // Infeasible allocations (some machine already beyond tau) are
    // dominated by any feasible one.
    const la::Vector finish = machineFinishTimes(mu, etcMatrix);
    for (std::size_t m = 0; m < mu.machineCount(); ++m) {
      if (!mu.tasksOn(m).empty() && finish[m] >= tau) {
        return -std::numeric_limits<double>::infinity();
      }
    }
    return makespanRobustnessClosedForm(mu, etcMatrix, tau);
  };
}

AllocationObjective makespanObjective() {
  return [](const Allocation& mu, const la::Matrix& etcMatrix) {
    return -makespan(mu, etcMatrix);
  };
}

Allocation localSearch(Allocation start, const la::Matrix& etcMatrix,
                       const AllocationObjective& objective,
                       std::size_t maxMoves) {
  if (!objective) throw std::invalid_argument("alloc::localSearch: objective");
  double current = objective(start, etcMatrix);
  for (std::size_t move = 0; move < maxMoves; ++move) {
    double bestGain = 0.0;
    std::size_t bestTask = 0;
    std::size_t bestMachine = 0;
    for (std::size_t t = 0; t < start.taskCount(); ++t) {
      const std::size_t from = start.machineOf(t);
      for (std::size_t m = 0; m < start.machineCount(); ++m) {
        if (m == from) continue;
        start.reassign(t, m);
        const double candidate = objective(start, etcMatrix);
        start.reassign(t, from);
        const double gain = candidate - current;
        if (gain > bestGain + 1e-12) {
          bestGain = gain;
          bestTask = t;
          bestMachine = m;
        }
      }
    }
    if (bestGain <= 0.0) break;
    start.reassign(bestTask, bestMachine);
    current += bestGain;
  }
  return start;
}

AnnealResult simulatedAnnealing(Allocation start, const la::Matrix& etcMatrix,
                                const AllocationObjective& objective,
                                rng::Xoshiro256StarStar& g,
                                const AnnealOptions& opts) {
  if (!objective) {
    throw std::invalid_argument("alloc::simulatedAnnealing: objective");
  }
  double current = objective(start, etcMatrix);
  if (!std::isfinite(current)) {
    throw std::invalid_argument(
        "alloc::simulatedAnnealing: start allocation has non-finite objective");
  }

  AnnealResult res{start, current, 0, 0};
  Allocation state = std::move(start);

  double temperature =
      opts.autoTemperatureFraction > 0.0
          ? opts.autoTemperatureFraction * (std::abs(current) + 1.0)
          : opts.initialTemperature;

  for (std::size_t it = 0; it < opts.iterations; ++it) {
    const std::size_t t = rng::uniformIndex(g, 0, state.taskCount() - 1);
    const std::size_t from = state.machineOf(t);
    std::size_t to = rng::uniformIndex(g, 0, state.machineCount() - 1);
    if (to == from) to = (to + 1) % state.machineCount();

    state.reassign(t, to);
    const double candidate = objective(state, etcMatrix);
    const double delta = candidate - current;
    const bool accept =
        std::isfinite(candidate) &&
        (delta >= 0.0 ||
         rng::uniform01(g) < std::exp(delta / std::max(temperature, 1e-12)));
    if (accept) {
      current = candidate;
      ++res.accepted;
      if (current > res.bestObjective) {
        res.bestObjective = current;
        res.best = state;
        ++res.improved;
      }
    } else {
      state.reassign(t, from);  // undo
    }
    temperature *= opts.coolingRate;
  }
  return res;
}

}  // namespace fepia::alloc
