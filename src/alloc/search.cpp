#include "alloc/search.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "alloc/eval_engine.hpp"
#include "alloc/robustness.hpp"
#include "obs/span.hpp"
#include "rng/distributions.hpp"

namespace fepia::alloc {

double RhoObjectiveFn::operator()(const Allocation& mu,
                                  const la::Matrix& etcMatrix) const {
  // Infeasible allocations (some machine already beyond tau) are
  // dominated by any feasible one.
  const la::Vector finish = machineFinishTimes(mu, etcMatrix);
  for (std::size_t m = 0; m < mu.machineCount(); ++m) {
    if (!mu.tasksOn(m).empty() && finish[m] >= tau) {
      return -std::numeric_limits<double>::infinity();
    }
  }
  return makespanRobustnessClosedForm(mu, etcMatrix, tau);
}

double MakespanObjectiveFn::operator()(const Allocation& mu,
                                       const la::Matrix& etcMatrix) const {
  return -makespan(mu, etcMatrix);
}

AllocationObjective rhoObjective(double tau) { return RhoObjectiveFn{tau}; }

AllocationObjective makespanObjective() { return MakespanObjectiveFn{}; }

Allocation localSearch(EvalEngine& engine, Allocation start,
                       std::size_t maxMoves) {
  FEPIA_SPAN("search.local_search");
  engine.setState(start);
  for (std::size_t move = 0; move < maxMoves; ++move) {
    const BestMove bm = engine.bestMove();
    if (!bm.move.has_value()) break;
    (void)engine.apply(bm.move->task, bm.move->to);
  }
  return engine.state();
}

Allocation localSearch(Allocation start, const la::Matrix& etcMatrix,
                       const AllocationObjective& objective,
                       std::size_t maxMoves) {
  if (!objective) throw std::invalid_argument("alloc::localSearch: objective");

  if (const std::optional<EngineConfig> cfg = engineConfigFor(objective)) {
    EvalEngine engine(etcMatrix, *cfg);
    return localSearch(engine, std::move(start), maxMoves);
  }

  // Generic objective: full recomputation per candidate. The incumbent
  // objective is re-evaluated after every accepted move instead of
  // accumulating gains, so floating-point drift cannot build up across a
  // long move sequence.
  double current = objective(start, etcMatrix);
  for (std::size_t move = 0; move < maxMoves; ++move) {
    double bestGain = 0.0;
    std::size_t bestTask = 0;
    std::size_t bestMachine = 0;
    for (std::size_t t = 0; t < start.taskCount(); ++t) {
      const std::size_t from = start.machineOf(t);
      for (std::size_t m = 0; m < start.machineCount(); ++m) {
        if (m == from) continue;
        start.reassign(t, m);
        const double candidate = objective(start, etcMatrix);
        start.reassign(t, from);
        const double gain = candidate - current;
        if (gain > bestGain + 1e-12) {
          bestGain = gain;
          bestTask = t;
          bestMachine = m;
        }
      }
    }
    if (bestGain <= 0.0) break;
    start.reassign(bestTask, bestMachine);
    current = objective(start, etcMatrix);
  }
  return start;
}

AnnealResult simulatedAnnealing(Allocation start, const la::Matrix& etcMatrix,
                                const AllocationObjective& objective,
                                rng::Xoshiro256StarStar& g,
                                const AnnealOptions& opts) {
  FEPIA_SPAN("search.annealing");
  if (!objective) {
    throw std::invalid_argument("alloc::simulatedAnnealing: objective");
  }

  // Engine-backed scoring when the objective supports it: a proposal is
  // scored as a delta against the working state and only applied on
  // acceptance, so each iteration costs O(n_from + n_to) instead of a
  // full recompute (and the tracked objective stays drift-free).
  const std::optional<EngineConfig> cfg = engineConfigFor(objective);
  std::optional<EvalEngine> engine;
  if (cfg.has_value()) {
    engine.emplace(etcMatrix, *cfg);
    engine->setState(start);
  }
  const auto scoreProposal = [&](Allocation& state, std::size_t t,
                                 std::size_t to) {
    if (engine.has_value()) return engine->scoreMove(t, to);
    const std::size_t from = state.machineOf(t);
    state.reassign(t, to);
    const double candidate = objective(state, etcMatrix);
    state.reassign(t, from);
    return candidate;
  };

  double current =
      engine.has_value() ? engine->stateObjective() : objective(start, etcMatrix);
  if (!std::isfinite(current)) {
    throw std::invalid_argument(
        "alloc::simulatedAnnealing: start allocation has non-finite objective");
  }

  AnnealResult res{start, current, 0, 0};
  Allocation state = std::move(start);

  double temperature =
      opts.autoTemperatureFraction > 0.0
          ? opts.autoTemperatureFraction * (std::abs(current) + 1.0)
          : opts.initialTemperature;

  for (std::size_t it = 0; it < opts.iterations; ++it) {
    const std::size_t t = rng::uniformIndex(g, 0, state.taskCount() - 1);
    const std::size_t from = state.machineOf(t);
    std::size_t to = rng::uniformIndex(g, 0, state.machineCount() - 1);
    if (to == from) to = (to + 1) % state.machineCount();

    const double candidate = scoreProposal(state, t, to);
    const double delta = candidate - current;
    const bool accept =
        std::isfinite(candidate) &&
        (delta >= 0.0 ||
         rng::uniform01(g) < std::exp(delta / std::max(temperature, 1e-12)));
    if (accept) {
      state.reassign(t, to);
      if (engine.has_value()) (void)engine->apply(t, to);
      current = candidate;
      ++res.accepted;
      if (current > res.bestObjective) {
        res.bestObjective = current;
        res.best = state;
        ++res.improved;
      }
    }
    temperature *= opts.coolingRate;
  }
  return res;
}

}  // namespace fepia::alloc
