// Independent-task resource allocation mu: a mapping of tasks to machines
// evaluated against an ETC matrix.
//
// This is the object whose robustness the paper's metric measures — the
// makespan case study of baseline [2] asks: "given a set of resource
// allocations, which one tolerates the largest increase in execution
// times before the makespan constraint is violated?"
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"
#include "la/vector.hpp"

namespace fepia::alloc {

/// A task → machine mapping.
///
/// Invariant: every assignment is a valid machine index (< machineCount).
class Allocation {
 public:
  /// Creates an allocation; throws std::invalid_argument when empty or
  /// an assignment exceeds `machineCount`.
  Allocation(std::vector<std::size_t> taskToMachine, std::size_t machineCount);

  [[nodiscard]] std::size_t taskCount() const noexcept {
    return assignment_.size();
  }
  [[nodiscard]] std::size_t machineCount() const noexcept { return machines_; }

  /// Machine assigned to task `t`.
  [[nodiscard]] std::size_t machineOf(std::size_t t) const {
    return assignment_.at(t);
  }

  /// Tasks assigned to machine `m`.
  [[nodiscard]] std::vector<std::size_t> tasksOn(std::size_t m) const;

  /// Underlying assignment vector.
  [[nodiscard]] const std::vector<std::size_t>& assignment() const noexcept {
    return assignment_;
  }

  /// Reassigns task `t`; throws std::out_of_range / std::invalid_argument.
  void reassign(std::size_t t, std::size_t m);

 private:
  std::vector<std::size_t> assignment_;
  std::size_t machines_;
};

/// Per-machine finish times F_m = sum of e(t, mu(t)) over tasks on m,
/// given actual execution times from the ETC matrix.
/// Throws std::invalid_argument when shapes disagree.
[[nodiscard]] la::Vector machineFinishTimes(const Allocation& mu,
                                            const la::Matrix& etcMatrix);

/// Makespan = max_m F_m.
[[nodiscard]] double makespan(const Allocation& mu, const la::Matrix& etcMatrix);

/// Finish times when task execution times are the entries of `execTimes`
/// (one per task, already on its assigned machine) instead of the ETC —
/// the perturbation-space view where pi = execTimes.
[[nodiscard]] la::Vector machineFinishTimesFromExecVector(
    const Allocation& mu, const la::Vector& execTimes);

/// The pi^orig of the makespan analysis: execution time of each task on
/// its assigned machine, read from the ETC matrix.
[[nodiscard]] la::Vector assignedExecutionTimes(const Allocation& mu,
                                                const la::Matrix& etcMatrix);

}  // namespace fepia::alloc
