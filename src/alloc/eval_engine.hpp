// Batched, parallel, incremental evaluation engine for allocation
// objectives.
//
// The point of the robustness metric is to *rank and select* resource
// allocations by rho, so the search loops (local search, annealing, GA)
// evaluate the same objective millions of times on nearly identical
// allocations. Recomputing every machine finish time from scratch per
// candidate is O(tasks * machines) per evaluation; this engine makes the
// hot path cheap three ways:
//
//  * Incremental deltas — moving one task between machines only changes
//    the two machines' finish times and their (tau - finish)/sqrt(n)
//    margin terms. The engine maintains per-machine state with an
//    explicit apply/revert API and scores a move in O(n_from + n_to)
//    instead of O(tasks * machines).
//  * Parallel batches — all single-task moves of a local-search step, or
//    a whole GA population, fan out across parallel::ThreadPool in fixed
//    chunks with index-ordered reduction, so the result is bit-identical
//    for a fixed seed at any thread count (same recipe as src/validate).
//  * Memoization — a chromosome-keyed cache so GA elites and revisited
//    neighbours are never re-scored.
//
// Exactness contract: every score the engine returns is bit-identical to
// the corresponding from-scratch evaluation (rhoObjective(tau) /
// makespanObjective()). Per-machine sums are always recomputed in task-
// index order over exactly the tasks on that machine — never drifted via
// floating-point add/subtract — which is what makes zero-drift
// regression tests possible.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "alloc/allocation.hpp"
#include "alloc/search.hpp"
#include "la/matrix.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/counters.hpp"

namespace fepia::alloc {

/// A task-to-machine assignment vector (the GA's chromosome view).
using Chromosome = std::vector<std::size_t>;

/// Which objective the engine accelerates.
enum class EngineObjective {
  /// rho = min over loaded machines of (tau - F_m)/sqrt(n_m), with -inf
  /// for allocations where some loaded machine already violates tau
  /// (matches alloc::rhoObjective).
  Rho,
  /// -makespan = -max_m F_m (matches alloc::makespanObjective).
  NegMakespan,
};

/// Engine configuration.
struct EngineConfig {
  EngineObjective objective = EngineObjective::Rho;
  /// tau for EngineObjective::Rho; ignored for NegMakespan.
  double tau = 0.0;
  /// Memoization entries kept before the cache resets (0 disables).
  std::size_t cacheCapacity = 1u << 16;
  /// Moves per parallel chunk in bestMove scans and chromosomes per
  /// chunk in batch evaluation. The chunk -> slot mapping is fixed, so
  /// results do not depend on the thread count.
  std::size_t chunkSize = 64;
};

/// A move under consideration or already applied (for revert).
struct Move {
  std::size_t task = 0;
  std::size_t to = 0;
  /// Machine the task was on before the move (filled by apply()).
  std::size_t from = 0;
};

/// Best single-task reassignment found by a scan.
struct BestMove {
  std::optional<Move> move;  ///< empty when no move improves
  double objective = 0.0;    ///< objective after the move (engine-exact)
};

/// Batched, parallel, incremental evaluator over a fixed ETC matrix.
///
/// Thread-safety: const scoring methods are safe to call concurrently
/// (the engine's own parallel scans do); mutating methods (setState,
/// apply, revert, evaluate*, bestMove) are not.
class EvalEngine {
 public:
  /// Binds the engine to an ETC matrix and objective. The matrix must
  /// outlive the engine. Throws std::invalid_argument on an empty
  /// matrix, a non-finite tau for Rho, or a zero chunk size.
  EvalEngine(const la::Matrix& etcMatrix, EngineConfig config,
             parallel::ThreadPool* pool = nullptr);

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const la::Matrix& etcMatrix() const noexcept { return etc_; }
  [[nodiscard]] std::size_t taskCount() const noexcept { return tasks_; }
  [[nodiscard]] std::size_t machineCount() const noexcept { return machines_; }

  // ----- full (cached) evaluation --------------------------------------

  /// Objective of an arbitrary allocation; consults the memo cache.
  /// Bit-identical to rhoObjective(tau)/makespanObjective() on the same
  /// allocation.
  [[nodiscard]] double evaluate(const Allocation& mu);

  /// Chromosome overload (no Allocation construction on cache hits).
  [[nodiscard]] double evaluate(const Chromosome& c);

  /// Scores a whole population. Cache lookups and inserts run serially;
  /// misses are evaluated across the pool in fixed chunks with results
  /// written to preallocated slots, so the returned vector is
  /// bit-identical at any thread count.
  [[nodiscard]] std::vector<double> evaluateBatch(
      const std::vector<Chromosome>& population);

  // ----- incremental working state -------------------------------------

  /// Loads `mu` as the working state (O(tasks)).
  void setState(const Allocation& mu);

  /// The working allocation (valid after setState).
  [[nodiscard]] const Allocation& state() const;

  /// Objective of the working state, maintained incrementally but always
  /// bit-identical to evaluate(state()).
  [[nodiscard]] double stateObjective() const;

  /// Objective of the working state with task `t` moved to machine `to`,
  /// without mutating the state. O(n_from + n_to). Scoring a no-op move
  /// (to == current machine) returns stateObjective().
  [[nodiscard]] double scoreMove(std::size_t t, std::size_t to) const;

  /// Applies the move to the working state (O(n_from + n_to)) and
  /// returns a record revert() accepts. Throws std::out_of_range on bad
  /// indices.
  Move apply(std::size_t t, std::size_t to);

  /// Undoes a move returned by apply(). Moves must be reverted in LIFO
  /// order for the state to retrace its history.
  void revert(const Move& m);

  /// Best single-task reassignment of the working state: scans all
  /// tasks x (machines - 1) moves, in parallel when a pool is attached.
  /// Ties break toward the smallest (task, machine) pair regardless of
  /// chunking or thread count. Moves are improvements only when they
  /// beat the current objective by more than `minGain`.
  [[nodiscard]] BestMove bestMove(double minGain = 1e-12);

  // ----- instrumentation -----------------------------------------------

  /// The engine's metrics registry. Counters: "evals_full",
  /// "evals_delta", "cache_hits", "cache_misses", "batches",
  /// "move_scans", "applies", "reverts". When obs::timingEnabled(), the
  /// histogram "engine.cache_lookup_ns" records memo-lookup latency
  /// (hits and misses alike).
  [[nodiscard]] const obs::Registry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }

  /// The registry's counters (the pre-registry accessor; kept so
  /// existing call sites and tests read the same object).
  [[nodiscard]] const trace::CounterSet& counters() const noexcept {
    return metrics_.counters();
  }
  [[nodiscard]] trace::CounterSet& counters() noexcept {
    return metrics_.counters();
  }

 private:
  struct MachineState {
    std::vector<std::size_t> tasks;  ///< ascending task indices
    double finish = 0.0;             ///< index-ordered sum of exec times
  };

  /// Index-ordered finish time of machine `m` with task `skip` removed
  /// and/or task `add` inserted (either may be >= tasks_ to disable).
  [[nodiscard]] double finishWith(std::size_t m, std::size_t skip,
                                  std::size_t add) const;

  /// Margin a machine contributes to the min-aggregation, given its
  /// finish time and task count; +inf for machines that cannot bind.
  [[nodiscard]] double margin(double finish, std::size_t taskCount) const;

  /// Recomputes machine m's finish from its task list (index order).
  void refreshMachine(std::size_t m);

  /// Objective from per-machine state, folded in machine-index order.
  [[nodiscard]] double foldObjective() const;

  /// Objective with machines `a` and `b` replaced by candidate
  /// (finish, count) pairs; other machines read from current state.
  [[nodiscard]] double foldObjectiveWith(std::size_t a, double finishA,
                                         std::size_t countA, std::size_t b,
                                         double finishB,
                                         std::size_t countB) const;

  /// Uncached, from-scratch evaluation of a chromosome (thread-safe).
  [[nodiscard]] double evaluateFull(const Chromosome& c) const;

  const la::Matrix& etc_;
  EngineConfig config_;
  parallel::ThreadPool* pool_;
  std::size_t tasks_;
  std::size_t machines_;

  std::optional<Allocation> state_;
  std::vector<MachineState> machineState_;
  double stateObjective_ = 0.0;

  std::unordered_map<std::uint64_t, std::vector<std::pair<Chromosome, double>>>
      cache_;
  std::size_t cacheEntries_ = 0;

  obs::Registry metrics_;
};

/// Engine config matching a type-erased objective, when the engine can
/// accelerate it (the rho / makespan functors of search.hpp); nullopt
/// for custom objectives.
[[nodiscard]] std::optional<EngineConfig> engineConfigFor(
    const AllocationObjective& objective);

}  // namespace fepia::alloc
