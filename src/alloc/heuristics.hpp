// Mapping heuristics from the heterogeneous-computing literature.
//
// The paper's motivating question needs a *population* of candidate
// allocations to rank by robustness. These are the canonical static
// mapping heuristics used in the authors' prior work (OLB, MET, MCT,
// Min-min, Max-min, Sufferage), plus random mappings and a
// steepest-descent local search for ablations.
#pragma once

#include <string>
#include <vector>

#include "alloc/allocation.hpp"
#include "la/matrix.hpp"
#include "rng/xoshiro.hpp"

namespace fepia::alloc {

/// Heuristic identifiers (for reports and parameterised sweeps).
enum class Heuristic { Olb, Met, Mct, MinMin, MaxMin, Sufferage, Random };

/// Name like "min-min".
[[nodiscard]] const char* heuristicName(Heuristic h) noexcept;

/// All deterministic heuristics, in a fixed order.
[[nodiscard]] const std::vector<Heuristic>& allHeuristics();

/// Opportunistic Load Balancing: next task to the machine that becomes
/// idle earliest, ignoring execution time.
[[nodiscard]] Allocation olb(const la::Matrix& etcMatrix);

/// Minimum Execution Time: each task to its fastest machine.
[[nodiscard]] Allocation met(const la::Matrix& etcMatrix);

/// Minimum Completion Time: each task (arrival order) to the machine
/// minimising its completion time.
[[nodiscard]] Allocation mct(const la::Matrix& etcMatrix);

/// Min-min: repeatedly schedule the (task, machine) pair with the
/// smallest minimum completion time.
[[nodiscard]] Allocation minMin(const la::Matrix& etcMatrix);

/// Max-min: repeatedly schedule the task whose minimum completion time
/// is largest.
[[nodiscard]] Allocation maxMin(const la::Matrix& etcMatrix);

/// Sufferage: repeatedly schedule the task that would "suffer" most
/// (largest second-best minus best completion time).
[[nodiscard]] Allocation sufferage(const la::Matrix& etcMatrix);

/// Uniformly random assignment.
[[nodiscard]] Allocation randomAllocation(const la::Matrix& etcMatrix,
                                          rng::Xoshiro256StarStar& g);

/// Dispatch by enum; Random requires `g` (throws std::invalid_argument
/// when absent).
[[nodiscard]] Allocation runHeuristic(Heuristic h, const la::Matrix& etcMatrix,
                                      rng::Xoshiro256StarStar* g = nullptr);

/// Steepest-descent local search on makespan: repeatedly applies the
/// single-task reassignment that most reduces makespan until no move
/// improves. Returns the improved allocation.
[[nodiscard]] Allocation localSearchMakespan(Allocation start,
                                             const la::Matrix& etcMatrix,
                                             std::size_t maxMoves = 10000);

}  // namespace fepia::alloc
