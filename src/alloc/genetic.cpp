#include "alloc/genetic.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "alloc/eval_engine.hpp"
#include "obs/span.hpp"
#include "rng/distributions.hpp"

namespace fepia::alloc {

namespace {

void checkOptions(const GeneticOptions& opts) {
  if (opts.populationSize < 2 || opts.tournamentSize == 0 ||
      opts.crossoverRate < 0.0 || opts.crossoverRate > 1.0 ||
      opts.mutationRate < 0.0 || opts.mutationRate > 1.0 ||
      opts.eliteCount >= opts.populationSize) {
    throw std::invalid_argument("alloc::geneticSearch: bad options");
  }
}

/// Scores a whole population in index order; results must not depend on
/// anything but the chromosomes.
using BatchEvaluator =
    std::function<std::vector<double>(const std::vector<Chromosome>&)>;

GeneticResult runGa(std::size_t tasks, std::size_t machines,
                    const BatchEvaluator& evaluateBatch,
                    rng::Xoshiro256StarStar& g, const GeneticOptions& opts,
                    const std::vector<Allocation>& seeds) {
  checkOptions(opts);
  if (tasks == 0 || machines == 0) {
    throw std::invalid_argument("alloc::geneticSearch: empty ETC");
  }

  GeneticResult res{Allocation(std::vector<std::size_t>(tasks, 0), machines),
                    -std::numeric_limits<double>::infinity(), 0, 0};

  // Initial population: injected seeds first, random fill after.
  std::vector<Chromosome> population;
  population.reserve(opts.populationSize);
  for (const Allocation& seed : seeds) {
    if (seed.taskCount() != tasks || seed.machineCount() != machines) {
      throw std::invalid_argument("alloc::geneticSearch: seed shape mismatch");
    }
    if (population.size() < opts.populationSize) {
      population.push_back(seed.assignment());
    }
  }
  while (population.size() < opts.populationSize) {
    Chromosome c(tasks);
    for (auto& gene : c) gene = rng::uniformIndex(g, 0, machines - 1);
    population.push_back(std::move(c));
  }

  res.evaluations += population.size();
  std::vector<double> fitness = evaluateBatch(population);
  bool anyFinite = false;
  for (const double f : fitness) anyFinite = anyFinite || std::isfinite(f);
  if (!anyFinite) {
    throw std::invalid_argument(
        "alloc::geneticSearch: no initial chromosome has a finite objective");
  }

  const auto tournament = [&]() -> const Chromosome& {
    std::size_t best = rng::uniformIndex(g, 0, opts.populationSize - 1);
    for (std::size_t k = 1; k < opts.tournamentSize; ++k) {
      const std::size_t challenger =
          rng::uniformIndex(g, 0, opts.populationSize - 1);
      if (fitness[challenger] > fitness[best]) best = challenger;
    }
    return population[best];
  };

  std::vector<std::size_t> order(opts.populationSize);
  for (std::size_t gen = 0; gen < opts.generations; ++gen) {
    FEPIA_SPAN_ARG("ga.generation", "gen", gen);
    // Track the incumbent.
    for (std::size_t i = 0; i < population.size(); ++i) {
      if (fitness[i] > res.bestObjective) {
        res.bestObjective = fitness[i];
        res.best = Allocation(population[i], machines);
      }
    }

    // Elites survive verbatim.
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return fitness[a] > fitness[b];
    });
    std::vector<Chromosome> next;
    next.reserve(opts.populationSize);
    for (std::size_t e = 0; e < opts.eliteCount; ++e) {
      next.push_back(population[order[e]]);
    }

    // Offspring via tournament + uniform crossover + mutation.
    while (next.size() < opts.populationSize) {
      Chromosome child = tournament();
      if (rng::uniform01(g) < opts.crossoverRate) {
        const Chromosome& other = tournament();
        for (std::size_t t = 0; t < tasks; ++t) {
          if (rng::uniform01(g) < 0.5) child[t] = other[t];
        }
      }
      for (std::size_t t = 0; t < tasks; ++t) {
        if (rng::uniform01(g) < opts.mutationRate) {
          child[t] = rng::uniformIndex(g, 0, machines - 1);
        }
      }
      next.push_back(std::move(child));
    }
    population = std::move(next);
    res.evaluations += population.size();
    fitness = evaluateBatch(population);
  }

  for (std::size_t i = 0; i < population.size(); ++i) {
    if (fitness[i] > res.bestObjective) {
      res.bestObjective = fitness[i];
      res.best = Allocation(population[i], machines);
    }
  }
  return res;
}

}  // namespace

GeneticResult geneticSearch(EvalEngine& engine, rng::Xoshiro256StarStar& g,
                            const GeneticOptions& opts,
                            const std::vector<Allocation>& seeds) {
  FEPIA_SPAN("search.ga");
  const std::uint64_t hitsBefore = engine.counters().value("cache_hits");
  GeneticResult res = runGa(
      engine.taskCount(), engine.machineCount(),
      [&engine](const std::vector<Chromosome>& pop) {
        return engine.evaluateBatch(pop);
      },
      g, opts, seeds);
  res.cacheHits = static_cast<std::size_t>(
      engine.counters().value("cache_hits") - hitsBefore);
  return res;
}

GeneticResult geneticSearch(const la::Matrix& etcMatrix,
                            const AllocationObjective& objective,
                            rng::Xoshiro256StarStar& g,
                            const GeneticOptions& opts,
                            const std::vector<Allocation>& seeds,
                            parallel::ThreadPool* pool) {
  if (!objective) {
    throw std::invalid_argument("alloc::geneticSearch: null objective");
  }

  if (std::optional<EngineConfig> cfg = engineConfigFor(objective)) {
    EvalEngine engine(etcMatrix, *cfg, pool);
    return geneticSearch(engine, g, opts, seeds);
  }

  // Custom objective: serial full evaluation, no caching.
  const std::size_t machines = etcMatrix.cols();
  return runGa(
      etcMatrix.rows(), machines,
      [&](const std::vector<Chromosome>& pop) {
        std::vector<double> fitness(pop.size());
        for (std::size_t i = 0; i < pop.size(); ++i) {
          fitness[i] = objective(Allocation(pop[i], machines), etcMatrix);
        }
        return fitness;
      },
      g, opts, seeds);
}

}  // namespace fepia::alloc
