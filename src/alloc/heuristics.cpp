#include "alloc/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "alloc/eval_engine.hpp"
#include "alloc/search.hpp"
#include "rng/distributions.hpp"

namespace fepia::alloc {

const char* heuristicName(Heuristic h) noexcept {
  switch (h) {
    case Heuristic::Olb:
      return "olb";
    case Heuristic::Met:
      return "met";
    case Heuristic::Mct:
      return "mct";
    case Heuristic::MinMin:
      return "min-min";
    case Heuristic::MaxMin:
      return "max-min";
    case Heuristic::Sufferage:
      return "sufferage";
    case Heuristic::Random:
      return "random";
  }
  return "unknown";
}

const std::vector<Heuristic>& allHeuristics() {
  static const std::vector<Heuristic> kAll = {
      Heuristic::Olb,    Heuristic::Met,    Heuristic::Mct,
      Heuristic::MinMin, Heuristic::MaxMin, Heuristic::Sufferage};
  return kAll;
}

namespace {

void requireNonEmpty(const la::Matrix& etcMatrix, const char* fn) {
  if (etcMatrix.rows() == 0 || etcMatrix.cols() == 0) {
    throw std::invalid_argument(std::string("alloc::") + fn + ": empty ETC");
  }
}

/// Shared scaffolding for the list-scheduling heuristics (min-min family):
/// at each round pick a task by `select`, assign to its best machine.
/// `select` receives, per unscheduled task: best completion time, the
/// best machine, and the second-best completion time.
template <typename Select>
Allocation listSchedule(const la::Matrix& etcMatrix, Select select) {
  const std::size_t tasks = etcMatrix.rows();
  const std::size_t machines = etcMatrix.cols();
  std::vector<std::size_t> assignment(tasks, 0);
  std::vector<bool> scheduled(tasks, false);
  std::vector<double> ready(machines, 0.0);

  for (std::size_t round = 0; round < tasks; ++round) {
    std::size_t chosenTask = tasks;
    std::size_t chosenMachine = 0;
    double chosenKey = 0.0;
    bool haveChoice = false;

    for (std::size_t t = 0; t < tasks; ++t) {
      if (scheduled[t]) continue;
      double best = std::numeric_limits<double>::infinity();
      double second = std::numeric_limits<double>::infinity();
      std::size_t bestM = 0;
      for (std::size_t m = 0; m < machines; ++m) {
        const double ct = ready[m] + etcMatrix(t, m);
        if (ct < best) {
          second = best;
          best = ct;
          bestM = m;
        } else if (ct < second) {
          second = ct;
        }
      }
      const double key = select(best, second);
      if (!haveChoice || key < chosenKey) {
        haveChoice = true;
        chosenKey = key;
        chosenTask = t;
        chosenMachine = bestM;
      }
    }
    scheduled[chosenTask] = true;
    assignment[chosenTask] = chosenMachine;
    ready[chosenMachine] += etcMatrix(chosenTask, chosenMachine);
  }
  return Allocation(std::move(assignment), machines);
}

}  // namespace

Allocation olb(const la::Matrix& etcMatrix) {
  requireNonEmpty(etcMatrix, "olb");
  const std::size_t machines = etcMatrix.cols();
  std::vector<std::size_t> assignment(etcMatrix.rows());
  std::vector<double> ready(machines, 0.0);
  for (std::size_t t = 0; t < etcMatrix.rows(); ++t) {
    const auto m = static_cast<std::size_t>(
        std::min_element(ready.begin(), ready.end()) - ready.begin());
    assignment[t] = m;
    ready[m] += etcMatrix(t, m);
  }
  return Allocation(std::move(assignment), machines);
}

Allocation met(const la::Matrix& etcMatrix) {
  requireNonEmpty(etcMatrix, "met");
  std::vector<std::size_t> assignment(etcMatrix.rows());
  for (std::size_t t = 0; t < etcMatrix.rows(); ++t) {
    std::size_t best = 0;
    for (std::size_t m = 1; m < etcMatrix.cols(); ++m) {
      if (etcMatrix(t, m) < etcMatrix(t, best)) best = m;
    }
    assignment[t] = best;
  }
  return Allocation(std::move(assignment), etcMatrix.cols());
}

Allocation mct(const la::Matrix& etcMatrix) {
  requireNonEmpty(etcMatrix, "mct");
  const std::size_t machines = etcMatrix.cols();
  std::vector<std::size_t> assignment(etcMatrix.rows());
  std::vector<double> ready(machines, 0.0);
  for (std::size_t t = 0; t < etcMatrix.rows(); ++t) {
    std::size_t best = 0;
    double bestCt = std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < machines; ++m) {
      const double ct = ready[m] + etcMatrix(t, m);
      if (ct < bestCt) {
        bestCt = ct;
        best = m;
      }
    }
    assignment[t] = best;
    ready[best] += etcMatrix(t, best);
  }
  return Allocation(std::move(assignment), machines);
}

Allocation minMin(const la::Matrix& etcMatrix) {
  requireNonEmpty(etcMatrix, "minMin");
  // Smallest best completion time first.
  return listSchedule(etcMatrix, [](double best, double) { return best; });
}

Allocation maxMin(const la::Matrix& etcMatrix) {
  requireNonEmpty(etcMatrix, "maxMin");
  // Largest best completion time first (negate for the min-select frame).
  return listSchedule(etcMatrix, [](double best, double) { return -best; });
}

Allocation sufferage(const la::Matrix& etcMatrix) {
  requireNonEmpty(etcMatrix, "sufferage");
  // Largest (second − best) first.
  return listSchedule(etcMatrix, [](double best, double second) {
    const double suffer = std::isinf(second) ? 0.0 : second - best;
    return -suffer;
  });
}

Allocation randomAllocation(const la::Matrix& etcMatrix,
                            rng::Xoshiro256StarStar& g) {
  requireNonEmpty(etcMatrix, "randomAllocation");
  std::vector<std::size_t> assignment(etcMatrix.rows());
  for (auto& a : assignment) a = rng::uniformIndex(g, 0, etcMatrix.cols() - 1);
  return Allocation(std::move(assignment), etcMatrix.cols());
}

Allocation runHeuristic(Heuristic h, const la::Matrix& etcMatrix,
                        rng::Xoshiro256StarStar* g) {
  switch (h) {
    case Heuristic::Olb:
      return olb(etcMatrix);
    case Heuristic::Met:
      return met(etcMatrix);
    case Heuristic::Mct:
      return mct(etcMatrix);
    case Heuristic::MinMin:
      return minMin(etcMatrix);
    case Heuristic::MaxMin:
      return maxMin(etcMatrix);
    case Heuristic::Sufferage:
      return sufferage(etcMatrix);
    case Heuristic::Random:
      if (g == nullptr) {
        throw std::invalid_argument(
            "alloc::runHeuristic: Random requires a generator");
      }
      return randomAllocation(etcMatrix, *g);
  }
  throw std::invalid_argument("alloc::runHeuristic: unknown heuristic");
}

Allocation localSearchMakespan(Allocation start, const la::Matrix& etcMatrix,
                               std::size_t maxMoves) {
  // Engine-backed steepest descent: exact incremental finish times (the
  // old hand-rolled delta loop accumulated `current -= bestGain`, which
  // drifts from the true makespan over long move sequences).
  EngineConfig cfg;
  cfg.objective = EngineObjective::NegMakespan;
  EvalEngine engine(etcMatrix, cfg);
  return localSearch(engine, std::move(start), maxMoves);
}

}  // namespace fepia::alloc
