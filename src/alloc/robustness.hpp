// The makespan robustness case study of baseline [2], expressed through
// the library's FePIA machinery.
//
// Setting: independent tasks mapped by mu onto machines; the perturbation
// parameter is the vector of actual task execution times on their
// assigned machines (one kind, unit seconds). The performance features
// are the per-machine finish times F_m(pi) = sum of pi_t over tasks on m
// (linear), each bounded above by the makespan constraint tau. [2] gives
// the closed-form radius
//
//     r_mu(F_m, pi) = (tau − F_m(pi^orig)) / sqrt(n_m)
//
// with n_m the number of tasks on machine m; rho is the minimum over
// machines. These functions build the FeatureSet/FepiaProblem and also
// provide the closed form for validation.
#pragma once

#include "alloc/allocation.hpp"
#include "feature/feature.hpp"
#include "perturb/parameter.hpp"
#include "radius/fepia.hpp"
#include "radius/rho.hpp"

namespace fepia::alloc {

/// The perturbation parameter of the makespan analysis: actual execution
/// times of every task on its assigned machine (seconds), with pi^orig
/// read from the ETC matrix.
[[nodiscard]] perturb::PerturbationParameter executionTimeParameter(
    const Allocation& mu, const la::Matrix& etcMatrix);

/// Per-machine finish-time features F_m (machines with no tasks are
/// skipped — their finish time cannot vary), each bounded by tau.
/// Throws std::invalid_argument when tau does not exceed every original
/// finish time (the allocation would already violate the constraint).
[[nodiscard]] feature::FeatureSet makespanFeatureSet(const Allocation& mu,
                                                     const la::Matrix& etcMatrix,
                                                     double tau);

/// Complete single-kind FePIA problem for the makespan case study.
[[nodiscard]] radius::FepiaProblem makespanProblem(const Allocation& mu,
                                                   const la::Matrix& etcMatrix,
                                                   double tau);

/// rho_mu(Phi, pi) for the makespan case study (closed form inside).
[[nodiscard]] radius::RobustnessReport makespanRobustness(
    const Allocation& mu, const la::Matrix& etcMatrix, double tau);

/// [2]'s closed form (tau − F_m)/sqrt(n_m) minimised over machines —
/// used by tests to validate the engine path.
[[nodiscard]] double makespanRobustnessClosedForm(const Allocation& mu,
                                                  const la::Matrix& etcMatrix,
                                                  double tau);

}  // namespace fepia::alloc
