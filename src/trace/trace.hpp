// Dynamic load traces and time-to-violation analysis.
//
// The paper motivates the metric with systems that "operate in a dynamic
// environment, where the sensor loads are expected to change
// unpredictably": the initial allocation is valid until the drifting
// loads first leave the robust region. This module makes that lifetime
// measurable — synthetic load trajectories (geometric random walk with
// optional mean reversion, and a burst model) plus survival analysis —
// so the static radius can be checked against the dynamic quantity it is
// supposed to predict: a larger rho should buy a longer expected time to
// the first QoS violation.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "feature/feature.hpp"
#include "la/vector.hpp"
#include "rng/xoshiro.hpp"

namespace fepia::trace {

/// A load trajectory: one lambda vector per time step.
using LoadTrace = std::vector<la::Vector>;

/// Geometric random walk: log-load of every sensor takes iid normal
/// steps, optionally mean-reverting toward the starting point.
struct RandomWalkParams {
  std::size_t steps = 1000;
  double drift = 0.0;          ///< per-step mean of the log increment
  double volatility = 0.02;    ///< per-step std-dev of the log increment
  double meanReversion = 0.0;  ///< pull of log-load toward the origin, in [0,1]
};

/// Generates a trace starting at `origin` (loads stay positive by
/// construction). Throws std::invalid_argument for empty origin,
/// non-positive entries, zero steps, negative volatility, or
/// meanReversion outside [0, 1].
[[nodiscard]] LoadTrace randomWalkTrace(const la::Vector& origin,
                                        const RandomWalkParams& params,
                                        rng::Xoshiro256StarStar& g);

/// Burst model: loads sit at the origin and occasionally jump to a
/// multiple of it for a random duration (overlapping bursts multiply).
struct BurstParams {
  std::size_t steps = 1000;
  double burstsPerStep = 0.01;     ///< Poisson arrival rate of bursts
  double factorMin = 1.2;          ///< burst multiplier range
  double factorMax = 2.0;
  std::size_t durationMin = 10;    ///< burst length range (steps)
  std::size_t durationMax = 50;
};

/// Generates a burst trace; bursts hit a uniformly chosen single sensor.
/// Throws std::invalid_argument on inconsistent parameters.
[[nodiscard]] LoadTrace burstTrace(const la::Vector& origin,
                                   const BurstParams& params,
                                   rng::Xoshiro256StarStar& g);

/// First step at which some feature leaves its bounds, or nullopt when
/// the whole trace stays robust. Throws on dimension mismatch.
[[nodiscard]] std::optional<std::size_t> firstViolation(
    const feature::FeatureSet& phi, const LoadTrace& trace);

/// Survival statistics over many trace replications.
struct SurvivalSummary {
  std::size_t replications = 0;
  std::size_t violated = 0;        ///< traces that violated at least once
  double violationFraction = 0.0;
  /// Mean/median first-violation step over the violated traces
  /// (censored traces excluded; see `violationFraction` for censoring).
  double meanTimeToViolation = 0.0;
  double medianTimeToViolation = 0.0;
};

/// Runs `replications` random-walk traces from `origin` and summarises
/// time-to-violation of the feature set.
[[nodiscard]] SurvivalSummary survival(const feature::FeatureSet& phi,
                                       const la::Vector& origin,
                                       const RandomWalkParams& params,
                                       std::size_t replications,
                                       rng::Xoshiro256StarStar& g);

}  // namespace fepia::trace
