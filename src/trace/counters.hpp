// Lightweight named counters for instrumenting hot paths.
//
// The search/evaluation engines count their work (objective evaluations,
// cache hits, incremental vs full recomputes, wall time) so benches and
// the CLI can report *why* a run was fast, not just that it was. A
// CounterSet keeps insertion order, so reports and JSON output are
// deterministic for a deterministic run.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fepia::trace {

/// One named counter. Values are unsigned 64-bit ticks except where a
/// counter is declared in fractional units (e.g. microseconds).
struct Counter {
  std::string name;
  std::uint64_t value = 0;
};

/// Insertion-ordered set of named counters.
///
/// Deliberately not thread-safe: parallel stages accumulate into local
/// counters and merge after the join, the same discipline the
/// determinism contract imposes on results.
class CounterSet {
 public:
  /// Adds `delta` to counter `name`, creating it at zero when absent.
  void bump(const std::string& name, std::uint64_t delta = 1);

  /// Sets counter `name` (creating it when absent).
  void set(const std::string& name, std::uint64_t value);

  /// Value of `name`, 0 when absent.
  [[nodiscard]] std::uint64_t value(const std::string& name) const noexcept;

  /// Adds every counter of `other` into this set.
  void merge(const CounterSet& other);

  [[nodiscard]] const std::vector<Counter>& all() const noexcept {
    return counters_;
  }
  [[nodiscard]] bool empty() const noexcept { return counters_.empty(); }
  void clear() noexcept { counters_.clear(); }

  /// Writes `"name": value, ...` pairs as a JSON object (insertion order).
  void writeJson(std::ostream& os) const;

  /// Writes one `name = value` line per counter (insertion order).
  void print(std::ostream& os) const;

 private:
  Counter* find(const std::string& name) noexcept;

  std::vector<Counter> counters_;
};

}  // namespace fepia::trace
