// Compatibility forwarder — the counters now live in the observability
// layer (obs/metrics.hpp), where they sit next to the gauges and
// histograms of the full metrics registry and share its escaped JSON
// writers. Existing includes and the trace::CounterSet spelling keep
// working; new code should include "obs/metrics.hpp" directly.
#pragma once

#include "obs/metrics.hpp"

namespace fepia::trace {

using Counter = obs::Counter;
using CounterSet = obs::CounterSet;

}  // namespace fepia::trace
