#include "trace/counters.hpp"

namespace fepia::trace {

Counter* CounterSet::find(const std::string& name) noexcept {
  for (Counter& c : counters_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void CounterSet::bump(const std::string& name, std::uint64_t delta) {
  if (Counter* c = find(name)) {
    c->value += delta;
  } else {
    counters_.push_back(Counter{name, delta});
  }
}

void CounterSet::set(const std::string& name, std::uint64_t value) {
  if (Counter* c = find(name)) {
    c->value = value;
  } else {
    counters_.push_back(Counter{name, value});
  }
}

std::uint64_t CounterSet::value(const std::string& name) const noexcept {
  for (const Counter& c : counters_) {
    if (c.name == name) return c.value;
  }
  return 0;
}

void CounterSet::merge(const CounterSet& other) {
  for (const Counter& c : other.counters_) bump(c.name, c.value);
}

void CounterSet::writeJson(std::ostream& os) const {
  os << '{';
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"' << counters_[i].name << "\": " << counters_[i].value;
  }
  os << '}';
}

void CounterSet::print(std::ostream& os) const {
  for (const Counter& c : counters_) {
    os << c.name << " = " << c.value << '\n';
  }
}

}  // namespace fepia::trace
