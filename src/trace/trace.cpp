#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "stats/descriptive.hpp"

namespace fepia::trace {

namespace {

void requirePositiveOrigin(const la::Vector& origin, const char* fn) {
  if (origin.empty()) {
    throw std::invalid_argument(std::string("trace::") + fn + ": empty origin");
  }
  for (double v : origin) {
    if (v <= 0.0) {
      throw std::invalid_argument(std::string("trace::") + fn +
                                  ": origin loads must be positive");
    }
  }
}

}  // namespace

LoadTrace randomWalkTrace(const la::Vector& origin,
                          const RandomWalkParams& params,
                          rng::Xoshiro256StarStar& g) {
  requirePositiveOrigin(origin, "randomWalkTrace");
  if (params.steps == 0 || params.volatility < 0.0 ||
      params.meanReversion < 0.0 || params.meanReversion > 1.0) {
    throw std::invalid_argument("trace::randomWalkTrace: bad parameters");
  }
  LoadTrace out;
  out.reserve(params.steps);
  // Work in log space relative to the origin so positivity is automatic.
  la::Vector logRel(origin.size(), 0.0);
  for (std::size_t t = 0; t < params.steps; ++t) {
    for (std::size_t s = 0; s < logRel.size(); ++s) {
      logRel[s] = (1.0 - params.meanReversion) * logRel[s] +
                  rng::normal(g, params.drift, params.volatility);
    }
    la::Vector lambda(origin.size());
    for (std::size_t s = 0; s < lambda.size(); ++s) {
      lambda[s] = origin[s] * std::exp(logRel[s]);
    }
    out.push_back(std::move(lambda));
  }
  return out;
}

LoadTrace burstTrace(const la::Vector& origin, const BurstParams& params,
                     rng::Xoshiro256StarStar& g) {
  requirePositiveOrigin(origin, "burstTrace");
  if (params.steps == 0 || params.burstsPerStep < 0.0 ||
      params.factorMin < 1.0 || params.factorMax < params.factorMin ||
      params.durationMin == 0 || params.durationMax < params.durationMin) {
    throw std::invalid_argument("trace::burstTrace: bad parameters");
  }
  // Active burst multipliers per sensor, as (endStep, factor) pairs.
  std::vector<std::vector<std::pair<std::size_t, double>>> active(
      origin.size());
  LoadTrace out;
  out.reserve(params.steps);
  for (std::size_t t = 0; t < params.steps; ++t) {
    // Poisson(burstsPerStep) arrivals this step (thin: rate is small).
    if (rng::uniform01(g) < params.burstsPerStep) {
      const std::size_t sensor = rng::uniformIndex(g, 0, origin.size() - 1);
      const double factor = rng::uniform(g, params.factorMin, params.factorMax);
      const std::size_t duration =
          rng::uniformIndex(g, params.durationMin, params.durationMax);
      active[sensor].emplace_back(t + duration, factor);
    }
    la::Vector lambda = origin;
    for (std::size_t s = 0; s < origin.size(); ++s) {
      auto& bursts = active[s];
      bursts.erase(std::remove_if(bursts.begin(), bursts.end(),
                                  [t](const auto& b) { return b.first <= t; }),
                   bursts.end());
      for (const auto& [end, factor] : bursts) lambda[s] *= factor;
    }
    out.push_back(std::move(lambda));
  }
  return out;
}

std::optional<std::size_t> firstViolation(const feature::FeatureSet& phi,
                                          const LoadTrace& trace) {
  for (std::size_t t = 0; t < trace.size(); ++t) {
    if (trace[t].size() != phi.dimension()) {
      throw std::invalid_argument("trace::firstViolation: dimension mismatch");
    }
    if (!phi.allWithinBounds(trace[t])) return t;
  }
  return std::nullopt;
}

SurvivalSummary survival(const feature::FeatureSet& phi,
                         const la::Vector& origin,
                         const RandomWalkParams& params,
                         std::size_t replications,
                         rng::Xoshiro256StarStar& g) {
  if (replications == 0) {
    throw std::invalid_argument("trace::survival: zero replications");
  }
  SurvivalSummary out;
  out.replications = replications;
  std::vector<double> times;
  for (std::size_t r = 0; r < replications; ++r) {
    const LoadTrace tr = randomWalkTrace(origin, params, g);
    if (const auto t = firstViolation(phi, tr)) {
      ++out.violated;
      times.push_back(static_cast<double>(*t));
    }
  }
  out.violationFraction =
      static_cast<double>(out.violated) / static_cast<double>(replications);
  if (!times.empty()) {
    out.meanTimeToViolation = stats::mean(times);
    out.medianTimeToViolation = stats::median(times);
  }
  return out;
}

}  // namespace fepia::trace
