#include "fault/degraded.hpp"

#include <algorithm>
#include <memory>

#include "radius/fepia.hpp"
#include "radius/merge.hpp"

namespace fepia::fault {

validate::EstimatorOptions desEstimatorOptions(validate::EstimatorOptions base,
                                               bool explicitDirections) {
  if (!explicitDirections) base.directions = 64;
  base.chunkSize = std::min(base.chunkSize, std::size_t{8});
  base.horizon = 4.0;   // relative coordinates; pi < 0 beyond 1
  base.polishSweeps = 12;  // each classification is a full DES run
  return base;
}

DegradedEstimate estimateDegradedRadius(const hiperd::ReferenceSystem& ref,
                                        const std::vector<FaultPlan>& scenarios,
                                        const validate::EstimatorOptions& estimator,
                                        const DegradedOptions& opts,
                                        parallel::ThreadPool* pool) {
  // Analytic side: the normalized-by-original merged analysis, exactly as
  // `validate --des` builds it, supplies rho and the P-space map of the
  // critical feature.
  const radius::FepiaProblem mixed =
      ref.system.executionMessageProblem(ref.qos);
  const radius::MergedAnalysis analysis =
      mixed.merged(radius::MergeScheme::NormalizedByOriginal);
  const auto& rep = analysis.report();
  const radius::DiagonalMap map(rep.features[rep.criticalFeature].mapWeights);

  DegradedEstimate out;
  out.analyticRho = rep.rho;
  out.criticalFeature = rep.features[rep.criticalFeature].featureName;

  // One injector per scenario, validated up front. An empty plan maps to
  // a null injector so the simulation takes the exact fault-free path.
  std::vector<std::unique_ptr<PlanInjector>> injectors;
  injectors.reserve(scenarios.size());
  for (const FaultPlan& plan : scenarios) {
    injectors.push_back(plan.empty()
                            ? nullptr
                            : std::make_unique<PlanInjector>(plan, ref.system));
  }
  const auto injectorFor = [&](std::size_t direction) -> const des::FaultInjector* {
    if (injectors.empty()) return nullptr;
    return injectors[direction % injectors.size()].get();
  };

  // Joint-space membership: map the P-space probe back to an
  // (execution times ⋆ message sizes) operating point and simulate it
  // with the probe direction's fault scenario active.
  const validate::IndexedSafePredicate safe = [&](const la::Vector& P,
                                                  std::size_t direction) {
    const la::Vector pi = map.fromP(P);
    for (const double x : pi) {
      if (x < 0.0) return false;  // unphysical operating point
    }
    const auto parts = mixed.space().split(pi);
    des::PipelineOptions desOpts;
    desOpts.generations = opts.generations;
    desOpts.serviceJitterCov = opts.serviceJitterCov;
    desOpts.faults = injectorFor(direction);
    const des::PipelineResult run = des::simulatePipeline(
        ref.system, parts[0], parts[1], ref.qos.minThroughput, desOpts);
    if (opts.live != nullptr) {
      opts.live->classifications.fetch_add(1, std::memory_order_relaxed);
      opts.live->retries.fetch_add(run.faults.retries,
                                   std::memory_order_relaxed);
      opts.live->droppedMessages.fetch_add(run.faults.droppedMessages,
                                           std::memory_order_relaxed);
    }
    return run.satisfies(ref.qos.maxLatencySeconds);
  };

  // Nominal run: scenario 0 at the unperturbed operating point. This is
  // the same evaluation the estimator's origin check performs, so when
  // it fails the degraded radius is zero by definition — report that
  // instead of tripping the estimator's domain_error.
  {
    const la::Vector pOrig = map.toP(mixed.space().concatenatedOriginal());
    const la::Vector pi0 = map.fromP(pOrig);
    const auto parts = mixed.space().split(pi0);
    des::PipelineOptions desOpts;
    desOpts.generations = opts.generations;
    desOpts.serviceJitterCov = opts.serviceJitterCov;
    desOpts.faults = injectorFor(0);
    out.nominal = des::simulatePipeline(ref.system, parts[0], parts[1],
                                        ref.qos.minThroughput, desOpts);
    out.nominalSatisfies = out.nominal.satisfies(ref.qos.maxLatencySeconds);
    if (!out.nominalSatisfies) {
      out.degraded.radius = 0.0;
      out.degraded.ci = stats::Interval{0.0, 0.0};
      return out;
    }
    const validate::EstimatorOptions est =
        desEstimatorOptions(estimator, opts.explicitDirections);
    out.degraded = validate::estimateEmpiricalRadius(safe, pOrig, est, pool);
  }
  return out;
}

}  // namespace fepia::fault
