// Degraded-mode robustness radius.
//
// The analytic rho of the paper measures distance to the QoS boundary
// under *continuous* perturbations (execution-time drift, message-size
// growth). This module measures the same distance while *discrete*
// perturbation kinds — the fault scenarios of fault::FaultPlan — are
// simultaneously active in the DES: the Monte-Carlo validator samples
// the joint (continuous perturbation x fault scenario) space by keying a
// deterministic scenario off every probe-direction index, and the
// smallest boundary distance found is the degraded-mode empirical
// radius. With no scenarios the construction collapses, by sharing the
// code path, to the plain DES cross-check of `fepia_cli validate --des`
// — bit-for-bit, which the determinism tests assert.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "des/pipeline.hpp"
#include "fault/plan.hpp"
#include "hiperd/factory.hpp"
#include "parallel/thread_pool.hpp"
#include "validate/empirical.hpp"

namespace fepia::fault {

/// Live degradation totals across every DES classification so far, for
/// the telemetry sampler to watch while an estimation runs. All relaxed
/// atomics; the estimator only ever adds to them — fault retry/drop
/// *rates* are derived by the sampler from successive snapshots.
struct LiveFaultStats {
  std::atomic<std::uint64_t> classifications{0};  ///< DES runs completed
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> droppedMessages{0};
};

/// Knobs of the degraded estimate beyond the estimator's own options.
struct DegradedOptions {
  /// Data-set generations per DES classification (the validate --des
  /// setting; small keeps thousands of classifications viable).
  std::size_t generations = 200;
  /// True when the caller chose EstimatorOptions::directions explicitly
  /// (the --samples flag); false applies the --des default of 64.
  bool explicitDirections = false;
  /// Multiplicative per-job service-time jitter CoV passed through to
  /// des::PipelineOptions (0 keeps every classification deterministic
  /// from its operating point alone — the STOCH sweep's knob).
  double serviceJitterCov = 0.0;
  /// Optional telemetry sink: each DES classification adds its fault
  /// counters here as it completes (relaxed adds on the worker threads;
  /// never read back, so results are unaffected).
  LiveFaultStats* live = nullptr;
};

/// Applies the DES-specific estimator tuning of `validate --des` to
/// `base`: 64 directions unless explicitly chosen, chunk size capped at
/// 8, horizon 4 (relative coordinates; operating points go unphysical
/// beyond 1), 12 polish sweeps (each classification is a full DES run).
[[nodiscard]] validate::EstimatorOptions desEstimatorOptions(
    validate::EstimatorOptions base, bool explicitDirections);

/// Result of a degraded-mode estimation.
struct DegradedEstimate {
  /// Analytic rho of the fault-free problem (normalized-by-original
  /// merge scheme) — the paper's radius, for comparison.
  double analyticRho = 0.0;
  /// Name of the critical feature realising the analytic rho.
  std::string criticalFeature;
  /// Empirical radius under active fault scenarios. Zero (with an empty
  /// sample) when the scenarios already break QoS at the operating
  /// point; equal to the plain --des estimate when no scenario injects
  /// anything.
  validate::EmpiricalEstimate degraded;
  /// One simulation of scenario 0 (or the fault-free pipeline when
  /// `scenarios` is empty) at the unperturbed operating point.
  des::PipelineResult nominal;
  /// nominal.satisfies(qos.maxLatencySeconds).
  bool nominalSatisfies = false;
};

/// Estimates the degraded-mode empirical robustness radius of `ref`
/// under `scenarios`. Probe direction i runs against scenario
/// i % scenarios.size() (every evaluation along one ray sees the same
/// scenario); an empty scenario list — or one whose every plan is
/// empty — reproduces the fault-free DES classification exactly.
/// Deterministic for fixed options at any thread count. Scenario plans
/// are validated against the system (throws std::invalid_argument).
[[nodiscard]] DegradedEstimate estimateDegradedRadius(
    const hiperd::ReferenceSystem& ref, const std::vector<FaultPlan>& scenarios,
    const validate::EstimatorOptions& estimator, const DegradedOptions& opts = {},
    parallel::ThreadPool* pool = nullptr);

}  // namespace fepia::fault
