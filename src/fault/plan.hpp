// Fault plans: discrete perturbation kinds for the DES pipeline.
//
// The paper's premise is robustness against *multiple kinds* of
// perturbations, and its FePIA substrate (Ali et al., TPDS 2004)
// explicitly lists machine failures next to execution-time drift as a
// kind a general approach must cover. A FaultPlan is a deterministic
// description of such discrete perturbations — machine crashes, bounded
// slowdown windows, message loss — that des::simulatePipeline injects
// via the des::FaultInjector hooks while the graceful-degradation
// machinery (failover to a backup after a detection timeout, capped
// exponential retry backoff) tries to keep QoS intact.
//
// Determinism contract: a plan is data, not a process. Crash times and
// slowdown windows are fixed numbers; message-loss decisions are a
// stateless hash of (seed, message, generation, attempt) on the
// repo-wide splitmix/xoshiro substream discipline — so a fault-injected
// run is bit-reproducible at any thread count and independent of event
// interleaving.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "des/pipeline.hpp"
#include "hiperd/system.hpp"

namespace fepia::fault {

/// Permanent loss of one machine at a point in time. Work stranded on
/// the machine fails over to `backup` (when set) once the failure is
/// detected.
struct MachineCrash {
  std::size_t machine = 0;
  double atSeconds = 0.0;
  /// Failover target; nullopt leaves stranded jobs unrecoverable.
  std::optional<std::size_t> backup;
};

/// Transient slowdown: service times on the target are multiplied by
/// `factor` for jobs starting within [fromSeconds, toSeconds).
/// Overlapping windows on the same target compound multiplicatively.
struct Slowdown {
  enum class Target { Machine, Link };
  Target target = Target::Machine;
  std::size_t index = 0;
  double fromSeconds = 0.0;
  double toSeconds = 0.0;
  double factor = 1.0;  ///< > 1 degrades; (0, 1) would speed up
};

/// Per-attempt message loss on one link. Lost transfers still occupy
/// the link (the bytes were sent; the loss surfaces at the receiver),
/// then retry under the plan's RetryPolicy.
struct MessageLoss {
  std::size_t link = 0;
  double probability = 0.0;  ///< in [0, 1]
};

/// Degradation-handling knobs shared by every fault in a plan.
struct RetryPolicy {
  /// Delay between a job hitting a crashed machine and its re-dispatch
  /// to the backup.
  double detectionTimeoutSeconds = 0.05;
  /// Backoff before retransmission n is initial * factor^n, capped.
  double initialBackoffSeconds = 0.01;
  double backoffFactor = 2.0;
  double maxBackoffSeconds = 0.5;
  /// Retransmissions allowed per message-generation before the transfer
  /// is dropped for good.
  std::size_t maxRetries = 8;
};

/// A complete fault scenario for one simulation run.
struct FaultPlan {
  std::vector<MachineCrash> crashes;
  std::vector<Slowdown> slowdowns;
  std::vector<MessageLoss> losses;
  RetryPolicy policy;
  /// Seed of the message-loss substream (only consulted when a loss
  /// entry has positive probability).
  std::uint64_t lossSeed = 0xFA01B5EEDull;

  /// True when the plan injects nothing (no crashes, slowdowns or
  /// losses). An empty plan must leave the simulation bit-identical to
  /// a run without any injector.
  [[nodiscard]] bool empty() const noexcept {
    return crashes.empty() && slowdowns.empty() && losses.empty();
  }

  /// Number of injected fault events — the size term of the degraded
  /// radius backend's cost model (each event adds failover/retry work to
  /// every DES classification).
  [[nodiscard]] std::size_t eventCount() const noexcept {
    return crashes.size() + slowdowns.size() + losses.size();
  }

  /// Validates every index against `sys` and every number against its
  /// domain (finite nonnegative times, probability in [0, 1], positive
  /// finite factors, backup != machine). Throws std::invalid_argument.
  void validateAgainst(const hiperd::System& sys) const;
};

/// Machines that crash at any point under the plan, sorted ascending,
/// deduplicated — the bridge to the discrete multi-failure analysis of
/// alloc/failure (recoverFromFailures etc.).
[[nodiscard]] std::vector<std::size_t> crashedMachines(const FaultPlan& plan);

/// des::FaultInjector implementation over a FaultPlan. Holds references
/// to neither the plan nor the system after construction; cheap O(1)
/// hooks (loss probability and crash data are precomputed per entity).
class PlanInjector final : public des::FaultInjector {
 public:
  /// Validates the plan against `sys` (throws std::invalid_argument).
  PlanInjector(const FaultPlan& plan, const hiperd::System& sys);

  [[nodiscard]] double crashTime(std::size_t machine) const override;
  [[nodiscard]] std::optional<std::size_t> backupFor(
      std::size_t machine) const override;
  [[nodiscard]] double detectionTimeout() const override;
  [[nodiscard]] double computeFactor(std::size_t machine,
                                     double t) const override;
  [[nodiscard]] double transferFactor(std::size_t link,
                                      double t) const override;
  [[nodiscard]] bool messageLost(std::size_t k, std::size_t g,
                                 std::size_t attempt) const override;
  [[nodiscard]] double retryBackoff(std::size_t attempt) const override;
  [[nodiscard]] std::size_t maxRetries() const override;

 private:
  struct Window {
    double from, to, factor;
  };
  std::vector<double> crashAt_;                       ///< per machine; +inf = never
  std::vector<std::optional<std::size_t>> backup_;    ///< per machine
  std::vector<std::vector<Window>> machineWindows_;   ///< per machine
  std::vector<std::vector<Window>> linkWindows_;      ///< per link
  std::vector<double> lossProb_;                      ///< per message
  RetryPolicy policy_;
  std::uint64_t lossSeed_ = 0;
};

/// Knobs for samplePlan.
struct SamplerOptions {
  std::size_t crashes = 1;
  std::size_t slowdowns = 1;
  std::size_t losses = 1;
  /// Crash instants and slowdown windows are drawn within [0, horizon).
  double horizonSeconds = 20.0;
  double maxSlowdownFactor = 3.0;
  double maxLossProbability = 0.2;
};

/// Draws a random (but seed-deterministic) plan against `sys`: crash
/// machines with round-robin backups, slowdown windows alternating
/// between machines and links, and per-link loss rates. Entries that
/// the topology cannot support (a slowdown on a system without links, a
/// second machine to back up to) are skipped, so the result is always
/// valid against `sys`.
[[nodiscard]] FaultPlan samplePlan(const hiperd::System& sys,
                                   const SamplerOptions& opts,
                                   std::uint64_t seed);

}  // namespace fepia::fault
