#include "fault/plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "rng/xoshiro.hpp"

namespace fepia::fault {
namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("fault::FaultPlan: " + what);
}

void requireFinite(double v, const char* what) {
  if (!std::isfinite(v)) fail(std::string(what) + " must be finite");
}

/// Uniform double in [0, 1) from the top 53 bits of a 64-bit draw.
double toUnit(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultPlan::validateAgainst(const hiperd::System& sys) const {
  const std::size_t m = sys.machineCount();
  const std::size_t l = sys.linkCount();
  for (const MachineCrash& c : crashes) {
    if (c.machine >= m) fail("crash machine index out of range");
    requireFinite(c.atSeconds, "crash time");
    if (c.atSeconds < 0.0) fail("crash time must be >= 0");
    if (c.backup.has_value()) {
      if (*c.backup >= m) fail("crash backup index out of range");
      if (*c.backup == c.machine) fail("crash backup equals crashed machine");
    }
  }
  for (const Slowdown& s : slowdowns) {
    const std::size_t bound = s.target == Slowdown::Target::Machine ? m : l;
    if (s.index >= bound) fail("slowdown target index out of range");
    requireFinite(s.fromSeconds, "slowdown window start");
    requireFinite(s.toSeconds, "slowdown window end");
    if (s.fromSeconds < 0.0) fail("slowdown window start must be >= 0");
    if (s.toSeconds < s.fromSeconds) fail("slowdown window ends before it starts");
    requireFinite(s.factor, "slowdown factor");
    if (s.factor <= 0.0) fail("slowdown factor must be > 0");
  }
  for (const MessageLoss& ml : losses) {
    if (ml.link >= l) fail("loss link index out of range");
    if (!(ml.probability >= 0.0 && ml.probability <= 1.0)) {
      fail("loss probability must be in [0, 1]");
    }
  }
  requireFinite(policy.detectionTimeoutSeconds, "detection timeout");
  if (policy.detectionTimeoutSeconds < 0.0) fail("detection timeout must be >= 0");
  requireFinite(policy.initialBackoffSeconds, "initial backoff");
  if (policy.initialBackoffSeconds < 0.0) fail("initial backoff must be >= 0");
  requireFinite(policy.backoffFactor, "backoff factor");
  if (policy.backoffFactor < 1.0) fail("backoff factor must be >= 1");
  requireFinite(policy.maxBackoffSeconds, "backoff cap");
  if (policy.maxBackoffSeconds < 0.0) fail("backoff cap must be >= 0");
}

std::vector<std::size_t> crashedMachines(const FaultPlan& plan) {
  std::vector<std::size_t> out;
  out.reserve(plan.crashes.size());
  for (const MachineCrash& c : plan.crashes) out.push_back(c.machine);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

PlanInjector::PlanInjector(const FaultPlan& plan, const hiperd::System& sys)
    : policy_(plan.policy), lossSeed_(plan.lossSeed) {
  plan.validateAgainst(sys);
  crashAt_.assign(sys.machineCount(), kNever);
  backup_.assign(sys.machineCount(), std::nullopt);
  machineWindows_.assign(sys.machineCount(), {});
  linkWindows_.assign(sys.linkCount(), {});
  lossProb_.assign(sys.messageCount(), 0.0);

  for (const MachineCrash& c : plan.crashes) {
    // The earliest crash of a machine wins; its backup configuration
    // travels with it.
    if (c.atSeconds < crashAt_[c.machine]) {
      crashAt_[c.machine] = c.atSeconds;
      backup_[c.machine] = c.backup;
    }
  }
  for (const Slowdown& s : plan.slowdowns) {
    auto& windows = s.target == Slowdown::Target::Machine
                        ? machineWindows_[s.index]
                        : linkWindows_[s.index];
    windows.push_back(Window{s.fromSeconds, s.toSeconds, s.factor});
  }
  // Loss is configured per link; the hook is queried per message.
  for (const MessageLoss& ml : plan.losses) {
    for (std::size_t k = 0; k < sys.messageCount(); ++k) {
      if (sys.message(k).link == ml.link) {
        // Independent loss processes on one link compose: the attempt
        // survives only when every process spares it.
        lossProb_[k] = 1.0 - (1.0 - lossProb_[k]) * (1.0 - ml.probability);
      }
    }
  }
}

double PlanInjector::crashTime(std::size_t machine) const {
  return crashAt_[machine];
}

std::optional<std::size_t> PlanInjector::backupFor(std::size_t machine) const {
  return backup_[machine];
}

double PlanInjector::detectionTimeout() const {
  return policy_.detectionTimeoutSeconds;
}

double PlanInjector::computeFactor(std::size_t machine, double t) const {
  double f = 1.0;
  for (const Window& w : machineWindows_[machine]) {
    if (t >= w.from && t < w.to) f *= w.factor;
  }
  return f;
}

double PlanInjector::transferFactor(std::size_t link, double t) const {
  double f = 1.0;
  for (const Window& w : linkWindows_[link]) {
    if (t >= w.from && t < w.to) f *= w.factor;
  }
  return f;
}

bool PlanInjector::messageLost(std::size_t k, std::size_t g,
                               std::size_t attempt) const {
  const double p = lossProb_[k];
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // Stateless hash of (seed, k, g, attempt): the draw is a pure function
  // of the transfer's identity, independent of event interleaving, so
  // fault-injected runs stay bit-identical at any thread count.
  rng::SplitMix64 mix(lossSeed_ ^
                      (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(k) + 1)));
  std::uint64_t h = mix.next();
  rng::SplitMix64 mix2(h ^
                       (0xBF58476D1CE4E5B9ull * (static_cast<std::uint64_t>(g) + 1)));
  h = mix2.next();
  rng::SplitMix64 mix3(
      h ^ (0x94D049BB133111EBull * (static_cast<std::uint64_t>(attempt) + 1)));
  h = mix3.next();
  return toUnit(h) < p;
}

double PlanInjector::retryBackoff(std::size_t attempt) const {
  double b = policy_.initialBackoffSeconds;
  for (std::size_t i = 0; i < attempt; ++i) {
    b *= policy_.backoffFactor;
    if (b >= policy_.maxBackoffSeconds) break;
  }
  return std::min(b, policy_.maxBackoffSeconds);
}

std::size_t PlanInjector::maxRetries() const { return policy_.maxRetries; }

FaultPlan samplePlan(const hiperd::System& sys, const SamplerOptions& opts,
                     std::uint64_t seed) {
  if (!(opts.horizonSeconds > 0.0) || !std::isfinite(opts.horizonSeconds)) {
    throw std::invalid_argument("fault::samplePlan: bad horizon");
  }
  if (!(opts.maxSlowdownFactor >= 1.0) || !std::isfinite(opts.maxSlowdownFactor)) {
    throw std::invalid_argument("fault::samplePlan: bad slowdown factor bound");
  }
  if (!(opts.maxLossProbability >= 0.0 && opts.maxLossProbability <= 1.0)) {
    throw std::invalid_argument("fault::samplePlan: bad loss probability bound");
  }
  rng::Xoshiro256StarStar gen(seed);
  const auto unit = [&gen]() { return toUnit(gen()); };
  const auto pick = [&gen](std::size_t n) {
    return static_cast<std::size_t>(gen() % n);
  };

  FaultPlan plan;
  plan.lossSeed = rng::SplitMix64(seed ^ 0xFA01B5EEDull).next();

  const std::size_t m = sys.machineCount();
  const std::size_t l = sys.linkCount();
  if (m > 0) {
    for (std::size_t i = 0; i < opts.crashes; ++i) {
      MachineCrash c;
      c.machine = pick(m);
      // Crashes land in the middle half of the horizon so the pipeline
      // is warmed up but still has work in flight.
      c.atSeconds = opts.horizonSeconds * (0.25 + 0.5 * unit());
      if (m > 1) {
        c.backup = (c.machine + 1 + pick(m - 1)) % m;
        if (*c.backup == c.machine) c.backup = (c.machine + 1) % m;
      }
      plan.crashes.push_back(c);
    }
  }
  for (std::size_t i = 0; i < opts.slowdowns; ++i) {
    Slowdown s;
    const bool onLink = (i % 2 == 1) && l > 0;
    s.target = onLink ? Slowdown::Target::Link : Slowdown::Target::Machine;
    const std::size_t bound = onLink ? l : m;
    if (bound == 0) continue;
    s.index = pick(bound);
    s.fromSeconds = opts.horizonSeconds * unit() * 0.75;
    s.toSeconds = s.fromSeconds + opts.horizonSeconds * (0.05 + 0.2 * unit());
    s.factor = 1.0 + (opts.maxSlowdownFactor - 1.0) * unit();
    plan.slowdowns.push_back(s);
  }
  if (l > 0) {
    for (std::size_t i = 0; i < opts.losses; ++i) {
      MessageLoss ml;
      ml.link = pick(l);
      ml.probability = opts.maxLossProbability * unit();
      plan.losses.push_back(ml);
    }
  }
  return plan;
}

}  // namespace fepia::fault
