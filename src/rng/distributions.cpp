#include "rng/distributions.hpp"

#include <cmath>
#include <stdexcept>

namespace fepia::rng {

double uniform01(Xoshiro256StarStar& g) noexcept {
  // Top 53 bits -> [0,1) double grid.
  return static_cast<double>(g() >> 11) * 0x1.0p-53;
}

double uniform(Xoshiro256StarStar& g, double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform01(g);
}

std::size_t uniformIndex(Xoshiro256StarStar& g, std::size_t lo, std::size_t hi) {
  if (lo > hi) throw std::invalid_argument("rng::uniformIndex: lo > hi");
  const std::size_t span = hi - lo + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v;
  do {
    v = g();
  } while (v >= limit);
  return lo + static_cast<std::size_t>(v % span);
}

double standardNormal(Xoshiro256StarStar& g) noexcept {
  // Marsaglia polar method; one of the pair is discarded for simplicity
  // (statelessness keeps substreams reproducible).
  double u, v, s;
  do {
    u = 2.0 * uniform01(g) - 1.0;
    v = 2.0 * uniform01(g) - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

double normal(Xoshiro256StarStar& g, double mean, double sd) {
  if (sd < 0.0) throw std::invalid_argument("rng::normal: sd < 0");
  return mean + sd * standardNormal(g);
}

double exponential(Xoshiro256StarStar& g, double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("rng::exponential: lambda <= 0");
  // 1 - U avoids log(0).
  return -std::log1p(-uniform01(g)) / lambda;
}

double gamma(Xoshiro256StarStar& g, double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("rng::gamma: shape and scale must be > 0");
  }
  if (shape < 1.0) {
    // Boost: X ~ Gamma(k+1), U^(1/k) correction.
    const double u = uniform01(g);
    return gamma(g, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = standardNormal(g);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform01(g);
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double gammaMeanCov(Xoshiro256StarStar& g, double mean, double cov) {
  if (mean <= 0.0 || cov <= 0.0) {
    throw std::invalid_argument("rng::gammaMeanCov: mean and cov must be > 0");
  }
  const double shape = 1.0 / (cov * cov);
  const double scale = mean * cov * cov;
  return gamma(g, shape, scale);
}

std::vector<double> unitSphere(Xoshiro256StarStar& g, std::size_t n) {
  if (n == 0) throw std::invalid_argument("rng::unitSphere: n == 0");
  std::vector<double> x(n);
  double norm = 0.0;
  do {
    norm = 0.0;
    for (double& xi : x) {
      xi = standardNormal(g);
      norm += xi * xi;
    }
  } while (norm == 0.0);
  norm = std::sqrt(norm);
  for (double& xi : x) xi /= norm;
  return x;
}

std::vector<double> unitSphereNonnegative(Xoshiro256StarStar& g, std::size_t n) {
  std::vector<double> x = unitSphere(g, n);
  for (double& xi : x) xi = std::abs(xi);
  return x;
}

}  // namespace fepia::rng
