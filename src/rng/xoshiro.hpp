// Deterministic, seedable pseudo-random generator for workloads and solvers.
//
// Every stochastic component of the library (ETC generation, multistart
// solver restarts, DES perturbation directions) takes an explicit
// generator so experiments are exactly reproducible from a seed printed
// in the bench output. xoshiro256** is small, fast, and passes BigCrush;
// splitmix64 expands a single 64-bit seed into the full state.
#pragma once

#include <array>
#include <cstdint>

namespace fepia::rng {

/// SplitMix64 — used to seed Xoshiro256StarStar from one 64-bit value and
/// as a cheap stateless mixer for deriving per-stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state via SplitMix64 from `seed`.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next 64-bit value.
  result_type operator()() noexcept;

  /// Jump function: advances the stream by 2^128 steps; used to carve
  /// independent substreams out of one seed.
  void jump() noexcept;

  /// A generator `k` jumps ahead of this one (substream `k`).
  [[nodiscard]] Xoshiro256StarStar substream(unsigned k) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace fepia::rng
