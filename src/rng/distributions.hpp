// Scalar and vector sampling distributions over Xoshiro256StarStar.
//
// Gamma sampling matters most here: the coefficient-of-variation-based
// (CVB) ETC workload generator of the heterogeneous-computing literature
// (used by the paper's baseline [2]) draws task/machine execution times
// from gamma distributions parameterised by a mean and a CoV.
#pragma once

#include <cstddef>
#include <vector>

#include "rng/xoshiro.hpp"

namespace fepia::rng {

/// Uniform double in [0, 1) with 53-bit resolution.
[[nodiscard]] double uniform01(Xoshiro256StarStar& g) noexcept;

/// Uniform double in [lo, hi); throws std::invalid_argument when lo > hi.
[[nodiscard]] double uniform(Xoshiro256StarStar& g, double lo, double hi);

/// Uniform integer in [lo, hi] inclusive; throws when lo > hi.
[[nodiscard]] std::size_t uniformIndex(Xoshiro256StarStar& g, std::size_t lo,
                                       std::size_t hi);

/// Standard normal via the polar (Marsaglia) method.
[[nodiscard]] double standardNormal(Xoshiro256StarStar& g) noexcept;

/// Normal with the given mean and standard deviation (sd >= 0).
[[nodiscard]] double normal(Xoshiro256StarStar& g, double mean, double sd);

/// Exponential with the given rate lambda > 0.
[[nodiscard]] double exponential(Xoshiro256StarStar& g, double lambda);

/// Gamma(shape k > 0, scale theta > 0) via Marsaglia–Tsang squeeze
/// (with the standard boost for k < 1).
[[nodiscard]] double gamma(Xoshiro256StarStar& g, double shape, double scale);

/// Gamma parameterised the way the CVB ETC generator needs it:
/// `mean > 0` and coefficient of variation `cov > 0`
/// (shape = 1/cov², scale = mean·cov²).
[[nodiscard]] double gammaMeanCov(Xoshiro256StarStar& g, double mean, double cov);

/// A point uniformly distributed on the unit sphere in R^n (n >= 1).
/// Used to probe random perturbation directions in the validation DES.
[[nodiscard]] std::vector<double> unitSphere(Xoshiro256StarStar& g, std::size_t n);

/// A point uniform on the *nonnegative* part of the unit sphere (all
/// coordinates >= 0) — perturbation increases only, as in Figure 1 where
/// loads can only grow from the assumed operating point.
[[nodiscard]] std::vector<double> unitSphereNonnegative(Xoshiro256StarStar& g,
                                                        std::size_t n);

}  // namespace fepia::rng
