#include "rng/xoshiro.hpp"

namespace fepia::rng {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // All-zero state is invalid for xoshiro; splitmix cannot produce four
  // consecutive zeros in practice, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ull;
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull,
      0xA9582618E03FC9AAull, 0x39ABDC4529B1661Cull};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (void)(*this)();
    }
  }
  s_ = acc;
}

Xoshiro256StarStar Xoshiro256StarStar::substream(unsigned k) const noexcept {
  Xoshiro256StarStar out = *this;
  for (unsigned i = 0; i <= k; ++i) out.jump();
  return out;
}

}  // namespace fepia::rng
