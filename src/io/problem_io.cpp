#include "io/problem_io.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <locale>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "feature/linear.hpp"
#include "io/parse.hpp"

namespace fepia::io {

namespace {

/// Splits a line into tokens; double-quoted tokens may contain spaces.
/// Throws std::invalid_argument on an unterminated quote.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') break;
    if (line[i] == '"') {
      const std::size_t end = line.find('"', i + 1);
      if (end == std::string::npos) {
        throw std::invalid_argument("unterminated quote");
      }
      out.push_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[end]))) {
        ++end;
      }
      out.push_back(line.substr(i, end - i));
      i = end;
    }
  }
  return out;
}

// Full-token finite parse via the shared io/parse helper: "1.5x" and
// "nan"/"inf" are rejected (unbounded sides are spelled with the
// upper/lower directives, never with a literal inf).
double parseNumber(const std::string& token, std::size_t lineNo) {
  const std::optional<double> v = parseFiniteDouble(token);
  if (!v.has_value()) {
    throw ParseError(lineNo, "expected a finite number, got '" + token + "'");
  }
  return *v;
}

}  // namespace

std::string unitToken(const units::Unit& unit) {
  if (unit == units::Unit::dimensionless()) return "1";
  if (unit == units::Unit::seconds()) return "s";
  if (unit == units::Unit::bytes()) return "B";
  if (unit == units::Unit::objects()) return "obj";
  if (unit == units::Unit::dataSets()) return "ds";
  if (unit == units::Unit::objectsPerDataSet()) return "obj/ds";
  if (unit == units::Unit::dataSetsPerSecond()) return "ds/s";
  if (unit == units::Unit::bytesPerSecond()) return "B/s";
  throw std::invalid_argument("io::unitToken: unit '" + unit.str() +
                              "' has no file notation");
}

units::Unit parseUnitToken(const std::string& token) {
  if (token == "1") return units::Unit::dimensionless();
  if (token == "s") return units::Unit::seconds();
  if (token == "B") return units::Unit::bytes();
  if (token == "obj") return units::Unit::objects();
  if (token == "ds") return units::Unit::dataSets();
  if (token == "obj/ds") return units::Unit::objectsPerDataSet();
  if (token == "ds/s") return units::Unit::dataSetsPerSecond();
  if (token == "B/s") return units::Unit::bytesPerSecond();
  throw std::invalid_argument("io::parseUnitToken: unknown unit '" + token +
                              "'");
}

radius::FepiaProblem parseProblem(std::istream& in) {
  radius::FepiaProblem problem;

  // Features must be added after every kind; buffer them.
  struct PendingFeature {
    std::string name;
    feature::FeatureBounds bounds;
    la::Vector coeffs;
    double offset;
    bool relUpper;
    double relBeta;
    std::size_t lineNo;
  };
  std::vector<PendingFeature> pending;
  std::set<std::string> kindNames;
  std::set<std::string> featureNames;

  std::string line;
  std::size_t lineNo = 0;
  std::size_t totalDim = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    std::vector<std::string> tokens;
    try {
      tokens = tokenize(line);
    } catch (const std::invalid_argument& e) {
      throw ParseError(lineNo, e.what());
    }
    if (tokens.empty()) continue;

    if (tokens[0] == "kind") {
      if (!pending.empty()) {
        throw ParseError(lineNo, "all 'kind' lines must precede 'feature' lines");
      }
      if (tokens.size() < 4) {
        throw ParseError(lineNo, "kind needs: kind <name> <unit> <orig...>");
      }
      if (!kindNames.insert(tokens[1]).second) {
        throw ParseError(lineNo, "duplicate kind '" + tokens[1] + "'");
      }
      units::Unit unit;
      try {
        unit = parseUnitToken(tokens[2]);
      } catch (const std::invalid_argument& e) {
        throw ParseError(lineNo, e.what());
      }
      la::Vector orig(tokens.size() - 3);
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        orig[i - 3] = parseNumber(tokens[i], lineNo);
      }
      totalDim += orig.size();
      problem.addPerturbation(
          perturb::PerturbationParameter(tokens[1], unit, std::move(orig)));
      continue;
    }

    if (tokens[0] == "feature") {
      if (tokens.size() < 3) {
        throw ParseError(lineNo, "feature needs: feature <name> <bound> ...");
      }
      std::size_t pos = 1;
      const std::string name = tokens[pos++];
      if (!featureNames.insert(name).second) {
        throw ParseError(lineNo, "duplicate feature '" + name + "'");
      }

      // Bound spec.
      const std::string boundKind = tokens[pos++];
      double betaMin = -std::numeric_limits<double>::infinity();
      double betaMax = std::numeric_limits<double>::infinity();
      bool relUpper = false;
      double relBeta = 0.0;
      if (boundKind == "upper") {
        if (pos >= tokens.size()) throw ParseError(lineNo, "upper needs a value");
        betaMax = parseNumber(tokens[pos++], lineNo);
      } else if (boundKind == "lower") {
        if (pos >= tokens.size()) throw ParseError(lineNo, "lower needs a value");
        betaMin = parseNumber(tokens[pos++], lineNo);
      } else if (boundKind == "between") {
        if (pos + 1 >= tokens.size()) {
          throw ParseError(lineNo, "between needs two values");
        }
        betaMin = parseNumber(tokens[pos++], lineNo);
        betaMax = parseNumber(tokens[pos++], lineNo);
      } else if (boundKind == "relupper") {
        if (pos >= tokens.size()) {
          throw ParseError(lineNo, "relupper needs a value");
        }
        relUpper = true;
        relBeta = parseNumber(tokens[pos++], lineNo);
      } else {
        throw ParseError(lineNo, "unknown bound kind '" + boundKind +
                                     "' (upper|lower|between|relupper)");
      }

      // Coefficients.
      if (pos >= tokens.size() || tokens[pos] != "coeff") {
        throw ParseError(lineNo, "expected 'coeff' after the bound");
      }
      ++pos;
      std::vector<double> coeffs;
      while (pos < tokens.size() && tokens[pos] != "offset") {
        coeffs.push_back(parseNumber(tokens[pos++], lineNo));
      }
      double offset = 0.0;
      if (pos < tokens.size() && tokens[pos] == "offset") {
        ++pos;
        if (pos >= tokens.size()) throw ParseError(lineNo, "offset needs a value");
        offset = parseNumber(tokens[pos++], lineNo);
      }
      if (pos != tokens.size()) {
        throw ParseError(lineNo, "unexpected trailing tokens");
      }
      if (coeffs.empty()) {
        throw ParseError(lineNo, "feature needs at least one coefficient");
      }
      if (betaMin > betaMax) {
        throw ParseError(lineNo, "lower bound exceeds upper bound");
      }
      pending.push_back(PendingFeature{
          name, feature::FeatureBounds(betaMin, betaMax),
          la::Vector{std::vector<double>(coeffs)}, offset, relUpper, relBeta,
          lineNo});
      continue;
    }

    throw ParseError(lineNo, "unknown directive '" + tokens[0] +
                                 "' (expected 'kind' or 'feature')");
  }

  if (totalDim == 0) {
    throw ParseError(lineNo, "no perturbation kinds declared");
  }
  if (pending.empty()) {
    throw ParseError(lineNo, "no features declared");
  }

  const la::Vector orig = problem.space().concatenatedOriginal();
  for (PendingFeature& pf : pending) {
    if (pf.coeffs.size() != totalDim) {
      throw ParseError(pf.lineNo,
                       "feature '" + pf.name + "' has " +
                           std::to_string(pf.coeffs.size()) +
                           " coefficients, but the kinds total " +
                           std::to_string(totalDim) + " elements");
    }
    auto lin = std::make_shared<feature::LinearFeature>(
        pf.name, std::move(pf.coeffs), pf.offset);
    feature::FeatureBounds bounds = pf.bounds;
    if (pf.relUpper) {
      if (pf.relBeta <= 1.0) {
        throw ParseError(pf.lineNo, "relupper beta must exceed 1");
      }
      bounds = feature::FeatureBounds::relativeUpper(lin->evaluate(orig),
                                                     pf.relBeta);
    }
    problem.addFeature(std::move(lin), bounds);
  }
  return problem;
}

radius::FepiaProblem parseProblemString(const std::string& text) {
  std::istringstream in(text);
  return parseProblem(in);
}

radius::FepiaProblem loadProblem(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("io::loadProblem: cannot open '" + path + "'");
  }
  return parseProblem(in);
}

void writeProblem(std::ostream& out, const radius::FepiaProblem& problem) {
  // Problem files are re-parsed by the locale-independent io::parse
  // helpers, so they must be *written* with '.' decimals too — pin the
  // classic locale for the duration and restore the caller's on exit
  // (including the throw path below).
  struct LocaleGuard {
    std::ostream& os;
    std::locale prev;
    LocaleGuard(std::ostream& s) : os(s), prev(s.imbue(std::locale::classic())) {}
    ~LocaleGuard() { os.imbue(prev); }
  } localeGuard(out);

  const auto quoteIfNeeded = [](const std::string& s) {
    return s.find(' ') == std::string::npos ? s : '"' + s + '"';
  };

  out << "# fepia problem file\n";
  const perturb::PerturbationSpace& space = problem.space();
  for (std::size_t j = 0; j < space.kindCount(); ++j) {
    const perturb::PerturbationParameter& p = space.kind(j);
    out << "kind " << quoteIfNeeded(p.name()) << ' ' << unitToken(p.unit());
    for (double v : p.original()) out << ' ' << v;
    out << '\n';
  }
  for (const feature::BoundedFeature& bf : problem.features()) {
    const auto* lin =
        dynamic_cast<const feature::LinearFeature*>(bf.feature.get());
    if (lin == nullptr) {
      throw std::invalid_argument(
          "io::writeProblem: only linear features are serialisable; '" +
          bf.feature->name() + "' is not linear");
    }
    out << "feature " << quoteIfNeeded(lin->name()) << ' ';
    if (bf.bounds.hasMin() && bf.bounds.hasMax()) {
      out << "between " << bf.bounds.betaMin() << ' ' << bf.bounds.betaMax();
    } else if (bf.bounds.hasMax()) {
      out << "upper " << bf.bounds.betaMax();
    } else {
      out << "lower " << bf.bounds.betaMin();
    }
    out << " coeff";
    for (double k : lin->coefficients()) out << ' ' << k;
    if (lin->offset() != 0.0) out << " offset " << lin->offset();
    out << '\n';
  }
}

}  // namespace fepia::io
