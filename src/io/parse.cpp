#include "io/parse.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <clocale>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include <locale.h>  // newlocale/strtod_l (POSIX)

namespace fepia::io {
namespace {

// Numeric parsing must not depend on the process locale: strtod honors
// LC_NUMERIC, so under a comma-decimal locale (de_DE, fr_FR, ...) the
// token "1.5" stops at the '.' and the full-token check rejects every
// problem file and CLI flag — fatal for a resident server embedded in a
// locale-setting host process. std::from_chars always parses the C
// ("classic") grammar, byte-deterministically. The strtod conveniences
// the repo's inputs historically relied on are reproduced explicitly:
// leading whitespace, an optional leading '+', and 0x/0X hexfloats
// (the sweep journal's exact-round-trip format).
//
// from_chars reports ERANGE-style overflow/underflow as
// errc::result_out_of_range without storing a value; for that rare case
// alone we fall back to strtod_l with a process-independent C locale,
// which keeps strtod's historical behavior (overflow → ±HUGE_VAL,
// rejected by the finiteness check; gradual underflow → ±0/denormal,
// accepted).
double strtodCLocale(const char* nptr, char** endptr) {
  static const locale_t cLocale = ::newlocale(LC_ALL_MASK, "C", nullptr);
  if (cLocale != static_cast<locale_t>(nullptr)) {
    return ::strtod_l(nptr, endptr, cLocale);
  }
  return std::strtod(nptr, endptr);  // out of memory: best effort
}

std::optional<double> parseDoubleToken(const std::string& token) noexcept {
  std::size_t i = 0;
  while (i < token.size() &&
         std::isspace(static_cast<unsigned char>(token[i]))) {
    ++i;
  }
  bool negative = false;
  if (i < token.size() && (token[i] == '+' || token[i] == '-')) {
    negative = token[i] == '-';
    ++i;
    // from_chars itself accepts a leading '-', so a second sign here
    // ("+-1", "--1") must be rejected, exactly as strtod does.
    if (i < token.size() && (token[i] == '+' || token[i] == '-')) {
      return std::nullopt;
    }
  }
  std::chars_format fmt = std::chars_format::general;
  if (i + 1 < token.size() && token[i] == '0' &&
      (token[i + 1] == 'x' || token[i + 1] == 'X')) {
    fmt = std::chars_format::hex;
    i += 2;
  }
  const char* first = token.data() + i;
  const char* const last = token.data() + token.size();
  if (first == last) return std::nullopt;

  double v = 0.0;
  const std::from_chars_result r = std::from_chars(first, last, v, fmt);
  if (r.ptr != last) return std::nullopt;
  if (r.ec == std::errc::result_out_of_range) {
    errno = 0;
    char* end = nullptr;
    const double sv = strtodCLocale(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return sv;
  }
  if (r.ec != std::errc()) return std::nullopt;
  return negative ? -v : v;
}

}  // namespace

std::optional<double> parseFiniteDouble(const std::string& token) noexcept {
  if (token.empty()) return std::nullopt;
  const std::optional<double> v = parseDoubleToken(token);
  if (!v.has_value() || !std::isfinite(*v)) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parseUint64(const std::string& token) noexcept {
  if (token.empty()) return std::nullopt;
  // strtoull silently negates "-1"; a leading sign is never a valid
  // count/seed here. Leading whitespace would also be skipped silently.
  const unsigned char first = static_cast<unsigned char>(token.front());
  if (token.front() == '-' || token.front() == '+' || std::isspace(first)) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 0);
  if (end != token.c_str() + token.size()) return std::nullopt;
  if (errno == ERANGE) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<std::uint64_t> parseUint64AtMost(const std::string& token,
                                               std::uint64_t maxValue) noexcept {
  const std::optional<std::uint64_t> v = parseUint64(token);
  if (!v.has_value() || *v > maxValue) return std::nullopt;
  return v;
}

}  // namespace fepia::io
