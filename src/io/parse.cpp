#include "io/parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace fepia::io {

std::optional<double> parseFiniteDouble(const std::string& token) noexcept {
  if (token.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return std::nullopt;
  if (errno == ERANGE && !std::isfinite(v)) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parseUint64(const std::string& token) noexcept {
  if (token.empty()) return std::nullopt;
  // strtoull silently negates "-1"; a leading sign is never a valid
  // count/seed here. Leading whitespace would also be skipped silently.
  const unsigned char first = static_cast<unsigned char>(token.front());
  if (token.front() == '-' || token.front() == '+' || std::isspace(first)) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 0);
  if (end != token.c_str() + token.size()) return std::nullopt;
  if (errno == ERANGE) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<std::uint64_t> parseUint64AtMost(const std::string& token,
                                               std::uint64_t maxValue) noexcept {
  const std::optional<std::uint64_t> v = parseUint64(token);
  if (!v.has_value() || *v > maxValue) return std::nullopt;
  return v;
}

}  // namespace fepia::io
