// Checked numeric parsing shared by the file parsers and the CLI.
//
// std::stod / std::stoull are the wrong tool for user input: they throw
// uncatchable-at-a-distance exceptions on garbage, silently accept
// trailing junk ("1.5x" parses as 1.5), and stod happily returns inf /
// nan. Every token that crosses a trust boundary (problem files, system
// files, command-line flag values) goes through these full-token,
// range-checked helpers instead, so malformed input becomes a one-line
// parse/usage error — never an uncaught exception and never a silently
// truncated value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace fepia::io {

/// Parses `token` as a double. The whole token must be consumed and the
/// value must be finite ("1.5x", "nan", "inf", "" all fail).
[[nodiscard]] std::optional<double> parseFiniteDouble(
    const std::string& token) noexcept;

/// Parses `token` as an unsigned 64-bit integer (decimal, or 0x-prefixed
/// hex). The whole token must be consumed; leading '-' and values that
/// overflow std::uint64_t fail.
[[nodiscard]] std::optional<std::uint64_t> parseUint64(
    const std::string& token) noexcept;

/// parseUint64 additionally range-checked against `maxValue` — for size
/// flags where a fat-fingered 1e18 would be accepted by the type but can
/// only be a mistake.
[[nodiscard]] std::optional<std::uint64_t> parseUint64AtMost(
    const std::string& token, std::uint64_t maxValue) noexcept;

}  // namespace fepia::io
