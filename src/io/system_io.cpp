#include "io/system_io.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "io/parse.hpp"

namespace fepia::io {

namespace {

/// Shared with problem_io: whitespace tokenizer with quoted strings.
std::vector<std::string> tokenizeLine(const std::string& line,
                                      std::size_t lineNo) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') break;
    if (line[i] == '"') {
      const std::size_t end = line.find('"', i + 1);
      if (end == std::string::npos) {
        throw ParseError(lineNo, "unterminated quote");
      }
      out.push_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[end]))) {
        ++end;
      }
      out.push_back(line.substr(i, end - i));
      i = end;
    }
  }
  return out;
}

// Full-token finite parse via the shared io/parse helper: "1.0abc" and
// "nan"/"inf" are rejected — no load, bandwidth, time or size in a
// system file is legitimately non-finite or junk-suffixed.
double number(const std::string& token, std::size_t lineNo) {
  const std::optional<double> v = parseFiniteDouble(token);
  if (!v.has_value()) {
    throw ParseError(lineNo, "expected a finite number, got '" + token + "'");
  }
  return *v;
}

/// Inserts name -> index, rejecting redefinitions: silently overwriting
/// an entity would make later references resolve to the wrong object.
void define(std::map<std::string, std::size_t>& table, const std::string& name,
            std::size_t index, const char* what, std::size_t lineNo) {
  if (!table.emplace(name, index).second) {
    throw ParseError(lineNo,
                     std::string("duplicate ") + what + " '" + name + "'");
  }
}

std::size_t lookup(const std::map<std::string, std::size_t>& table,
                   const std::string& name, const char* what,
                   std::size_t lineNo) {
  const auto it = table.find(name);
  if (it == table.end()) {
    throw ParseError(lineNo,
                     std::string("unknown ") + what + " '" + name + "'");
  }
  return it->second;
}

}  // namespace

hiperd::ReferenceSystem parseSystem(std::istream& in) {
  hiperd::ReferenceSystem ref;
  std::map<std::string, std::size_t> sensors, machines, links, apps, messages,
      paths;
  bool haveQos = false;

  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::vector<std::string> t = tokenizeLine(line, lineNo);
    if (t.empty()) continue;
    const std::string& kw = t[0];

    try {
      if (kw == "sensor") {
        if (t.size() != 3) throw ParseError(lineNo, "sensor <name> <load>");
        define(sensors, t[1], ref.system.addSensor({t[1], number(t[2], lineNo)}),
               "sensor", lineNo);
      } else if (kw == "machine") {
        if (t.size() != 2) throw ParseError(lineNo, "machine <name>");
        define(machines, t[1], ref.system.addMachine({t[1]}), "machine",
               lineNo);
      } else if (kw == "link") {
        if (t.size() != 3) throw ParseError(lineNo, "link <name> <bandwidth>");
        define(links, t[1], ref.system.addLink({t[1], number(t[2], lineNo)}),
               "link", lineNo);
      } else if (kw == "app") {
        // app <name> <machine> <base> coeff <...>
        if (t.size() < 5 || t[4] != "coeff") {
          throw ParseError(lineNo,
                           "app <name> <machine> <base-seconds> coeff ...");
        }
        hiperd::Application a;
        a.name = t[1];
        a.machine = lookup(machines, t[2], "machine", lineNo);
        a.baseComputeSeconds = number(t[3], lineNo);
        for (std::size_t i = 5; i < t.size(); ++i) {
          a.loadCoeffSeconds.push_back(number(t[i], lineNo));
        }
        const std::string appName = t[1];
        define(apps, appName, ref.system.addApplication(std::move(a)), "app",
               lineNo);
      } else if (kw == "message") {
        // message <name> <src> <dst> <link> <base-bytes> coeff <...>
        if (t.size() < 7 || t[6] != "coeff") {
          throw ParseError(
              lineNo,
              "message <name> <src-app> <dst-app> <link> <base-bytes> coeff ...");
        }
        hiperd::Message m;
        m.name = t[1];
        m.srcApp = lookup(apps, t[2], "app", lineNo);
        m.dstApp = lookup(apps, t[3], "app", lineNo);
        m.link = lookup(links, t[4], "link", lineNo);
        m.baseBytes = number(t[5], lineNo);
        for (std::size_t i = 7; i < t.size(); ++i) {
          m.loadCoeffBytes.push_back(number(t[i], lineNo));
        }
        const std::string msgName = t[1];
        define(messages, msgName, ref.system.addMessage(std::move(m)),
               "message", lineNo);
      } else if (kw == "path") {
        // path <name> apps <...> messages <...>
        if (t.size() < 4 || t[2] != "apps") {
          throw ParseError(lineNo, "path <name> apps <...> messages <...>");
        }
        hiperd::Path p;
        p.name = t[1];
        std::size_t i = 3;
        while (i < t.size() && t[i] != "messages") {
          p.apps.push_back(lookup(apps, t[i], "app", lineNo));
          ++i;
        }
        if (i < t.size()) {
          ++i;  // skip "messages"
          while (i < t.size()) {
            p.messages.push_back(lookup(messages, t[i], "message", lineNo));
            ++i;
          }
        }
        const std::string pathName = p.name;
        define(paths, pathName, ref.system.addPath(std::move(p)), "path",
               lineNo);
      } else if (kw == "qos") {
        if (t.size() != 3) {
          throw ParseError(lineNo, "qos <min-throughput> <max-latency>");
        }
        if (haveQos) throw ParseError(lineNo, "duplicate 'qos' line");
        ref.qos.minThroughput = number(t[1], lineNo);
        ref.qos.maxLatencySeconds = number(t[2], lineNo);
        if (ref.qos.minThroughput <= 0.0 || ref.qos.maxLatencySeconds <= 0.0) {
          throw ParseError(lineNo, "qos values must be positive");
        }
        haveQos = true;
      } else {
        throw ParseError(lineNo, "unknown directive '" + kw + "'");
      }
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception& e) {
      // Surface System::add* validation with the offending line.
      throw ParseError(lineNo, e.what());
    }
  }

  if (!haveQos) throw ParseError(lineNo, "missing 'qos' line");
  if (ref.system.sensorCount() == 0 || ref.system.applicationCount() == 0) {
    throw ParseError(lineNo, "system needs at least one sensor and one app");
  }
  return ref;
}

hiperd::ReferenceSystem parseSystemString(const std::string& text) {
  std::istringstream in(text);
  return parseSystem(in);
}

hiperd::ReferenceSystem loadSystem(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("io::loadSystem: cannot open '" + path + "'");
  }
  return parseSystem(in);
}

void writeSystem(std::ostream& out, const hiperd::ReferenceSystem& ref) {
  const auto q = [](const std::string& s) {
    return s.find(' ') == std::string::npos ? s : '"' + s + '"';
  };
  const hiperd::System& sys = ref.system;
  out << "# fepia HiPer-D system file\n";
  for (std::size_t i = 0; i < sys.sensorCount(); ++i) {
    out << "sensor " << q(sys.sensor(i).name) << ' ' << sys.sensor(i).load
        << '\n';
  }
  for (std::size_t i = 0; i < sys.machineCount(); ++i) {
    out << "machine " << q(sys.machine(i).name) << '\n';
  }
  for (std::size_t i = 0; i < sys.linkCount(); ++i) {
    out << "link " << q(sys.link(i).name) << ' '
        << sys.link(i).bandwidthBytesPerSec << '\n';
  }
  for (std::size_t i = 0; i < sys.applicationCount(); ++i) {
    const auto& a = sys.application(i);
    out << "app " << q(a.name) << ' ' << q(sys.machine(a.machine).name) << ' '
        << a.baseComputeSeconds << " coeff";
    for (double c : a.loadCoeffSeconds) out << ' ' << c;
    out << '\n';
  }
  for (std::size_t i = 0; i < sys.messageCount(); ++i) {
    const auto& m = sys.message(i);
    out << "message " << q(m.name) << ' '
        << q(sys.application(m.srcApp).name) << ' '
        << q(sys.application(m.dstApp).name) << ' ' << q(sys.link(m.link).name)
        << ' ' << m.baseBytes << " coeff";
    for (double c : m.loadCoeffBytes) out << ' ' << c;
    out << '\n';
  }
  for (std::size_t i = 0; i < sys.pathCount(); ++i) {
    const auto& p = sys.path(i);
    out << "path " << q(p.name) << " apps";
    for (std::size_t a : p.apps) out << ' ' << q(sys.application(a).name);
    out << " messages";
    for (std::size_t m : p.messages) out << ' ' << q(sys.message(m).name);
    out << '\n';
  }
  out << "qos " << ref.qos.minThroughput << ' ' << ref.qos.maxLatencySeconds
      << '\n';
}

}  // namespace fepia::io
