// Plain-text HiPer-D system files: describe a full sensor/application/
// machine/link topology plus its QoS so pipeline robustness analyses can
// be run from the command line (tools/fepia_cli --hiperd).
//
// Format (line-oriented, '#' comments, blank lines ignored; entities are
// referenced by NAME, so declare before use):
//
//   sensor  <name> <load>                       # objects per data set
//   machine <name>
//   link    <name> <bandwidth-bytes-per-sec>
//   app     <name> <machine> <base-seconds> coeff <c_1> ... <c_#sensors>
//   message <name> <src-app> <dst-app> <link> <base-bytes>
//           coeff <c_1> ... <c_#sensors>
//   path    <name> apps <app> ... messages <message> ...
//   qos     <min-throughput-per-sec> <max-latency-seconds>
//
// Exactly one qos line is required. Names may be double-quoted to
// contain spaces. Errors are io::ParseError with a 1-based line number.
#pragma once

#include <iosfwd>
#include <string>

#include "hiperd/factory.hpp"
#include "io/problem_io.hpp"

namespace fepia::io {

/// Parses a system+QoS description from a stream.
[[nodiscard]] hiperd::ReferenceSystem parseSystem(std::istream& in);

/// Parses from a string (convenience for tests).
[[nodiscard]] hiperd::ReferenceSystem parseSystemString(const std::string& text);

/// Loads from a file; throws std::runtime_error when unreadable.
[[nodiscard]] hiperd::ReferenceSystem loadSystem(const std::string& path);

/// Serializes a system+QoS to the same format.
void writeSystem(std::ostream& out, const hiperd::ReferenceSystem& ref);

}  // namespace fepia::io
