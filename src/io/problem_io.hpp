// Plain-text FePIA problem files: parse and serialize a FepiaProblem so
// robustness analyses can be run from the command line (tools/fepia_cli)
// without writing C++.
//
// Format (line-oriented, '#' comments, blank lines ignored):
//
//   # one 'kind' line per perturbation parameter, in order
//   kind <name> <unit> <orig_1> <orig_2> ...
//
//   # one 'feature' line per bounded linear feature, over the
//   # concatenation of all kinds in declaration order
//   feature <name> <bound> coeff <k_1> ... <k_n> [offset <c>]
//
// where
//   <name>  is a bare word or a double-quoted string ("end-to-end delay");
//   <unit>  is one of: 1 (dimensionless), s, B, obj, ds, obj/ds, ds/s, B/s;
//   <bound> is one of:
//             upper <beta_max>
//             lower <beta_min>
//             between <beta_min> <beta_max>
//             relupper <beta>        (beta_max = beta x feature(orig), beta > 1)
//
// Only linear features are expressible in the file format (the paper's
// analytical setting); richer features remain a C++ API affair.
//
// Errors are reported as io::ParseError with a 1-based line number.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "radius/fepia.hpp"

namespace fepia::io {

/// Parse failure with location information.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses a problem from a stream. Throws ParseError on malformed input
/// and the usual library exceptions on semantically invalid problems
/// (e.g. a feature whose coefficient count mismatches the kinds).
[[nodiscard]] radius::FepiaProblem parseProblem(std::istream& in);

/// Parses a problem from a string (convenience for tests).
[[nodiscard]] radius::FepiaProblem parseProblemString(const std::string& text);

/// Parses a problem from a file; throws std::runtime_error when the file
/// cannot be opened.
[[nodiscard]] radius::FepiaProblem loadProblem(const std::string& path);

/// Serializes a problem to the same format. Only linear features are
/// representable; throws std::invalid_argument when the problem contains
/// any other feature type.
void writeProblem(std::ostream& out, const radius::FepiaProblem& problem);

/// Renders a unit in file-format notation ("s", "B", "obj/ds", "1", ...).
/// Throws std::invalid_argument for units outside the file vocabulary.
[[nodiscard]] std::string unitToken(const units::Unit& unit);

/// Parses a file-format unit token; throws std::invalid_argument.
[[nodiscard]] units::Unit parseUnitToken(const std::string& token);

}  // namespace fepia::io
