#include "opt/scalar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fepia::opt {

std::optional<std::pair<double, double>> bracketRoot(const ScalarFn& f,
                                                     double t0, double tMax,
                                                     double factor) {
  if (t0 < 0.0 || factor <= 1.0 || tMax <= t0) {
    throw std::invalid_argument("opt::bracketRoot: bad search parameters");
  }
  double a = t0;
  double fa = f(a);
  if (!std::isfinite(fa)) return std::nullopt;  // origin outside the domain
  if (fa == 0.0) return std::make_pair(a, a);

  // When expansion steps onto a point where f is undefined (NaN/inf —
  // the edge of the field's domain, e.g. a pole of a bandwidth
  // degradation feature), bisect toward the edge from the last finite
  // point: a root may hide arbitrarily close to it (f typically blows up
  // there, so the sign flips at finite evaluable points).
  const auto probeTowardEdge = [&](double aGood, double faGood,
                                   double bBad) -> std::optional<std::pair<double, double>> {
    for (int it = 0; it < 80; ++it) {
      const double mid = 0.5 * (aGood + bBad);
      if (mid == aGood || mid == bBad) break;
      const double fm = f(mid);
      if (!std::isfinite(fm)) {
        bBad = mid;
        continue;
      }
      if (fm == 0.0) return std::make_pair(mid, mid);
      if ((faGood < 0.0) != (fm < 0.0)) return std::make_pair(aGood, mid);
      aGood = mid;
      faGood = fm;
    }
    return std::nullopt;
  };

  double b = t0 == 0.0 ? std::min(1.0, tMax) : std::min(t0 * factor, tMax);
  for (;;) {
    const double fb = f(b);
    if (!std::isfinite(fb)) return probeTowardEdge(a, fa, b);
    if (fb == 0.0) return std::make_pair(b, b);
    if ((fa < 0.0) != (fb < 0.0)) return std::make_pair(a, b);
    if (b >= tMax) return std::nullopt;
    a = b;
    fa = fb;
    b = std::min(b * factor, tMax);
  }
}

RootResult bisect(const ScalarFn& f, double a, double b, double xtol,
                  int maxIter) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  if ((fa < 0.0) == (fb < 0.0)) {
    throw std::invalid_argument("opt::bisect: interval does not bracket a root");
  }
  RootResult res;
  for (res.iterations = 0; res.iterations < maxIter; ++res.iterations) {
    const double mid = 0.5 * (a + b);
    const double fm = f(mid);
    if (fm == 0.0 || (b - a) / 2.0 < xtol) {
      res.x = mid;
      res.fx = fm;
      res.converged = true;
      return res;
    }
    if ((fa < 0.0) == (fm < 0.0)) {
      a = mid;
      fa = fm;
    } else {
      b = mid;
    }
  }
  res.x = 0.5 * (a + b);
  res.fx = f(res.x);
  res.converged = false;
  return res;
}

RootResult brent(const ScalarFn& f, double a, double b, double xtol,
                 int maxIter) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  if ((fa < 0.0) == (fb < 0.0)) {
    throw std::invalid_argument("opt::brent: interval does not bracket a root");
  }
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  double d = b - a;  // step of the previous iteration
  double e = d;      // step before that
  RootResult res;
  for (res.iterations = 0; res.iterations < maxIter; ++res.iterations) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() *
                           std::abs(b) + 0.5 * xtol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0) {
      res.x = b;
      res.fx = fb;
      res.converged = true;
      return res;
    }
    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Attempt interpolation.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        // Secant.
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        // Inverse quadratic.
        const double qa = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qa * (qa - r) - (b - a) * (r - 1.0));
        q = (qa - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) {
        q = -q;
      } else {
        p = -p;
      }
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += std::abs(d) > tol ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb < 0.0) == (fc < 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  res.x = b;
  res.fx = fb;
  res.converged = false;
  return res;
}

MinResult goldenSection(const ScalarFn& f, double a, double b, double xtol,
                        int maxIter) {
  if (a > b) std::swap(a, b);
  constexpr double kInvPhi = 0.6180339887498949;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  MinResult res;
  for (res.iterations = 0; res.iterations < maxIter; ++res.iterations) {
    if (b - a < xtol) break;
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  res.converged = b - a < xtol;
  res.x = 0.5 * (a + b);
  res.fx = f(res.x);
  return res;
}

}  // namespace fepia::opt
