// One-dimensional root finding and minimisation.
//
// The ray-shooting boundary probe reduces "where does the ray from
// pi_orig in direction d cross the boundary f(pi) = beta?" to a scalar
// root problem, solved here with bracketing + Brent's method.
#pragma once

#include <functional>
#include <optional>
#include <utility>

namespace fepia::opt {

using ScalarFn = std::function<double(double)>;

/// Result of a scalar root search.
struct RootResult {
  double x = 0.0;        ///< abscissa of the root
  double fx = 0.0;       ///< residual at `x`
  int iterations = 0;    ///< iterations consumed
  bool converged = false;
};

/// Expands an interval [t0, t0·factor, ...] (geometric growth, capped at
/// tMax) until `f` changes sign; returns the bracketing interval or
/// nullopt when no sign change is found.
/// Requires t0 >= 0 and factor > 1.
[[nodiscard]] std::optional<std::pair<double, double>> bracketRoot(
    const ScalarFn& f, double t0, double tMax, double factor = 2.0);

/// Bisection on a bracketing interval [a, b] with f(a)·f(b) <= 0.
/// Throws std::invalid_argument when the interval does not bracket.
[[nodiscard]] RootResult bisect(const ScalarFn& f, double a, double b,
                                double xtol = 1e-12, int maxIter = 200);

/// Brent's method (inverse quadratic interpolation + secant + bisection)
/// on a bracketing interval. Same preconditions as `bisect`.
[[nodiscard]] RootResult brent(const ScalarFn& f, double a, double b,
                               double xtol = 1e-13, int maxIter = 200);

/// Golden-section minimisation of a unimodal function on [a, b].
struct MinResult {
  double x = 0.0;
  double fx = 0.0;
  int iterations = 0;
  bool converged = false;
};
[[nodiscard]] MinResult goldenSection(const ScalarFn& f, double a, double b,
                                      double xtol = 1e-10, int maxIter = 500);

}  // namespace fepia::opt
