#include "opt/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/span.hpp"

namespace fepia::opt {

NelderMeadResult nelderMead(const VectorFn& f, const la::Vector& x0,
                            const NelderMeadOptions& opts) {
  const std::size_t n = x0.size();
  if (n == 0) throw std::invalid_argument("opt::nelderMead: empty start point");
  FEPIA_SPAN("opt.nelder_mead");

  NelderMeadResult res;

  // Initial simplex: x0 plus one perturbed vertex per coordinate.
  std::vector<la::Vector> simplex;
  simplex.reserve(n + 1);
  simplex.push_back(x0);
  for (std::size_t i = 0; i < n; ++i) {
    la::Vector v = x0;
    const double step = opts.initialStep * std::max(1.0, std::abs(x0[i]));
    v[i] += step;
    simplex.push_back(std::move(v));
  }
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    values[i] = f(simplex[i]);
    ++res.evaluations;
  }

  std::vector<std::size_t> order(n + 1);
  for (res.iterations = 0; res.iterations < opts.maxIterations;
       ++res.iterations) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second = order[n - 1];

    if (std::abs(values[worst] - values[best]) <=
        opts.ftol * (std::abs(values[worst]) + std::abs(values[best]) + 1e-30)) {
      res.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    la::Vector centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      centroid += simplex[i];
    }
    centroid *= 1.0 / static_cast<double>(n);

    auto tryPoint = [&](double coeff) {
      la::Vector p = centroid + coeff * (centroid - simplex[worst]);
      const double fp = f(p);
      ++res.evaluations;
      return std::make_pair(std::move(p), fp);
    };

    auto [reflected, fReflected] = tryPoint(opts.reflection);
    if (fReflected < values[best]) {
      auto [expanded, fExpanded] = tryPoint(opts.expansion);
      if (fExpanded < fReflected) {
        simplex[worst] = std::move(expanded);
        values[worst] = fExpanded;
      } else {
        simplex[worst] = std::move(reflected);
        values[worst] = fReflected;
      }
      continue;
    }
    if (fReflected < values[second]) {
      simplex[worst] = std::move(reflected);
      values[worst] = fReflected;
      continue;
    }
    auto [contracted, fContracted] = tryPoint(-opts.contraction);
    if (fContracted < values[worst]) {
      simplex[worst] = std::move(contracted);
      values[worst] = fContracted;
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      simplex[i] = simplex[best] + opts.shrink * (simplex[i] - simplex[best]);
      values[i] = f(simplex[i]);
      ++res.evaluations;
    }
  }

  const auto bestIt = std::min_element(values.begin(), values.end());
  const auto bestIdx = static_cast<std::size_t>(bestIt - values.begin());
  res.x = simplex[bestIdx];
  res.fx = values[bestIdx];
  return res;
}

}  // namespace fepia::opt
