// Derivative-free nearest-boundary solver via quadratic penalty +
// Nelder–Mead.
//
// An alternative to opt::nearestPointOnLevelSet for black-box features
// whose gradients are unavailable or unreliable: minimise
//
//     F_mu(x) = ‖x − x0‖² + mu (g(x) − level)²
//
// with Nelder–Mead, increasing mu geometrically until the constraint
// residual is within tolerance. Slower and less accurate than the
// gradient-based engine (quantified in bench_nonlinear_kinds), but
// requires nothing beyond function values.
#pragma once

#include "la/vector.hpp"
#include "opt/boundary.hpp"
#include "opt/nelder_mead.hpp"

namespace fepia::opt {

/// Options for the penalty solver.
struct PenaltyOptions {
  double initialMu = 1.0;
  double muGrowth = 10.0;
  std::size_t maxOuterIterations = 12;
  double constraintTol = 1e-8;    ///< |g − level| target (relative to scale)
  NelderMeadOptions inner{};      ///< inner minimisation settings
  /// Starting point offset: the simplex starts from x0 nudged toward the
  /// boundary by one ray-shot when possible, else from x0 itself.
  bool warmStartWithRayShot = true;
  double tMax = 1e6;              ///< ray horizon for the warm start
};

/// Solves min ‖x − x0‖ s.t. g(x) = level without gradients.
/// Returns the same BoundaryResult structure as the gradient engine
/// (`converged` = constraint satisfied within tolerance).
[[nodiscard]] BoundaryResult nearestPointOnLevelSetPenalty(
    const FieldFn& g, const la::Vector& x0, double level,
    const PenaltyOptions& opts = {});

}  // namespace fepia::opt
