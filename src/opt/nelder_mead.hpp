// Derivative-free simplex minimisation (Nelder–Mead).
//
// Serves as the fallback engine for performance features that are not
// differentiable (e.g. max-of-paths latency before smoothing) inside the
// penalty formulation of the nearest-boundary problem.
#pragma once

#include <functional>

#include "la/vector.hpp"

namespace fepia::opt {

using VectorFn = std::function<double(const la::Vector&)>;

/// Options for `nelderMead`.
struct NelderMeadOptions {
  double initialStep = 0.5;   ///< initial simplex edge length (scaled per coord)
  double ftol = 1e-12;        ///< spread-of-values convergence threshold
  int maxIterations = 2000;
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

/// Result of a simplex minimisation.
struct NelderMeadResult {
  la::Vector x;          ///< best point found
  double fx = 0.0;       ///< objective at `x`
  int iterations = 0;
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Minimises `f` starting from `x0`.
[[nodiscard]] NelderMeadResult nelderMead(const VectorFn& f, const la::Vector& x0,
                                          const NelderMeadOptions& opts = {});

}  // namespace fepia::opt
