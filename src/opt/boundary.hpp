// Nearest-boundary-point solver.
//
// Step 4 of the FePIA procedure asks for the smallest collective
// variation of the perturbation parameter that reaches the boundary set
// { pi : f(pi) = beta }. For linear and quadratic features this has a
// closed form (src/radius); for everything else this module solves
//
//     min ‖x − x0‖₂   subject to   g(x) = level
//
// by multistart ray shooting (global probe) followed by an alternating
// projection refinement (local polish):
//   A. Newton-project the iterate onto the level set along ∇g;
//   B. slide it toward x0 inside the tangent plane.
// The refinement is the classic closest-point-on-implicit-surface
// iteration; ray shooting supplies starts on distinct boundary branches
// so the global minimum is not missed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "la/vector.hpp"

namespace fepia::opt {

/// Scalar field value g(x).
using FieldFn = std::function<double(const la::Vector&)>;
/// Gradient ∇g(x).
using GradFn = std::function<la::Vector(const la::Vector&)>;

/// A ray/boundary intersection.
struct BoundaryHit {
  la::Vector point;   ///< the intersection x0 + t·direction
  double t = 0.0;     ///< ray parameter (Euclidean distance for unit directions)
};

/// Finds the smallest t in (0, tMax] with g(x0 + t·d) = level by geometric
/// bracketing plus Brent. Returns nullopt when the ray never crosses the
/// level within tMax. `direction` need not be normalised; `t` is in units
/// of ‖direction‖.
[[nodiscard]] std::optional<BoundaryHit> rayShootToLevel(
    const FieldFn& g, const la::Vector& x0, const la::Vector& direction,
    double level, double tMax, double xtol = 1e-12);

/// Options for `nearestPointOnLevelSet`.
struct BoundarySolverOptions {
  std::size_t multistarts = 64;     ///< random probe directions
  bool probeAxes = true;            ///< also probe ±coordinate axes
  std::size_t maxRefineIterations = 200;
  double tol = 1e-10;               ///< convergence: tangential residual / step
  double tMax = 1e6;                ///< ray search horizon (units of ‖x‖)
  std::uint64_t seed = 0x5EEDF00Dull;
  bool nonnegativeDirectionsOnly = false;  ///< restrict probes to growth directions
};

/// Result of the nearest-boundary search.
struct BoundaryResult {
  la::Vector point;                ///< argmin — the paper's pi*(phi_i)
  double distance = 0.0;           ///< ‖point − x0‖₂ — the robustness radius
  bool converged = false;          ///< refinement reached tolerance
  bool foundBoundary = false;      ///< at least one probe crossed the level set
  std::size_t fieldEvaluations = 0;
  std::size_t gradientEvaluations = 0;
};

/// Solves min ‖x − x0‖ s.t. g(x) = level. `grad` may be empty, in which
/// case a central finite-difference gradient is used for the refinement.
[[nodiscard]] BoundaryResult nearestPointOnLevelSet(
    const FieldFn& g, const GradFn& grad, const la::Vector& x0, double level,
    const BoundarySolverOptions& opts = {});

}  // namespace fepia::opt
