#include "opt/boundary.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "ad/gradient.hpp"
#include "obs/span.hpp"
#include "opt/scalar.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace fepia::opt {

std::optional<BoundaryHit> rayShootToLevel(const FieldFn& g,
                                           const la::Vector& x0,
                                           const la::Vector& direction,
                                           double level, double tMax,
                                           double xtol) {
  if (direction.size() != x0.size()) {
    throw std::invalid_argument("opt::rayShootToLevel: dimension mismatch");
  }
  if (la::norm2(direction) == 0.0) {
    throw std::invalid_argument("opt::rayShootToLevel: zero direction");
  }
  const auto h = [&](double t) { return g(x0 + t * direction) - level; };
  const auto bracket = bracketRoot(h, 0.0, tMax);
  if (!bracket) return std::nullopt;
  const auto [a, b] = *bracket;
  if (a == b) return BoundaryHit{x0 + a * direction, a};
  const RootResult root = brent(h, a, b, xtol);
  if (!root.converged) return std::nullopt;
  // A sign change across a pole (e.g. bandwidth-degradation features
  // m/(B·g) near g = 0) brackets a discontinuity, not a root; reject
  // "roots" whose residual did not actually vanish.
  if (std::abs(root.fx) > 1e-6 * std::max(1.0, std::abs(level))) {
    return std::nullopt;
  }
  return BoundaryHit{x0 + root.x * direction, root.x};
}

namespace {

/// One alternating-projection polish from `start` (a point near the level
/// set). Returns the refined point; `converged` reports tolerance reached.
struct RefineOutcome {
  la::Vector point;
  bool converged = false;
};

RefineOutcome refineClosestPoint(const FieldFn& g, const GradFn& grad,
                                 const la::Vector& x0, double level,
                                 const BoundarySolverOptions& opts,
                                 la::Vector start, std::size_t& fieldEvals,
                                 std::size_t& gradEvals) {
  la::Vector x = std::move(start);
  const double scale = std::max(1.0, la::norm2(x0));
  bool converged = false;

  for (std::size_t it = 0; it < opts.maxRefineIterations; ++it) {
    // A. Newton projection onto the level set along the gradient.
    for (int inner = 0; inner < 8; ++inner) {
      const double gv = g(x) - level;
      ++fieldEvals;
      if (!std::isfinite(gv)) return {x, false};  // left the domain
      if (std::abs(gv) <= opts.tol * scale) break;
      const la::Vector n = grad(x);
      ++gradEvals;
      const double nn = la::normSq(n);
      if (nn <= 1e-300) return {x, false};  // stationary point: give up
      x -= (gv / nn) * n;
    }

    // B. Tangential slide toward the origin point x0.
    const la::Vector n = grad(x);
    ++gradEvals;
    const double nn = la::normSq(n);
    if (nn <= 1e-300) return {x, false};
    la::Vector v = x0 - x;
    const double vn = la::dot(v, n) / nn;
    la::Vector tangential = v - vn * n;
    const double step = la::norm2(tangential);
    if (step <= opts.tol * scale) {
      converged = true;
      break;
    }
    // Damped step: full tangential moves can overshoot on curved
    // boundaries; halving preserves monotone progress in practice.
    x += 0.5 * tangential;
  }

  // Final projection so the returned point satisfies the constraint.
  for (int inner = 0; inner < 16; ++inner) {
    const double gv = g(x) - level;
    ++fieldEvals;
    if (!std::isfinite(gv)) break;  // left the domain
    if (std::abs(gv) <= opts.tol * scale) break;
    const la::Vector n = grad(x);
    ++gradEvals;
    const double nn = la::normSq(n);
    if (nn <= 1e-300) break;
    x -= (gv / nn) * n;
  }
  return {std::move(x), converged};
}

}  // namespace

BoundaryResult nearestPointOnLevelSet(const FieldFn& g, const GradFn& gradIn,
                                      const la::Vector& x0, double level,
                                      const BoundarySolverOptions& opts) {
  if (x0.empty()) {
    throw std::invalid_argument("opt::nearestPointOnLevelSet: empty origin");
  }
  FEPIA_SPAN("opt.boundary_solve");
  BoundaryResult res;
  res.point = x0;

  // Domain robustness: a feature may be undefined at probe points (e.g.
  // a pole at zero bandwidth factor). Failed evaluations become NaN —
  // treated as "outside the domain" by the bracketing search — and failed
  // gradients become zero vectors, which abort refinement gracefully.
  const std::size_t dim = x0.size();
  const FieldFn safeG = [&g](const la::Vector& x) {
    try {
      return g(x);
    } catch (const std::exception&) {
      return std::numeric_limits<double>::quiet_NaN();
    }
  };
  GradFn grad;
  if (gradIn) {
    grad = [&gradIn, dim](const la::Vector& x) {
      try {
        return gradIn(x);
      } catch (const std::exception&) {
        return la::Vector(dim, 0.0);
      }
    };
  } else {
    grad = [&safeG, dim](const la::Vector& x) {
      const la::Vector fd = ad::finiteDifferenceGradient(
          [&safeG](const la::Vector& y) { return safeG(y); }, x);
      for (double v : fd) {
        if (!std::isfinite(v)) return la::Vector(dim, 0.0);
      }
      return fd;
    };
  }

  const std::size_t n = x0.size();
  rng::Xoshiro256StarStar gen(opts.seed);

  // Probe directions: random sphere points plus (optionally) the axes.
  std::vector<la::Vector> directions;
  directions.reserve(opts.multistarts + (opts.probeAxes ? 2 * n : 0));
  for (std::size_t k = 0; k < opts.multistarts; ++k) {
    const auto d = opts.nonnegativeDirectionsOnly
                       ? rng::unitSphereNonnegative(gen, n)
                       : rng::unitSphere(gen, n);
    directions.emplace_back(la::Vector(std::vector<double>(d.begin(), d.end())));
  }
  if (opts.probeAxes) {
    for (std::size_t i = 0; i < n; ++i) {
      directions.push_back(la::unitAxis(n, i));
      if (!opts.nonnegativeDirectionsOnly) {
        directions.push_back(-la::unitAxis(n, i));
      }
    }
  }

  // Gradient direction is usually the best single probe: the level set of
  // a monotone feature is first reached along ∇g.
  {
    const la::Vector g0 = grad(x0);
    ++res.gradientEvaluations;
    const double gn = la::norm2(g0);
    if (gn > 0.0) {
      directions.push_back(g0 / gn);
      if (!opts.nonnegativeDirectionsOnly) directions.push_back(-(g0 / gn));
    }
  }

  const auto countedField = [&](const la::Vector& x) {
    ++res.fieldEvaluations;
    return safeG(x);
  };

  double best = std::numeric_limits<double>::infinity();
  la::Vector bestPoint;
  const double tMax = opts.tMax * std::max(1.0, la::norm2(x0));
  for (const la::Vector& d : directions) {
    const auto hit = rayShootToLevel(countedField, x0, d, level, tMax);
    if (!hit) continue;
    res.foundBoundary = true;
    if (hit->t < best) {
      best = hit->t;
      bestPoint = hit->point;
    }
  }
  if (!res.foundBoundary) return res;

  RefineOutcome refined =
      refineClosestPoint(countedField, grad, x0, level, opts, bestPoint,
                         res.fieldEvaluations, res.gradientEvaluations);
  // gradEvals from refine are already counted through the lambda captures.
  const double refinedDist = la::distance(refined.point, x0);
  if (refinedDist <= best) {
    res.point = std::move(refined.point);
    res.distance = refinedDist;
    res.converged = refined.converged;
  } else {
    // Refinement wandered to a worse branch; keep the raw ray hit.
    res.point = std::move(bestPoint);
    res.distance = best;
    res.converged = false;
  }
  return res;
}

}  // namespace fepia::opt
