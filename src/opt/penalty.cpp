#include "opt/penalty.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fepia::opt {

BoundaryResult nearestPointOnLevelSetPenalty(const FieldFn& g,
                                             const la::Vector& x0,
                                             double level,
                                             const PenaltyOptions& opts) {
  if (x0.empty()) {
    throw std::invalid_argument(
        "opt::nearestPointOnLevelSetPenalty: empty origin");
  }
  BoundaryResult res;
  res.point = x0;

  // Evaluation failures (field undefined at a probe point) become NaN
  // for the ray search and +inf penalties for the inner minimiser.
  const auto countedField = [&](const la::Vector& x) {
    ++res.fieldEvaluations;
    try {
      return g(x);
    } catch (const std::exception&) {
      return std::numeric_limits<double>::quiet_NaN();
    }
  };

  const double scale = std::max(1.0, std::abs(level));

  // Warm start: one ray shot along the steepest ascent proxy — here just
  // the direction that changes g fastest among the coordinate axes, or
  // simply toward increasing g along +1 vector; a crude probe is enough
  // to start the simplex near the boundary.
  la::Vector start = x0;
  if (opts.warmStartWithRayShot) {
    const la::Vector ones = la::ones(x0.size()) / std::sqrt(
        static_cast<double>(x0.size()));
    for (const la::Vector& dir : {ones, -ones}) {
      const auto hit = rayShootToLevel(countedField, x0, dir, level,
                                       opts.tMax * std::max(1.0, la::norm2(x0)));
      if (hit) {
        start = hit->point;
        res.foundBoundary = true;
        break;
      }
    }
  }

  double mu = opts.initialMu;
  la::Vector best = start;
  double bestResidual = std::abs(countedField(best) - level);
  for (std::size_t outer = 0; outer < opts.maxOuterIterations; ++outer) {
    const VectorFn objective = [&](const la::Vector& x) {
      const double r = countedField(x) - level;
      if (!std::isfinite(r)) return std::numeric_limits<double>::infinity();
      double dist = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - x0[i];
        dist += d * d;
      }
      return dist + mu * r * r;
    };
    const NelderMeadResult nm = nelderMead(objective, best, opts.inner);
    best = nm.x;
    bestResidual = std::abs(countedField(best) - level);
    if (bestResidual <= opts.constraintTol * scale) {
      res.converged = true;
      break;
    }
    mu *= opts.muGrowth;
  }

  if (bestResidual <= 1e-3 * scale) res.foundBoundary = true;
  if (!res.foundBoundary) return res;

  res.point = std::move(best);
  res.distance = la::distance(res.point, x0);
  return res;
}

}  // namespace fepia::opt
