#include "units/unit.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fepia::units {

Unit Unit::base(Dimension d, int power) {
  Unit u;
  u.exps_[static_cast<std::size_t>(d)] = power;
  return u;
}

bool Unit::isDimensionless() const noexcept {
  for (int e : exps_) {
    if (e != 0) return false;
  }
  return true;
}

Unit Unit::operator*(const Unit& rhs) const noexcept {
  Unit out = *this;
  for (std::size_t i = 0; i < kDimensionCount; ++i) out.exps_[i] += rhs.exps_[i];
  return out;
}

Unit Unit::operator/(const Unit& rhs) const noexcept {
  Unit out = *this;
  for (std::size_t i = 0; i < kDimensionCount; ++i) out.exps_[i] -= rhs.exps_[i];
  return out;
}

Unit Unit::pow(int p) const noexcept {
  Unit out = *this;
  for (int& e : out.exps_) e *= p;
  return out;
}

std::string Unit::str() const {
  static constexpr const char* kNames[kDimensionCount] = {"s", "B", "obj", "ds"};
  std::ostringstream os;
  bool any = false;
  for (std::size_t i = 0; i < kDimensionCount; ++i) {
    const int e = exps_[i];
    if (e == 0) continue;
    if (any) os << "·";
    os << kNames[i];
    if (e != 1) os << '^' << e;
    any = true;
  }
  return any ? os.str() : "1";
}

std::ostream& operator<<(std::ostream& os, const Unit& u) { return os << u.str(); }

void requireSameUnit(const Unit& a, const Unit& b, const char* context) {
  if (a != b) {
    throw MismatchError(std::string(context) + ": incompatible units '" +
                        a.str() + "' vs '" + b.str() + "'");
  }
}

}  // namespace fepia::units
