// Runtime dimensional analysis.
//
// Section 3 of the paper hinges on a units argument: execution times
// (seconds) and message lengths (bytes) "have different units, [so] one
// cannot assemble all of them in one perturbation parameter" without
// first making the merged vector dimensionless. This module makes that
// rule enforceable: a PerturbationVector carries a Unit, the plain
// concatenation refuses mixed units, and both merge schemes are checked
// to produce Dimensionless results.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace fepia::units {

/// Base dimensions appearing in the paper's systems. `Object` models the
/// HiPer-D "objects per data set" sensor-load unit.
enum class Dimension : std::uint8_t { Time = 0, Byte = 1, Object = 2, DataSet = 3 };

inline constexpr std::size_t kDimensionCount = 4;

/// A product of integer powers of the base dimensions, e.g.
/// bytes/second = Byte^1 · Time^-1. Value-semantic and hashable-light.
class Unit {
 public:
  /// The dimensionless unit (all exponents zero).
  constexpr Unit() = default;

  /// A single base dimension to the given power.
  static Unit base(Dimension d, int power = 1);

  /// Common units.
  static Unit dimensionless() { return Unit{}; }
  static Unit seconds() { return base(Dimension::Time); }
  static Unit bytes() { return base(Dimension::Byte); }
  static Unit objects() { return base(Dimension::Object); }
  static Unit dataSets() { return base(Dimension::DataSet); }
  static Unit objectsPerDataSet() {
    return base(Dimension::Object) / base(Dimension::DataSet);
  }
  static Unit dataSetsPerSecond() {  // throughput
    return base(Dimension::DataSet) / base(Dimension::Time);
  }
  static Unit bytesPerSecond() { return base(Dimension::Byte) / base(Dimension::Time); }

  [[nodiscard]] int exponent(Dimension d) const noexcept {
    return exps_[static_cast<std::size_t>(d)];
  }

  [[nodiscard]] bool isDimensionless() const noexcept;

  /// Product / quotient of units (exponents add / subtract).
  [[nodiscard]] Unit operator*(const Unit& rhs) const noexcept;
  [[nodiscard]] Unit operator/(const Unit& rhs) const noexcept;

  /// Unit raised to an integer power.
  [[nodiscard]] Unit pow(int p) const noexcept;

  friend bool operator==(const Unit&, const Unit&) = default;

  /// Human-readable form like "s·B^-1" or "1" for dimensionless.
  [[nodiscard]] std::string str() const;

 private:
  std::array<int, kDimensionCount> exps_{};
};

std::ostream& operator<<(std::ostream& os, const Unit& u);

/// Throws units::MismatchError unless `a == b`. `context` names the
/// operation for the error message.
void requireSameUnit(const Unit& a, const Unit& b, const char* context);

/// Error thrown when an operation would mix incompatible units — e.g.
/// concatenating seconds with bytes without a weighting scheme.
class MismatchError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

}  // namespace fepia::units
