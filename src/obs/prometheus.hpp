// Prometheus text-exposition writer for the metrics registry.
//
// Maps the registry onto the Prometheus text format (version 0.0.4, the
// format every Prometheus server scrapes): counters become
// `fepia_<name>_total`, gauges `fepia_<name>`, histograms the standard
// `_bucket{le=...}` / `_sum` / `_count` triple with *cumulative* bucket
// counts and a closing `le="+Inf"` bucket. Metric names are sanitised to
// the Prometheus grammar ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and every
// other illegal character map to '_'.
//
// This is the scrape payload of the future fepiad server's /metrics
// endpoint; today the TelemetryHub serves it from its latest snapshot
// and `fepia_cli --prom FILE` writes it at process exit.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace fepia::obs {

/// `name` mangled into a legal Prometheus metric name, prefixed with
/// "fepia_" ("sweep.points_per_sec" -> "fepia_sweep_points_per_sec").
[[nodiscard]] std::string prometheusName(std::string_view name);

/// Writes `reg` in the Prometheus text exposition format: one
/// `# TYPE` line plus sample lines per metric, insertion order
/// preserved, terminated by a newline. Deterministic for a fixed
/// registry.
void exportPrometheus(std::ostream& os, const Registry& reg);

}  // namespace fepia::obs
