// Live telemetry hub: periodic metrics sampling, structured events,
// threshold alerts, stall watchdogs, and a Prometheus-ready export.
//
// Everything the obs layer produced so far is post-mortem — spans become
// one trace file and the Registry one JSON blob at process exit. The
// TelemetryHub is the continuous-observation layer on top of the same
// primitives: a background sampler thread wakes on a fixed interval,
// assembles a snapshot Registry (the published base registry plus every
// registered live-gauge source), stores it in a fixed-capacity ring
// buffer, streams it as one JSONL record, evaluates the alert rules,
// and checks the stall watchdogs. Subsystems additionally push
// structured events (sweep heartbeats, straggler warnings) into the
// same stream through emit().
//
// The hard guarantee carried over from the span layer: telemetry must
// be invisible to the numerics. Sources hand the sampler *copies* read
// from atomics or taken under short-lived locks — never a lock held
// across kernel work — and nothing in the hub feeds back into any
// computation, so every radius, surface, and journal byte is identical
// with telemetry on or off at any thread count (asserted by
// tests/telemetry_test.cpp at threads {1, 2, 8}).
//
// Record stream (one JSON object per line; tools/schemas/
// telemetry.schema.json specifies it, docs/observability.md documents
// it):
//   {"type":"sample","seq":N,"t_ms":T,"metrics":{...}}    periodic
//   {"type":"heartbeat","t_ms":T,...}                     per sweep shard
//   {"type":"warning","kind":"straggler","t_ms":T,...}    slow shard
//   {"type":"alert","kind":"threshold","t_ms":T,...}      rule crossing
//   {"type":"alert","kind":"stall","t_ms":T,...}          watchdog
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/alert.hpp"
#include "obs/metrics.hpp"

namespace fepia::obs {

/// Sampler configuration.
struct TelemetryOptions {
  /// Sampling period of the background thread.
  std::uint64_t intervalMillis = 250;
  /// Fixed capacity of the in-memory sample ring (oldest samples are
  /// dropped first; the JSONL stream keeps everything).
  std::size_t ringCapacity = 256;
  /// Threshold rules evaluated against every sample.
  std::vector<AlertRule> alerts;
};

/// One periodic snapshot: sequence number, monotonic time since the hub
/// was constructed, and a copy of the merged registry.
struct TelemetrySample {
  std::uint64_t seq = 0;
  std::uint64_t tNs = 0;
  Registry registry;
};

/// A structured event for the telemetry stream, built fluently:
///   hub.emit(TelemetryEvent("heartbeat").count("shard", s)
///                .num("eta_seconds", eta));
/// Keys are escaped through the shared JSON writer, so hostile names
/// cannot break the stream.
class TelemetryEvent {
 public:
  explicit TelemetryEvent(std::string type) : type_(std::move(type)) {}

  TelemetryEvent& num(std::string key, double value);
  TelemetryEvent& count(std::string key, std::uint64_t value);
  TelemetryEvent& str(std::string key, std::string value);

  [[nodiscard]] const std::string& type() const noexcept { return type_; }

 private:
  friend class TelemetryHub;

  struct Field {
    enum class Kind { Num, Count, Str } kind;
    std::string key;
    double num = 0.0;
    std::uint64_t cnt = 0;
    std::string str;
  };

  std::string type_;
  std::vector<Field> fields_;
};

/// The hub. Construct, register sources/watchdogs, start(); stop() (or
/// the destructor) joins the sampler after one final sample, so a run
/// always emits at least the first and last snapshots regardless of the
/// interval. All public methods are thread-safe.
class TelemetryHub {
 public:
  /// A live-gauge source: called by the sampler with the snapshot under
  /// construction; must only read atomics or take short-lived locks
  /// (never a lock held across kernel work) and must stay valid until
  /// removeSource.
  using SourceFn = std::function<void(Registry&)>;

  /// `sink` receives the JSONL stream (flushed per record); nullptr
  /// keeps records in memory only. The hub does not own the stream.
  explicit TelemetryHub(TelemetryOptions opts, std::ostream* sink = nullptr);
  ~TelemetryHub();

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  /// Registers a live-gauge source; returns its id for removeSource.
  std::size_t addSource(SourceFn fn);
  void removeSource(std::size_t id);

  /// Merges `reg` into the hub's base registry (the accumulated
  /// post-join metrics every snapshot starts from).
  void publish(const Registry& reg);

  /// Registers a stall watchdog: when no noteProgress(id) call lands
  /// within `deadlineSeconds`, the next sample emits one
  /// {"type":"alert","kind":"stall"} event (re-armed by progress).
  /// The watchdog starts "fed" at registration time.
  std::size_t addWatchdog(std::string name, double deadlineSeconds);
  /// Feeds watchdog `id`: a brief lookup under the hub lock plus one
  /// relaxed store. Cheap enough for per-sweep-point use (points cost
  /// whole estimator runs), but keep it off per-classification paths.
  void noteProgress(std::size_t watchdogId) noexcept;
  void removeWatchdog(std::size_t id);

  /// Starts the background sampler (takes an immediate first sample).
  /// No-op when already running.
  void start();
  /// Takes a final sample, stops and joins the sampler. Idempotent.
  void stop();

  /// Takes one sample synchronously (also evaluates alerts/watchdogs).
  void sampleNow();

  /// Emits one structured event into the stream (timestamped by the
  /// hub's clock).
  void emit(const TelemetryEvent& event);

  /// Copy of the sample ring, oldest first.
  [[nodiscard]] std::vector<TelemetrySample> samples() const;
  /// Total samples taken (including those evicted from the ring).
  [[nodiscard]] std::uint64_t sampleCount() const;
  /// (tNs, value) series of one counter/gauge over the ring, oldest
  /// first; samples where the metric is absent are skipped.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> series(
      const std::string& metric) const;
  /// Every JSONL record produced so far (what the sink received), in
  /// emission order.
  [[nodiscard]] std::vector<std::string> records() const;

  /// Writes the latest snapshot (taking a fresh one when none exists
  /// yet) in the Prometheus text exposition format — the payload of the
  /// future fepiad /metrics scrape endpoint.
  void exportPrometheus(std::ostream& os);

 private:
  struct Source {
    std::size_t id;
    SourceFn fn;
  };
  struct Watchdog {
    std::size_t id = 0;
    std::string name;
    std::uint64_t deadlineNs = 0;
    std::atomic<std::uint64_t> lastNs{0};
    bool stalled = false;  ///< sampler thread only (under mutex_)
  };

  /// Sampler lifecycle. A plain `running_` bool made concurrent stop()
  /// racy: the second caller saw running_ still true, joined a
  /// moved-from thread, and took a duplicate final sample. The explicit
  /// state machine gives every transition one owner: start() only moves
  /// Idle -> Running; the stop() call that wins the Running -> Stopping
  /// transition is the only one that joins and takes the final sample
  /// (back to Idle); every other start()/stop() is a no-op — so
  /// stop-without-start, double-stop, and concurrent stop are all safe.
  enum class State { Idle, Running, Stopping };

  void samplerLoop();
  /// Assembles a snapshot, appends it to the ring, writes the sample
  /// record, and runs alerts + watchdogs. Requires mutex_ held.
  void sampleLocked();
  /// Serialises `event` (with timestamp `tNs`) and appends it to the
  /// stream. Requires mutex_ held.
  void writeEventLocked(const TelemetryEvent& event, std::uint64_t tNs);
  void writeRecordLocked(std::string line);
  [[nodiscard]] std::uint64_t nowRelNanos() const noexcept;

  const TelemetryOptions opts_;
  const std::uint64_t baseNs_;
  std::ostream* sink_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  State state_ = State::Idle;  ///< under mutex_
  std::thread sampler_;

  std::vector<Source> sources_;
  std::size_t nextSourceId_ = 0;
  std::deque<std::unique_ptr<Watchdog>> watchdogs_;  ///< stable addresses
  std::size_t nextWatchdogId_ = 0;
  Registry base_;
  AlertEngine alerts_;
  std::deque<TelemetrySample> ring_;
  std::uint64_t sampleSeq_ = 0;
  std::vector<std::string> records_;
};

}  // namespace fepia::obs
