// Declarative threshold alerts over the metrics registry.
//
// An AlertRule names one metric (gauge or counter), a comparison, and a
// threshold — "sweep.points_per_sec<100", "fault.live_dropped>=1". The
// AlertEngine evaluates every rule against a registry snapshot and
// reports *crossings*, not levels: a rule fires once when its condition
// becomes true and re-arms when the condition clears, so a stream of
// periodic samples produces one event per excursion instead of one per
// sample. This is the seed of the streaming robustness monitor's
// threshold-crossing alerts (ROADMAP item 5c); the TelemetryHub runs an
// engine over every sample and emits the crossings as alert events.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace fepia::obs {

/// One threshold rule: `metric op threshold`.
struct AlertRule {
  enum class Op { Gt, Ge, Lt, Le };

  std::string metric;
  Op op = Op::Gt;
  double threshold = 0.0;

  /// True when `value` breaches the rule.
  [[nodiscard]] bool breached(double value) const noexcept;

  /// The rule back in its spec syntax ("metric>threshold").
  [[nodiscard]] std::string str() const;
};

/// The spec spelling of an operator (">", ">=", "<", "<=").
[[nodiscard]] std::string_view alertOpName(AlertRule::Op op) noexcept;

/// Parses "metric>value" / "metric>=value" / "metric<value" /
/// "metric<=value" (no spaces; the metric name is everything before the
/// operator). Throws std::invalid_argument on a missing operator, empty
/// metric name, or non-finite threshold.
[[nodiscard]] AlertRule parseAlertRule(std::string_view text);

/// One rule crossing observed by AlertEngine::evaluate.
struct AlertCrossing {
  const AlertRule* rule = nullptr;
  double value = 0.0;  ///< the metric value that breached the rule
};

/// Evaluates a fixed rule set against registry snapshots, reporting
/// breach *transitions*. Not thread-safe — the telemetry sampler owns
/// its engine and evaluates under the hub lock.
class AlertEngine {
 public:
  explicit AlertEngine(std::vector<AlertRule> rules);

  [[nodiscard]] const std::vector<AlertRule>& rules() const noexcept {
    return rules_;
  }

  /// Looks every rule's metric up in `reg` (gauges first, then counters;
  /// an absent metric never fires) and returns the rules whose condition
  /// went from clear to breached since the previous call. Rules whose
  /// condition cleared re-arm silently.
  [[nodiscard]] std::vector<AlertCrossing> evaluate(const Registry& reg);

 private:
  std::vector<AlertRule> rules_;
  std::vector<bool> breached_;  ///< previous state, per rule
};

/// Metric lookup shared with the engine: gauge value when the gauge
/// exists, else counter value when the counter exists, else nullopt.
[[nodiscard]] bool findMetricValue(const Registry& reg,
                                   const std::string& name, double& out);

}  // namespace fepia::obs
