#include "obs/telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/prometheus.hpp"

namespace fepia::obs {
namespace {

/// Appends `value` with the same %.17g round-trip formatting as the
/// JSON number writer (telemetry records must re-parse exactly).
void appendNumber(std::string& out, double value) {
  std::ostringstream os;
  writeJsonNumber(os, value);
  out += os.str();
}

void appendString(std::string& out, const std::string& value) {
  std::ostringstream os;
  writeJsonString(os, value);
  out += os.str();
}

/// Milliseconds with microsecond resolution — readable timestamps that
/// still order samples taken within one interval.
double relMillis(std::uint64_t relNs) {
  return static_cast<double>(relNs / 1000) / 1000.0;
}

}  // namespace

TelemetryEvent& TelemetryEvent::num(std::string key, double value) {
  Field f;
  f.kind = Field::Kind::Num;
  f.key = std::move(key);
  f.num = value;
  fields_.push_back(std::move(f));
  return *this;
}

TelemetryEvent& TelemetryEvent::count(std::string key, std::uint64_t value) {
  Field f;
  f.kind = Field::Kind::Count;
  f.key = std::move(key);
  f.cnt = value;
  fields_.push_back(std::move(f));
  return *this;
}

TelemetryEvent& TelemetryEvent::str(std::string key, std::string value) {
  Field f;
  f.kind = Field::Kind::Str;
  f.key = std::move(key);
  f.str = std::move(value);
  fields_.push_back(std::move(f));
  return *this;
}

TelemetryHub::TelemetryHub(TelemetryOptions opts, std::ostream* sink)
    : opts_(std::move(opts)),
      baseNs_(nowNanos()),
      sink_(sink),
      alerts_(opts_.alerts) {}

TelemetryHub::~TelemetryHub() { stop(); }

std::uint64_t TelemetryHub::nowRelNanos() const noexcept {
  return nowNanos() - baseNs_;
}

std::size_t TelemetryHub::addSource(SourceFn fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t id = nextSourceId_++;
  sources_.push_back(Source{id, std::move(fn)});
  return id;
}

void TelemetryHub::removeSource(std::size_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = sources_.begin(); it != sources_.end(); ++it) {
    if (it->id == id) {
      sources_.erase(it);
      return;
    }
  }
}

void TelemetryHub::publish(const Registry& reg) {
  const std::lock_guard<std::mutex> lock(mutex_);
  base_.merge(reg);
}

std::size_t TelemetryHub::addWatchdog(std::string name,
                                      double deadlineSeconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto dog = std::make_unique<Watchdog>();
  dog->id = nextWatchdogId_++;
  dog->name = std::move(name);
  dog->deadlineNs =
      static_cast<std::uint64_t>(deadlineSeconds * 1e9);
  dog->lastNs.store(nowRelNanos(), std::memory_order_relaxed);
  const std::size_t id = dog->id;
  watchdogs_.push_back(std::move(dog));
  return id;
}

void TelemetryHub::noteProgress(std::size_t watchdogId) noexcept {
  // The clock read stays outside the lock so a sampler mid-serialise
  // cannot skew the progress timestamp.
  const std::uint64_t now = nowRelNanos();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& dog : watchdogs_) {
    if (dog->id == watchdogId) {
      dog->lastNs.store(now, std::memory_order_relaxed);
      return;
    }
  }
}

void TelemetryHub::removeWatchdog(std::size_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = watchdogs_.begin(); it != watchdogs_.end(); ++it) {
    if ((*it)->id == id) {
      watchdogs_.erase(it);
      return;
    }
  }
}

void TelemetryHub::start() {
  std::unique_lock<std::mutex> lock(mutex_);
  // Only Idle -> Running starts a sampler; start() during Running is
  // the documented no-op and start() racing a stop() in flight must not
  // spawn a second thread into the slot being joined.
  if (state_ != State::Idle) return;
  state_ = State::Running;
  sampleLocked();  // the t=0 snapshot
  sampler_ = std::thread([this] { samplerLoop(); });
}

void TelemetryHub::stop() {
  std::thread joinable;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Exactly one caller wins Running -> Stopping and owns the join +
    // final sample. A stop() that never saw a start() (Idle) and a
    // stop() racing the winner (Stopping) both return immediately —
    // idempotent stop/double-stop/stop-without-start are all no-ops.
    if (state_ != State::Running) return;
    state_ = State::Stopping;
    joinable = std::move(sampler_);
  }
  wake_.notify_all();
  if (joinable.joinable()) joinable.join();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sampleLocked();  // the final snapshot — guarantees >= 2 samples
    state_ = State::Idle;
  }
}

void TelemetryHub::samplerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto interval = std::chrono::milliseconds(opts_.intervalMillis);
  while (state_ == State::Running) {
    if (wake_.wait_for(lock, interval,
                       [this] { return state_ != State::Running; })) {
      break;
    }
    sampleLocked();
  }
}

void TelemetryHub::sampleNow() {
  const std::lock_guard<std::mutex> lock(mutex_);
  sampleLocked();
}

void TelemetryHub::sampleLocked() {
  TelemetrySample sample;
  sample.seq = sampleSeq_++;
  sample.tNs = nowRelNanos();
  sample.registry = base_;
  for (const Source& src : sources_) src.fn(sample.registry);

  // Serialise before moving into the ring.
  std::ostringstream metricsJson;
  sample.registry.writeJson(metricsJson);
  std::string line = "{\"type\":\"sample\",\"seq\":";
  line += std::to_string(sample.seq);
  line += ",\"t_ms\":";
  appendNumber(line, relMillis(sample.tNs));
  line += ",\"metrics\":";
  line += metricsJson.str();
  line += '}';
  writeRecordLocked(std::move(line));

  for (const AlertCrossing& crossing : alerts_.evaluate(sample.registry)) {
    TelemetryEvent event("alert");
    event.str("kind", "threshold")
        .str("rule", crossing.rule->str())
        .str("metric", crossing.rule->metric)
        .num("value", crossing.value)
        .num("threshold", crossing.rule->threshold);
    writeEventLocked(event, sample.tNs);
  }

  for (const auto& dog : watchdogs_) {
    const std::uint64_t last = dog->lastNs.load(std::memory_order_relaxed);
    const bool stalled =
        sample.tNs > last && sample.tNs - last > dog->deadlineNs;
    if (stalled && !dog->stalled) {
      TelemetryEvent event("alert");
      event.str("kind", "stall")
          .str("watchdog", dog->name)
          .num("idle_seconds",
               static_cast<double>(sample.tNs - last) / 1e9)
          .num("deadline_seconds",
               static_cast<double>(dog->deadlineNs) / 1e9);
      writeEventLocked(event, sample.tNs);
    }
    dog->stalled = stalled;
  }

  ring_.push_back(std::move(sample));
  while (ring_.size() > opts_.ringCapacity && !ring_.empty()) {
    ring_.pop_front();
  }
}

void TelemetryHub::emit(const TelemetryEvent& event) {
  const std::uint64_t tNs = nowRelNanos();
  const std::lock_guard<std::mutex> lock(mutex_);
  writeEventLocked(event, tNs);
}

void TelemetryHub::writeEventLocked(const TelemetryEvent& event,
                                    std::uint64_t tNs) {
  std::string line = "{\"type\":";
  appendString(line, event.type_);
  line += ",\"t_ms\":";
  appendNumber(line, relMillis(tNs));
  for (const TelemetryEvent::Field& f : event.fields_) {
    line += ',';
    appendString(line, f.key);
    line += ':';
    switch (f.kind) {
      case TelemetryEvent::Field::Kind::Num:
        appendNumber(line, f.num);
        break;
      case TelemetryEvent::Field::Kind::Count:
        line += std::to_string(f.cnt);
        break;
      case TelemetryEvent::Field::Kind::Str:
        appendString(line, f.str);
        break;
    }
  }
  line += '}';
  writeRecordLocked(std::move(line));
}

void TelemetryHub::writeRecordLocked(std::string line) {
  if (sink_ != nullptr) {
    *sink_ << line << '\n';
    sink_->flush();
  }
  records_.push_back(std::move(line));
}

std::vector<TelemetrySample> TelemetryHub::samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<TelemetrySample>(ring_.begin(), ring_.end());
}

std::uint64_t TelemetryHub::sampleCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sampleSeq_;
}

std::vector<std::pair<std::uint64_t, double>> TelemetryHub::series(
    const std::string& metric) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint64_t, double>> out;
  out.reserve(ring_.size());
  for (const TelemetrySample& s : ring_) {
    double value = 0.0;
    if (findMetricValue(s.registry, metric, value)) {
      out.emplace_back(s.tNs, value);
    }
  }
  return out;
}

std::vector<std::string> TelemetryHub::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void TelemetryHub::exportPrometheus(std::ostream& os) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) sampleLocked();
  fepia::obs::exportPrometheus(os, ring_.back().registry);
}

}  // namespace fepia::obs
