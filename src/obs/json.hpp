// Shared JSON primitives for the observability layer.
//
// Every JSON document the repo emits (counter sets, metric registries,
// Chrome trace files, run manifests, bench results) goes through the one
// escaper here, so a counter named `cache "hot" path\n` can never again
// produce an unparseable file. A minimal syntax validator rides along:
// the trace/CLI tests use it to assert emitted documents actually parse,
// without pulling a JSON library into the build.
#pragma once

#include <ostream>
#include <string_view>

namespace fepia::obs {

/// Writes `s` as a JSON string literal (including the surrounding
/// quotes): `"` `\` and control characters are escaped per RFC 8259.
void writeJsonString(std::ostream& os, std::string_view s);

/// JSON number for a possibly non-finite double (JSON has no Infinity or
/// NaN; both map to `null`). 17 significant digits — round-trip exact.
void writeJsonNumber(std::ostream& os, double x);

/// True when `text` is one syntactically valid JSON value (object,
/// array, string, number, true/false/null) with nothing but whitespace
/// around it. A syntax checker, not a data model: it does not reject
/// duplicate keys.
[[nodiscard]] bool isValidJson(std::string_view text);

}  // namespace fepia::obs
