#include "obs/span.hpp"

#include <cstdio>

#include "obs/clock.hpp"
#include "obs/json.hpp"

namespace fepia::obs {

namespace detail {

void ThreadBuffer::open(const char* name, const char* argName,
                        std::uint64_t arg, std::uint64_t startNs) {
  OpenSpan span;
  span.name = name;
  span.argName = argName;
  span.arg = arg;
  span.startNs = startNs;
  if (stack_.empty()) {
    span.id = 't' + std::to_string(tid_) + '.' + std::to_string(roots_++);
  } else {
    OpenSpan& parent = stack_.back();
    span.id = parent.id + '.' + std::to_string(parent.children++);
  }
  stack_.push_back(std::move(span));
}

void ThreadBuffer::close(std::uint64_t endNs) {
  OpenSpan span = std::move(stack_.back());
  stack_.pop_back();
  SpanRecord rec;
  rec.name = span.name;
  rec.id = std::move(span.id);
  rec.tid = tid_;
  rec.startNs = span.startNs;
  rec.durNs = endNs >= span.startNs ? endNs - span.startNs : 0;
  rec.argName = span.argName;
  rec.arg = span.arg;
  const std::lock_guard<std::mutex> lock(recordsMutex_);
  records_.push_back(std::move(rec));
}

}  // namespace detail

/// Collector internals' keyhole into ThreadBuffer.
class TraceCollectorAccess {
 public:
  static void drain(detail::ThreadBuffer& buf, std::vector<SpanRecord>& out) {
    const std::lock_guard<std::mutex> lock(buf.recordsMutex_);
    for (SpanRecord& r : buf.records_) out.push_back(std::move(r));
    buf.records_.clear();
  }
};

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  return collector;
}

void TraceCollector::start() {
  (void)collect();  // drop any stale records from a previous session
  baseNs_ = nowNanos();
  enabled_.store(true, std::memory_order_relaxed);
}

std::vector<SpanRecord> TraceCollector::collect() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  for (const auto& buf : buffers_) {
    TraceCollectorAccess::drain(*buf, out);
  }
  return out;
}

detail::ThreadBuffer& TraceCollector::threadBuffer() {
  thread_local detail::ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<detail::ThreadBuffer>(
        static_cast<std::uint32_t>(buffers_.size())));
    cached = buffers_.back().get();
  }
  return *cached;
}

Span::Span(const char* name, const char* argName, std::uint64_t arg) {
  TraceCollector& tc = TraceCollector::instance();
  if (!tc.enabled()) return;
  buf_ = &tc.threadBuffer();
  buf_->open(name, argName, arg, nowNanos());
}

Span::~Span() {
  if (buf_ != nullptr) buf_->close(nowNanos());
}

namespace {
std::atomic<bool> g_timingEnabled{false};
}  // namespace

bool timingEnabled() noexcept {
  return g_timingEnabled.load(std::memory_order_relaxed);
}

void setTimingEnabled(bool on) noexcept {
  g_timingEnabled.store(on, std::memory_order_relaxed);
}

void writeChromeTrace(std::ostream& os, const std::vector<SpanRecord>& records,
                      std::uint64_t baseNs) {
  os << "[\n";
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"name\": \"fepia\"}}";
  for (const SpanRecord& r : records) {
    os << ",\n{\"name\": ";
    writeJsonString(os, r.name);
    // Relative microsecond timestamps with nanosecond fraction.
    const std::uint64_t rel = r.startNs >= baseNs ? r.startNs - baseNs : 0;
    const auto micros = [&os](std::uint64_t ns) {
      char frac[8];
      std::snprintf(frac, sizeof(frac), "%03u",
                    static_cast<unsigned>(ns % 1000));
      os << ns / 1000 << '.' << frac;
    };
    os << ", \"cat\": \"fepia\", \"ph\": \"X\", \"ts\": ";
    micros(rel);
    os << ", \"dur\": ";
    micros(r.durNs);
    os << ", \"pid\": 0, \"tid\": " << r.tid << ", \"args\": {\"id\": ";
    writeJsonString(os, r.id);
    if (r.argName != nullptr) {
      os << ", ";
      writeJsonString(os, r.argName);
      os << ": " << r.arg;
    }
    os << "}}";
  }
  os << "\n]\n";
}

}  // namespace fepia::obs
