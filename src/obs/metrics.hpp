// Metrics registry: counters, gauges, and fixed-bucket histograms.
//
// This is the home of the repo's work accounting. Counters (absorbed
// from the old src/trace CounterSet, which now forwards here) count
// discrete work: objective evaluations, cache hits, DES events. Gauges
// record a level observed at a point in time: event-queue high-water
// mark, thread count. Histograms record distributions: thread-pool
// submit-to-start wait, cache-lookup latency, classifications per
// substream.
//
// Everything is insertion-ordered and the JSON writers share the
// obs/json escaper, so a deterministic run emits a byte-identical,
// always-parseable document regardless of what the metrics are named.
//
// Deliberately not thread-safe: parallel stages accumulate into local
// metrics and merge after the join, the same discipline the determinism
// contract imposes on results.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fepia::obs {

/// One named counter. Values are unsigned 64-bit ticks except where a
/// counter is declared in fractional units (e.g. microseconds).
struct Counter {
  std::string name;
  std::uint64_t value = 0;
};

/// Insertion-ordered set of named counters.
class CounterSet {
 public:
  /// Adds `delta` to counter `name`, creating it at zero when absent.
  void bump(const std::string& name, std::uint64_t delta = 1);

  /// Sets counter `name` (creating it when absent).
  void set(const std::string& name, std::uint64_t value);

  /// Value of `name`, 0 when absent.
  [[nodiscard]] std::uint64_t value(const std::string& name) const noexcept;

  /// Adds every counter of `other` into this set.
  void merge(const CounterSet& other);

  [[nodiscard]] const std::vector<Counter>& all() const noexcept {
    return counters_;
  }
  [[nodiscard]] bool empty() const noexcept { return counters_.empty(); }
  void clear() noexcept { counters_.clear(); }

  /// Writes `"name": value, ...` pairs as a JSON object (insertion
  /// order, names escaped).
  void writeJson(std::ostream& os) const;

  /// Writes one `name = value` line per counter (insertion order).
  void print(std::ostream& os) const;

 private:
  Counter* find(const std::string& name) noexcept;

  std::vector<Counter> counters_;
};

/// One named instantaneous level.
struct Gauge {
  std::string name;
  double value = 0.0;
};

/// Fixed-bucket histogram with an implicit +inf overflow bucket.
///
/// Bucket i counts samples x with bounds[i-1] < x <= bounds[i] (the
/// first bucket is unbounded below); samples above the last bound land
/// in the overflow bucket. NaN samples are ignored; +inf counts into the
/// overflow bucket but is excluded from sum/min/max.
class Histogram {
 public:
  /// Throws std::invalid_argument when `upperBounds` is empty, not
  /// strictly increasing, or contains a non-finite bound.
  explicit Histogram(std::vector<double> upperBounds);

  /// Geometric bucket ladder: start, start*factor, ... (n bounds).
  /// Throws std::invalid_argument for start <= 0, factor <= 1 or n == 0.
  [[nodiscard]] static Histogram exponential(double start, double factor,
                                             std::size_t n);

  void record(double x) noexcept;

  /// Adds the other histogram's buckets and moments into this one.
  /// Throws std::invalid_argument when the bucket bounds differ.
  void merge(const Histogram& other);

  [[nodiscard]] const std::vector<double>& upperBounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; size is upperBounds().size() + 1, the last entry
  /// being the +inf overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucketCounts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t overflowCount() const noexcept {
    return counts_.back();
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Sum/min/max over the finite samples (0 / +inf / -inf when none).
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double minSeen() const noexcept { return min_; }
  [[nodiscard]] double maxSeen() const noexcept { return max_; }

  /// {"buckets": [{"le": b, "count": n}, ..., {"le": null, "count": n}],
  ///  "count": N, "sum": s, "min": m, "max": M} — `le: null` is the
  /// overflow bucket (JSON cannot spell +inf).
  void writeJson(std::ostream& os) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_;
  double max_;
};

/// Insertion-ordered registry of counters, gauges, and histograms — the
/// unit that instrumented subsystems expose and the CLI prints/merges.
class Registry {
 public:
  [[nodiscard]] CounterSet& counters() noexcept { return counters_; }
  [[nodiscard]] const CounterSet& counters() const noexcept {
    return counters_;
  }

  /// Sets gauge `name` (creating it when absent).
  void setGauge(const std::string& name, double value);
  /// Raises gauge `name` to `value` when larger (high-water semantics).
  void maxGauge(const std::string& name, double value);
  /// Value of gauge `name`, 0 when absent.
  [[nodiscard]] double gauge(const std::string& name) const noexcept;
  [[nodiscard]] const std::vector<Gauge>& gauges() const noexcept {
    return gauges_;
  }

  /// Get-or-create: returns the histogram registered under `name`,
  /// creating it with `upperBounds` on first use (later calls ignore the
  /// bounds argument).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upperBounds);
  /// Registered histogram or nullptr.
  [[nodiscard]] const Histogram* findHistogram(
      const std::string& name) const noexcept;
  [[nodiscard]] const std::vector<std::pair<std::string, Histogram>>&
  histograms() const noexcept {
    return histograms_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Counters add, gauges take the max (levels from parallel shards),
  /// histograms merge bucket-wise (bounds must agree).
  void merge(const Registry& other);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} in
  /// insertion order, all names escaped.
  void writeJson(std::ostream& os) const;

  /// Human-readable dump: one line per counter/gauge, a summary line
  /// plus bucket lines per histogram.
  void print(std::ostream& os) const;

 private:
  CounterSet counters_;
  std::vector<Gauge> gauges_;
  std::vector<std::pair<std::string, Histogram>> histograms_;
};

}  // namespace fepia::obs
