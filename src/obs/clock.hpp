// The one monotonic clock of the repo.
//
// Spans, metric latency histograms, benches, and the CLI's wall-time
// counters all read this clock, so a span's duration and the number a
// bench prints for the same region can never disagree about the
// timebase. steady_clock is monotonic and immune to NTP slews; wall
// (calendar) time appears only in run manifests, never in measurements.
#pragma once

#include <chrono>
#include <cstdint>

namespace fepia::obs {

using MonotonicClock = std::chrono::steady_clock;

/// Nanoseconds on the monotonic clock (epoch unspecified — only
/// differences are meaningful).
[[nodiscard]] inline std::uint64_t nowNanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          MonotonicClock::now().time_since_epoch())
          .count());
}

/// Started-on-construction stopwatch over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(nowNanos()) {}

  void restart() noexcept { start_ = nowNanos(); }

  [[nodiscard]] std::uint64_t elapsedNanos() const noexcept {
    return nowNanos() - start_;
  }
  [[nodiscard]] std::uint64_t elapsedMicros() const noexcept {
    return elapsedNanos() / 1000u;
  }
  [[nodiscard]] double elapsedSeconds() const noexcept {
    return static_cast<double>(elapsedNanos()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace fepia::obs
