#include "obs/prometheus.hpp"

#include <cctype>
#include <cstdio>

namespace fepia::obs {
namespace {

/// Sample-line value formatting. Prometheus accepts Go-syntax floats;
/// %.17g round-trips doubles exactly, matching the JSON writers'
/// precision so the two export paths can never disagree on a value.
void writeValue(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

std::string prometheusName(std::string_view name) {
  std::string out = "fepia_";
  for (const char c : name) {
    const bool legal = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                       c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

void exportPrometheus(std::ostream& os, const Registry& reg) {
  for (const Counter& c : reg.counters().all()) {
    const std::string name = prometheusName(c.name) + "_total";
    os << "# TYPE " << name << " counter\n"
       << name << ' ' << c.value << '\n';
  }
  for (const Gauge& g : reg.gauges()) {
    const std::string name = prometheusName(g.name);
    os << "# TYPE " << name << " gauge\n" << name << ' ';
    writeValue(os, g.value);
    os << '\n';
  }
  for (const auto& [rawName, h] : reg.histograms()) {
    const std::string name = prometheusName(rawName);
    os << "# TYPE " << name << " histogram\n";
    const auto& bounds = h.upperBounds();
    const auto& counts = h.bucketCounts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      os << name << "_bucket{le=\"";
      writeValue(os, bounds[i]);
      os << "\"} " << cumulative << '\n';
    }
    cumulative += counts.back();
    os << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n'
       << name << "_sum ";
    writeValue(os, h.sum());
    os << '\n' << name << "_count " << h.count() << '\n';
  }
}

}  // namespace fepia::obs
