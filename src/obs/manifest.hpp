// Run manifests: provenance stamped into every structured output.
//
// A BENCH_*.json or CLI --json file is a claim about performance or
// correctness; without the machine, build, seed, and arguments that
// produced it, the claim cannot be rechecked. RunManifest::collect()
// gathers what the build baked in (git SHA, compiler, flags, build
// type — captured at CMake configure time) plus what the run knows
// (hostname, thread count, seed, argv), and writeJson() emits it as the
// "manifest" object every bench/CLI JSON writer embeds.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fepia::obs {

struct RunManifest {
  std::string tool;          ///< e.g. "fepia_cli search" or "bench_search"
  std::string gitSha;        ///< configure-time HEAD ("unknown" outside git)
  std::string compiler;      ///< compiler id and version
  std::string buildType;     ///< CMAKE_BUILD_TYPE
  std::string cxxFlags;      ///< CMAKE_CXX_FLAGS
  std::string hostname;
  std::size_t hardwareConcurrency = 0;
  /// Worker threads the run actually used (0 = serial / no pool).
  std::size_t threads = 0;
  std::uint64_t seed = 0;
  std::vector<std::string> args;  ///< argv[1..]
  /// Wall time of the measured run, filled by the caller just before
  /// writing (0 when the tool does not time itself).
  double wallSeconds = 0.0;

  /// Fills the build/host fields and copies argv[1..] into args.
  /// threads/seed/wallSeconds stay at their defaults for the caller.
  [[nodiscard]] static RunManifest collect(std::string tool, int argc,
                                           const char* const* argv);

  /// {"tool": ..., "git_sha": ..., "compiler": ..., "build_type": ...,
  ///  "cxx_flags": ..., "hostname": ..., "hardware_concurrency": ...,
  ///  "threads": ..., "seed": ..., "args": [...], "wall_seconds": ...}
  void writeJson(std::ostream& os) const;
};

}  // namespace fepia::obs
