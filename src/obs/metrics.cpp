#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "obs/json.hpp"

namespace fepia::obs {

// ----- CounterSet ------------------------------------------------------

Counter* CounterSet::find(const std::string& name) noexcept {
  for (Counter& c : counters_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void CounterSet::bump(const std::string& name, std::uint64_t delta) {
  if (Counter* c = find(name)) {
    c->value += delta;
  } else {
    counters_.push_back(Counter{name, delta});
  }
}

void CounterSet::set(const std::string& name, std::uint64_t value) {
  if (Counter* c = find(name)) {
    c->value = value;
  } else {
    counters_.push_back(Counter{name, value});
  }
}

std::uint64_t CounterSet::value(const std::string& name) const noexcept {
  for (const Counter& c : counters_) {
    if (c.name == name) return c.value;
  }
  return 0;
}

void CounterSet::merge(const CounterSet& other) {
  for (const Counter& c : other.counters_) bump(c.name, c.value);
}

void CounterSet::writeJson(std::ostream& os) const {
  os << '{';
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i > 0) os << ", ";
    writeJsonString(os, counters_[i].name);
    os << ": " << counters_[i].value;
  }
  os << '}';
}

void CounterSet::print(std::ostream& os) const {
  for (const Counter& c : counters_) {
    os << c.name << " = " << c.value << '\n';
  }
}

// ----- Histogram -------------------------------------------------------

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty()) {
    throw std::invalid_argument("obs::Histogram: no bucket bounds");
  }
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i])) {
      throw std::invalid_argument(
          "obs::Histogram: bounds must be finite (the +inf overflow bucket "
          "is implicit)");
    }
    if (i > 0 && !(bounds_[i] > bounds_[i - 1])) {
      throw std::invalid_argument(
          "obs::Histogram: bounds must be strictly increasing");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram Histogram::exponential(double start, double factor, std::size_t n) {
  if (!(start > 0.0) || !(factor > 1.0) || n == 0) {
    throw std::invalid_argument("obs::Histogram::exponential: bad ladder");
  }
  std::vector<double> bounds(n);
  double b = start;
  for (std::size_t i = 0; i < n; ++i) {
    bounds[i] = b;
    b *= factor;
  }
  return Histogram(std::move(bounds));
}

void Histogram::record(double x) noexcept {
  if (std::isnan(x)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  ++counts_[bucket];  // bucket == bounds_.size() is the overflow bucket
  ++count_;
  if (std::isfinite(x)) {
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("obs::Histogram::merge: bucket bounds differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::writeJson(std::ostream& os) const {
  os << "{\"buckets\": [";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"le\": ";
    if (i < bounds_.size()) {
      writeJsonNumber(os, bounds_[i]);
    } else {
      os << "null";
    }
    os << ", \"count\": " << counts_[i] << '}';
  }
  os << "], \"count\": " << count_ << ", \"sum\": ";
  writeJsonNumber(os, sum_);
  os << ", \"min\": ";
  writeJsonNumber(os, count_ > 0 ? min_ : 0.0);
  os << ", \"max\": ";
  writeJsonNumber(os, count_ > 0 ? max_ : 0.0);
  os << '}';
}

// ----- Registry --------------------------------------------------------

void Registry::setGauge(const std::string& name, double value) {
  for (Gauge& g : gauges_) {
    if (g.name == name) {
      g.value = value;
      return;
    }
  }
  gauges_.push_back(Gauge{name, value});
}

void Registry::maxGauge(const std::string& name, double value) {
  for (Gauge& g : gauges_) {
    if (g.name == name) {
      g.value = std::max(g.value, value);
      return;
    }
  }
  gauges_.push_back(Gauge{name, value});
}

double Registry::gauge(const std::string& name) const noexcept {
  for (const Gauge& g : gauges_) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upperBounds) {
  for (auto& [n, h] : histograms_) {
    if (n == name) return h;
  }
  histograms_.emplace_back(name, Histogram(std::move(upperBounds)));
  return histograms_.back().second;
}

const Histogram* Registry::findHistogram(
    const std::string& name) const noexcept {
  for (const auto& [n, h] : histograms_) {
    if (n == name) return &h;
  }
  return nullptr;
}

namespace {

std::string describeBounds(const std::vector<double>& bounds) {
  std::string out = "[";
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (i > 0) out += ", ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", bounds[i]);
    out += buf;
  }
  out += ']';
  return out;
}

}  // namespace

void Registry::merge(const Registry& other) {
  counters_.merge(other.counters_);
  for (const Gauge& g : other.gauges_) maxGauge(g.name, g.value);
  for (const auto& [name, h] : other.histograms_) {
    Histogram& mine = histogram(name, h.upperBounds());
    // Diagnose the mismatch here, where the name is known — the bare
    // Histogram::merge error cannot say *which* histogram clashed, and
    // a merge of many shard registries needs that to be actionable.
    if (mine.upperBounds() != h.upperBounds()) {
      throw std::invalid_argument(
          "obs::Registry::merge: histogram '" + name +
          "' bucket bounds differ: have " + describeBounds(mine.upperBounds()) +
          ", incoming " + describeBounds(h.upperBounds()));
    }
    mine.merge(h);
  }
}

void Registry::writeJson(std::ostream& os) const {
  os << "{\"counters\": ";
  counters_.writeJson(os);
  os << ", \"gauges\": {";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i > 0) os << ", ";
    writeJsonString(os, gauges_[i].name);
    os << ": ";
    writeJsonNumber(os, gauges_[i].value);
  }
  os << "}, \"histograms\": {";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (i > 0) os << ", ";
    writeJsonString(os, histograms_[i].first);
    os << ": ";
    histograms_[i].second.writeJson(os);
  }
  os << "}}";
}

void Registry::print(std::ostream& os) const {
  counters_.print(os);
  for (const Gauge& g : gauges_) {
    os << g.name << " = " << g.value << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": count=" << h.count() << " sum=" << h.sum();
    if (h.count() > 0) {
      os << " min=" << h.minSeen() << " max=" << h.maxSeen();
    }
    os << '\n';
    const auto& bounds = h.upperBounds();
    const auto& counts = h.bucketCounts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      os << "  le=";
      if (i < bounds.size()) {
        os << bounds[i];
      } else {
        os << "+inf";
      }
      os << ": " << counts[i] << '\n';
    }
  }
}

}  // namespace fepia::obs
