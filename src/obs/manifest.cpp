#include "obs/manifest.hpp"

#include <thread>

#include "obs/json.hpp"

#if defined(_WIN32)
#include <winsock2.h>
#else
#include <unistd.h>
#endif

#ifndef FEPIA_GIT_SHA
#define FEPIA_GIT_SHA "unknown"
#endif
#ifndef FEPIA_BUILD_TYPE
#define FEPIA_BUILD_TYPE "unknown"
#endif
#ifndef FEPIA_CXX_FLAGS
#define FEPIA_CXX_FLAGS ""
#endif

namespace fepia::obs {

namespace {

std::string compilerId() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#elif defined(_MSC_VER)
  return "msvc " + std::to_string(_MSC_VER);
#else
  return "unknown";
#endif
}

std::string hostName() {
  char buf[256] = {0};
#if defined(_WIN32)
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
#else
  if (::gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
#endif
  buf[sizeof(buf) - 1] = '\0';
  return buf[0] != '\0' ? std::string(buf) : std::string("unknown");
}

}  // namespace

RunManifest RunManifest::collect(std::string tool, int argc,
                                 const char* const* argv) {
  RunManifest m;
  m.tool = std::move(tool);
  m.gitSha = FEPIA_GIT_SHA;
  m.compiler = compilerId();
  m.buildType = FEPIA_BUILD_TYPE;
  m.cxxFlags = FEPIA_CXX_FLAGS;
  m.hostname = hostName();
  m.hardwareConcurrency = std::thread::hardware_concurrency();
  for (int i = 1; i < argc; ++i) m.args.emplace_back(argv[i]);
  return m;
}

void RunManifest::writeJson(std::ostream& os) const {
  os << "{\"tool\": ";
  writeJsonString(os, tool);
  os << ", \"git_sha\": ";
  writeJsonString(os, gitSha);
  os << ", \"compiler\": ";
  writeJsonString(os, compiler);
  os << ", \"build_type\": ";
  writeJsonString(os, buildType);
  os << ", \"cxx_flags\": ";
  writeJsonString(os, cxxFlags);
  os << ", \"hostname\": ";
  writeJsonString(os, hostname);
  os << ", \"hardware_concurrency\": " << hardwareConcurrency
     << ", \"threads\": " << threads << ", \"seed\": " << seed
     << ", \"args\": [";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    writeJsonString(os, args[i]);
  }
  os << "], \"wall_seconds\": ";
  writeJsonNumber(os, wallSeconds);
  os << '}';
}

}  // namespace fepia::obs
