// Scoped spans with monotonic timing, deterministic hierarchical IDs,
// and Chrome-trace-event export.
//
// A Span measures one region of work on one thread. Open spans live on a
// thread-private stack (no locking on open), finished records append to
// a per-thread buffer; the collector merges buffers only at collect
// time — the same accumulate-locally, merge-at-join discipline the
// determinism contract imposes on results, which is also why tracing can
// never perturb them: instrumentation reads the clock and writes
// thread-local memory, nothing else.
//
// IDs are hierarchical and deterministic per thread: the n-th root span
// a thread opens is `t<tid>.<n>`, its k-th child `t<tid>.<n>.<k>`, and
// so on. For serial phases the full ID sequence is reproducible
// run-to-run; for pooled phases the *structure* is (worker spans carry
// their chunk index as an argument), while the worker a chunk lands on
// is scheduling-dependent, exactly like the work itself.
//
// Cost model: when tracing is disabled a Span construct/destruct is one
// relaxed atomic load and no allocation (asserted by a test); when the
// FEPIA_OBS_NO_SPANS compile-time kill switch is set, the FEPIA_SPAN
// macros expand to an empty object — checked by static_assert below, so
// the no-op sink cannot silently grow state.
//
// The exported file is the Chrome trace-event JSON array format: open it
// at https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace fepia::obs {

/// One finished span.
struct SpanRecord {
  const char* name = "";     ///< static string supplied at the call site
  std::string id;            ///< hierarchical id, e.g. "t0.2.1"
  std::uint32_t tid = 0;     ///< collector-assigned thread index
  std::uint64_t startNs = 0; ///< monotonic clock, absolute
  std::uint64_t durNs = 0;
  const char* argName = nullptr;  ///< optional numeric argument
  std::uint64_t arg = 0;
};

class TraceCollectorAccess;

namespace detail {

/// Per-thread span state. Created on a thread's first span and owned by
/// the collector (records outlive the thread, so spans from joined
/// workers still reach the merge).
class ThreadBuffer {
 public:
  explicit ThreadBuffer(std::uint32_t tid) : tid_(tid) {}

  void open(const char* name, const char* argName, std::uint64_t arg,
            std::uint64_t startNs);
  void close(std::uint64_t endNs);

 private:
  friend class fepia::obs::TraceCollectorAccess;

  struct OpenSpan {
    const char* name;
    const char* argName;
    std::uint64_t arg;
    std::uint64_t startNs;
    std::string id;
    std::uint64_t children = 0;
  };

  std::uint32_t tid_;
  std::uint64_t roots_ = 0;
  std::vector<OpenSpan> stack_;   ///< owner thread only
  std::mutex recordsMutex_;       ///< guards records_ (close vs collect)
  std::vector<SpanRecord> records_;
};

}  // namespace detail

/// Process-wide span collector. start()/stop()/collect() must be called
/// from serial sections (no spans in flight on other threads).
class TraceCollector {
 public:
  static TraceCollector& instance();

  /// Whether spans are currently recorded. One relaxed load — this is
  /// the only thing a disabled Span pays for.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops previously collected records and starts recording.
  void start();

  /// Stops recording (records stay buffered until collect()).
  void stop() noexcept { enabled_.store(false, std::memory_order_relaxed); }

  /// Monotonic timestamp of the last start() — the trace's time origin.
  [[nodiscard]] std::uint64_t baseNanos() const noexcept { return baseNs_; }

  /// Drains every thread's records, concatenated in thread-registration
  /// order (per-thread order preserved).
  [[nodiscard]] std::vector<SpanRecord> collect();

  /// The calling thread's buffer (registered on first use).
  detail::ThreadBuffer& threadBuffer();

 private:
  TraceCollector() = default;

  std::atomic<bool> enabled_{false};
  std::uint64_t baseNs_ = 0;
  std::mutex mutex_;  ///< guards buffers_
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers_;
};

/// RAII span. Construct with a static name (and optionally one named
/// numeric argument); the destructor records the duration. No-op unless
/// the collector is enabled at construction time.
class Span {
 public:
  explicit Span(const char* name, const char* argName = nullptr,
                std::uint64_t arg = 0);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  detail::ThreadBuffer* buf_ = nullptr;
};

/// The compile-time kill switch's stand-in for Span: provably stateless.
struct NoopSpan {
  explicit NoopSpan(const char*, const char* = nullptr, std::uint64_t = 0) {}
};
static_assert(sizeof(NoopSpan) == 1 && !std::is_polymorphic_v<NoopSpan>,
              "the no-op span sink must stay empty — instrumentation is "
              "required to vanish under FEPIA_OBS_NO_SPANS");

/// True when latency-metric sampling (clock reads feeding histograms on
/// hot paths, e.g. pool wait or cache-lookup timing) is on. Off by
/// default so uninstrumented runs never read the clock per operation.
[[nodiscard]] bool timingEnabled() noexcept;
void setTimingEnabled(bool on) noexcept;

/// Writes `records` as a Chrome trace-event JSON array ("X" complete
/// events; timestamps microseconds relative to `baseNs`).
void writeChromeTrace(std::ostream& os, const std::vector<SpanRecord>& records,
                      std::uint64_t baseNs);

#define FEPIA_OBS_CONCAT_IMPL(a, b) a##b
#define FEPIA_OBS_CONCAT(a, b) FEPIA_OBS_CONCAT_IMPL(a, b)

#ifdef FEPIA_OBS_NO_SPANS
#define FEPIA_SPAN(name) \
  ::fepia::obs::NoopSpan FEPIA_OBS_CONCAT(fepiaSpan, __LINE__)(name)
#define FEPIA_SPAN_ARG(name, argName, argValue) \
  ::fepia::obs::NoopSpan FEPIA_OBS_CONCAT(fepiaSpan, __LINE__)(name)
#else
#define FEPIA_SPAN(name) \
  ::fepia::obs::Span FEPIA_OBS_CONCAT(fepiaSpan, __LINE__)(name)
#define FEPIA_SPAN_ARG(name, argName, argValue)                        \
  ::fepia::obs::Span FEPIA_OBS_CONCAT(fepiaSpan, __LINE__)(            \
      name, argName, static_cast<std::uint64_t>(argValue))
#endif

}  // namespace fepia::obs
