#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <locale>
#include <sstream>

namespace fepia::obs {

void writeJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void writeJsonNumber(std::ostream& os, double x) {
  if (!std::isfinite(x)) {
    os << "null";
    return;
  }
  // Classic locale pinned: JSON requires '.' as the decimal separator
  // regardless of any std::locale::global the host process installed.
  std::ostringstream tmp;
  tmp.imbue(std::locale::classic());
  tmp.precision(17);
  tmp << x;
  os << tmp.str();
}

namespace {

/// Recursive-descent JSON syntax checker over [pos, text.size()).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool run() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skipWs() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return false;
    ++pos_;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (eof()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            break;
          case 'u': {
            for (int k = 0; k < 4; ++k) {
              if (eof() || std::isxdigit(static_cast<unsigned char>(peek())) == 0) {
                return false;
              }
              ++pos_;
            }
            break;
          }
          default:
            return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      return false;
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        ++pos_;
      }
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool members(char close, bool keyed) {
    ++pos_;  // consume the opener
    skipWs();
    if (!eof() && peek() == close) {
      ++pos_;
      return true;
    }
    for (;;) {
      if (depth_ > kMaxDepth) return false;
      if (keyed) {
        skipWs();
        if (!string()) return false;
        skipWs();
        if (eof() || peek() != ':') return false;
        ++pos_;
      }
      skipWs();
      if (!value()) return false;
      skipWs();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == close) {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool value() {
    if (eof()) return false;
    ++depth_;
    bool ok = false;
    switch (peek()) {
      case '{':
        ok = members('}', /*keyed=*/true);
        break;
      case '[':
        ok = members(']', /*keyed=*/false);
        break;
      case '"':
        ok = string();
        break;
      case 't':
        ok = literal("true");
        break;
      case 'f':
        ok = literal("false");
        break;
      case 'n':
        ok = literal("null");
        break;
      default:
        ok = number();
    }
    --depth_;
    return ok;
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool isValidJson(std::string_view text) { return JsonChecker(text).run(); }

}  // namespace fepia::obs
