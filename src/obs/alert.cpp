#include "obs/alert.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace fepia::obs {
namespace {

// obs sits below every other fepia library, so it cannot use io::parse;
// this is the same full-token + finite contract, locally. std::from_chars
// instead of strtod so alert thresholds parse identically under any
// LC_NUMERIC the embedding process set (rule values are plain decimals;
// the exotic strtod compatibilities live in io::parseFiniteDouble).
bool parseFiniteDouble(const std::string& token, double& out) {
  if (token.empty()) return false;
  double v = 0.0;
  const char* const first = token.data();
  const char* const last = token.data() + token.size();
  const std::from_chars_result r = std::from_chars(first, last, v);
  if (r.ec != std::errc() || r.ptr != last) return false;
  if (!std::isfinite(v)) return false;
  out = v;
  return true;
}

}  // namespace

bool AlertRule::breached(double value) const noexcept {
  switch (op) {
    case Op::Gt: return value > threshold;
    case Op::Ge: return value >= threshold;
    case Op::Lt: return value < threshold;
    case Op::Le: return value <= threshold;
  }
  return false;
}

std::string_view alertOpName(AlertRule::Op op) noexcept {
  switch (op) {
    case AlertRule::Op::Gt: return ">";
    case AlertRule::Op::Ge: return ">=";
    case AlertRule::Op::Lt: return "<";
    case AlertRule::Op::Le: return "<=";
  }
  return "?";
}

std::string AlertRule::str() const {
  std::string out = metric;
  out += alertOpName(op);
  // Thresholds come from the parser, which only accepts finite numbers;
  // shortest round-trip formatting keeps the spec readable.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", threshold);
  out += buf;
  return out;
}

AlertRule parseAlertRule(std::string_view text) {
  // The two-character operators must win over their one-character
  // prefixes, so scan for the operator position first.
  const std::size_t pos = text.find_first_of("<>");
  if (pos == std::string_view::npos || pos == 0) {
    throw std::invalid_argument(
        "obs::parseAlertRule: expected METRIC{>|>=|<|<=}VALUE, got '" +
        std::string(text) + "'");
  }
  AlertRule rule;
  rule.metric = std::string(text.substr(0, pos));
  std::size_t valueStart = pos + 1;
  const bool orEqual = valueStart < text.size() && text[valueStart] == '=';
  if (orEqual) ++valueStart;
  if (text[pos] == '>') {
    rule.op = orEqual ? AlertRule::Op::Ge : AlertRule::Op::Gt;
  } else {
    rule.op = orEqual ? AlertRule::Op::Le : AlertRule::Op::Lt;
  }
  if (!parseFiniteDouble(std::string(text.substr(valueStart)),
                         rule.threshold)) {
    throw std::invalid_argument(
        "obs::parseAlertRule: bad threshold in '" + std::string(text) +
        "' (expected a finite number)");
  }
  return rule;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules)
    : rules_(std::move(rules)), breached_(rules_.size(), false) {}

bool findMetricValue(const Registry& reg, const std::string& name,
                     double& out) {
  for (const Gauge& g : reg.gauges()) {
    if (g.name == name) {
      out = g.value;
      return true;
    }
  }
  for (const Counter& c : reg.counters().all()) {
    if (c.name == name) {
      out = static_cast<double>(c.value);
      return true;
    }
  }
  return false;
}

std::vector<AlertCrossing> AlertEngine::evaluate(const Registry& reg) {
  std::vector<AlertCrossing> crossings;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    double value = 0.0;
    const bool present = findMetricValue(reg, rules_[i].metric, value);
    const bool now = present && rules_[i].breached(value);
    if (now && !breached_[i]) {
      crossings.push_back(AlertCrossing{&rules_[i], value});
    }
    breached_[i] = now;
  }
  return crossings;
}

}  // namespace fepia::obs
